//! Filesystem-failure coverage for the persistence paths: a full disk, a
//! path that stops being writable, or a short write at the log tail must
//! surface as **typed** errors, leave no half-written file behind, and
//! keep the prior on-disk generation recoverable.
//!
//! Real ENOSPC is hard to conjure in a test, so these tests use the
//! classic stand-ins — a target path occupied by a directory (every write
//! fails, exactly like a full disk) and a truncated log tail (what a short
//! write leaves behind).

use pcube::prelude::*;

fn seed_relation() -> Relation {
    let mut r = Relation::new(Schema::new(&["A", "B"], &["x", "y"]));
    let vals_a = ["a1", "a2", "a3"];
    let vals_b = ["b1", "b2"];
    for i in 0..80 {
        let x = (i as f64 * 0.3771).fract();
        let y = (i as f64 * 0.6113 + 0.131).fract();
        r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
    }
    r
}

fn insert_op(i: u64) -> Vec<MaintenanceOp> {
    vec![MaintenanceOp::Insert {
        codes: vec![(i % 3) as u32, (i % 2) as u32],
        coords: vec![(i as f64 * 0.271 + 0.05).fract(), (i as f64 * 0.413 + 0.11).fract()],
    }]
}

fn skyline_tids(db: &PCubeDb) -> Vec<u64> {
    let mut tids: Vec<u64> =
        skyline_query(db, &Vec::new(), &[0, 1], false).skyline.iter().map(|(t, _)| *t).collect();
    tids.sort_unstable();
    tids
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pcube-enospc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn checkpoint_write_failure_is_typed_and_prior_generation_recovers() {
    let dir = temp_dir("ckpt");
    let mut db = DurableDb::create_at(
        &dir,
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    )
    .expect("create_at succeeds");
    for i in 0..4 {
        db.apply(&insert_op(i)).expect("apply succeeds");
    }
    db.checkpoint().expect("healthy checkpoint succeeds");
    let prior_ckpt = std::fs::read(dir.join("checkpoint.pcube")).expect("checkpoint on disk");

    // Occupy the checkpoint's staging path with a directory: the atomic
    // tmp-write now fails like a full disk would.
    for i in 4..8 {
        db.apply(&insert_op(i)).expect("apply succeeds");
    }
    let tmp = dir.join("checkpoint.pcube.tmp");
    std::fs::create_dir(&tmp).expect("occupy tmp path");
    let err = db.checkpoint().expect_err("checkpoint must fail");
    assert!(
        matches!(&err, DurabilityError::Io { path, .. } if path.contains("checkpoint.pcube.tmp")),
        "typed Io error naming the failing path, got: {err}"
    );

    // No partial file: the installed checkpoint on disk is byte-identical
    // to the prior generation (the tmp-then-rename discipline never touches
    // it on a failed write).
    assert_eq!(
        std::fs::read(dir.join("checkpoint.pcube")).expect("checkpoint still on disk"),
        prior_ckpt,
        "failed checkpoint corrupted the installed image"
    );

    // Clear the obstruction: recovery from the prior generation replays the
    // WAL (every commit was appended to wal.pcube at sync time) and loses
    // nothing.
    let want = skyline_tids(db.db());
    let applied = db.applied_txns();
    drop(db);
    std::fs::remove_dir(&tmp).expect("clear obstruction");
    let (recovered, report) = DurableDb::open_or_recover(&dir, DurabilityOptions::default())
        .expect("prior generation recovers");
    assert_eq!(recovered.applied_txns(), applied, "recovery lost transactions: {report}");
    assert_eq!(skyline_tids(recovered.db()), want, "recovered answers diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_append_failure_is_typed_and_checkpoint_generation_recovers() {
    let dir = temp_dir("wal");
    let mut db = DurableDb::create_at(
        &dir,
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    )
    .expect("create_at succeeds");
    db.apply(&insert_op(0)).expect("apply succeeds");
    db.checkpoint().expect("checkpoint succeeds");
    let ckpt_txns = db.applied_txns();

    // Replace the on-disk WAL with a directory: the next commit's append
    // fails like a full disk would, as a typed error — no panic, no
    // silently-volatile ack.
    let wal_path = dir.join("wal.pcube");
    std::fs::remove_file(&wal_path).expect("remove wal file");
    std::fs::create_dir(&wal_path).expect("occupy wal path");
    let err = db.apply(&insert_op(1)).expect_err("commit must fail");
    assert!(
        matches!(&err, DurabilityError::Io { path, .. } if path.contains("wal.pcube")),
        "typed Io error naming the failing path, got: {err}"
    );
    drop(db);

    // The checkpoint generation stands alone: with the unwritable WAL gone,
    // recovery comes up at the checkpoint watermark.
    std::fs::remove_dir(&wal_path).expect("clear obstruction");
    let (recovered, report) = DurableDb::open_or_recover(&dir, DurabilityOptions::default())
        .expect("checkpoint generation recovers");
    assert!(report.clean, "a missing WAL is a clean open: {report}");
    assert_eq!(recovered.applied_txns(), ckpt_txns);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_write_at_the_wal_tail_recovers_the_committed_prefix() {
    let dir = temp_dir("short");
    let mut db = DurableDb::create_at(
        &dir,
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    )
    .expect("create_at succeeds");
    for i in 0..3 {
        db.apply(&insert_op(i)).expect("apply succeeds");
    }
    let full = std::fs::read(dir.join("wal.pcube")).expect("wal on disk");
    drop(db);

    // A short write: the tail frame loses its last bytes.
    assert!(full.len() > 5, "workload produced no WAL tail to truncate");
    std::fs::write(dir.join("wal.pcube"), &full[..full.len() - 5]).expect("truncate tail");

    let (recovered, report) = DurableDb::open_or_recover(&dir, DurabilityOptions::default())
        .expect("short-written WAL recovers");
    assert!(report.torn_tail_bytes > 0, "the torn frame must be detected: {report}");
    assert!(
        report.txns_replayed + report.checkpoint_txns == recovered.applied_txns(),
        "report inconsistent with recovered state: {report}"
    );

    // The rewritten log carries no debris: a second open is torn-free and
    // agrees with the first.
    let want = skyline_tids(recovered.db());
    drop(recovered);
    let (again, report2) = DurableDb::open_or_recover(&dir, DurabilityOptions::default())
        .expect("second open succeeds");
    assert_eq!(report2.torn_tail_bytes, 0, "debris survived the rewrite: {report2}");
    assert_eq!(skyline_tids(again.db()), want);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_to_an_unwritable_path_is_a_typed_persist_error() {
    let db = PCubeDb::build(seed_relation(), &PCubeConfig::default());
    let dir = temp_dir("save");
    // The parent directory does not exist: every write fails.
    let path = dir.join("nope").join("db.pcube");
    let err = db.save(&path).expect_err("save must fail");
    assert_eq!(err.section, "file", "typed persist error names the file section: {err}");
    assert!(!path.exists(), "a failed save must leave nothing behind");
}
