//! The crash matrix: deterministically kill the durable engine at **every**
//! WAL-append / fsync / page-flush / checkpoint boundary of a scripted
//! maintenance workload, recover from exactly the bytes a real crash would
//! leave behind, and differential-test the recovered database against a
//! clean re-execution oracle.
//!
//! The durability contract checked at every kill point `k`:
//!
//! 1. acked-durable transactions ⊆ recovered transactions ⊆ applied
//!    transactions (commits are WAL-ordered, so the recovered committed set
//!    is a prefix);
//! 2. the recovered database answers skyline, top-k, dynamic skyline and
//!    convex-hull queries **exactly** like a fresh database built from the
//!    seed plus the recovered transaction prefix;
//! 3. recovery never panics and never fabricates a transaction.

use pcube::prelude::*;
use std::collections::BTreeSet;

// ------------------------------------------------------ scripted workload --

#[derive(Debug, Clone)]
enum Step {
    Txn(Vec<MaintenanceOp>),
    Checkpoint,
}

const SEED_ROWS: usize = 96;
const N_TXNS: usize = 8;
const CKPT_EVERY: usize = 3;

fn seed_relation() -> Relation {
    let mut r = Relation::new(Schema::new(&["A", "B"], &["x", "y"]));
    let vals_a = ["a1", "a2", "a3"];
    let vals_b = ["b1", "b2"];
    for i in 0..SEED_ROWS {
        let x = (i as f64 * 0.3771).fract();
        let y = (i as f64 * 0.6113 + 0.131).fract();
        r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
    }
    r
}

/// The deterministic maintenance script: `N_TXNS` transactions of two
/// inserts (+ one delete on odd rounds), a checkpoint after every
/// `CKPT_EVERY`-th. The generator tracks its own live-set model so the
/// script is a pure function — replaying a prefix on a fresh database is
/// the oracle.
fn script() -> Vec<Step> {
    let mut live: BTreeSet<u64> = (0..SEED_ROWS as u64).collect();
    let mut next_tid = SEED_ROWS as u64;
    let mut steps = Vec::new();
    for t in 0..N_TXNS {
        let base = next_tid;
        let mut ops = Vec::new();
        for j in 0..2 {
            let i = t * 2 + j;
            ops.push(MaintenanceOp::Insert {
                codes: vec![(i % 3) as u32, (i % 2) as u32],
                coords: vec![(i as f64 * 0.271 + 0.05).fract(), (i as f64 * 0.413 + 0.11).fract()],
            });
            live.insert(next_tid);
            next_tid += 1;
        }
        if !t.is_multiple_of(2) {
            let candidates: Vec<u64> = live.iter().copied().filter(|&x| x < base).collect();
            let victim = candidates[(t * 17) % candidates.len()];
            ops.push(MaintenanceOp::Delete { tid: victim });
            live.remove(&victim);
        }
        steps.push(Step::Txn(ops));
        if (t + 1).is_multiple_of(CKPT_EVERY) {
            steps.push(Step::Checkpoint);
        }
    }
    steps
}

/// Drives the script until completion or the injected crash. Returns the
/// highest transaction acknowledged as durable before the crash.
fn drive(db: &mut DurableDb, steps: &[Step]) -> Result<u64, DurabilityError> {
    for step in steps {
        match step {
            Step::Txn(ops) => {
                db.apply(ops)?;
            }
            Step::Checkpoint => {
                db.checkpoint()?;
            }
        }
    }
    Ok(db.durable_txns())
}

// ------------------------------------------------------------- the oracle --

/// A clean re-execution: seed + the first `n` transactions, no durability
/// machinery anywhere near it.
fn oracle(n: u64) -> PCubeDb {
    let mut db = PCubeDb::build(seed_relation(), &PCubeConfig::default());
    let mut applied = 0u64;
    for step in script() {
        if applied == n {
            break;
        }
        if let Step::Txn(ops) = step {
            for op in &ops {
                match op {
                    MaintenanceOp::Insert { codes, coords } => {
                        db.insert_coded(codes, coords);
                    }
                    MaintenanceOp::Delete { tid } => {
                        assert!(db.delete(*tid), "oracle delete of {tid} failed");
                    }
                }
            }
            applied += 1;
        }
    }
    assert_eq!(applied, n, "script has no {n}-transaction prefix");
    db
}

/// Every acceptance query family, answered exactly: static skyline, top-k,
/// dynamic skyline, convex hull — each under the empty selection and one
/// single-predicate selection.
fn answers(db: &PCubeDb) -> Vec<Vec<(u64, Vec<f64>)>> {
    let selections: [Selection; 2] =
        [Vec::new(), vec![Predicate { dim: 0, value: 1 }]];
    let f = MinCoordSum::new(vec![0, 1]);
    let mut out = Vec::new();
    for sel in &selections {
        out.push(skyline_query(db, sel, &[0, 1], false).skyline);
        out.push(
            topk_query(db, sel, 5, &f, false)
                .topk
                .into_iter()
                .map(|(tid, coords, score)| {
                    let mut c = coords;
                    c.push(score);
                    (tid, c)
                })
                .collect(),
        );
        out.push(dynamic_skyline_query(db, sel, &[0.45, 0.55], &[0, 1]).skyline);
        out.push(
            convex_hull_query(db, sel, (0, 1))
                .hull
                .into_iter()
                .map(|(tid, xy)| (tid, xy.to_vec()))
                .collect(),
        );
    }
    out
}

fn assert_oracle_exact(recovered: &PCubeDb, n_txns: u64, context: &str) {
    let want = answers(&oracle(n_txns));
    let got = answers(recovered);
    assert_eq!(got, want, "{context}: answers diverge from the {n_txns}-txn oracle");
}

// -------------------------------------------------------------- the matrix --

/// One crash at event `k`: drive until the plan fires, recover from the
/// durable bytes, check the contract. Returns the recovered transaction
/// count for bookkeeping.
fn crash_at(k: u64, steps: &[Step]) -> u64 {
    let mut db = DurableDb::create(
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    );
    db.set_crash_plan(CrashPlan::at_event(k));
    let res = drive(&mut db, steps);
    let crashed = res.is_err();
    if let Err(e) = &res {
        assert!(
            matches!(e, DurabilityError::Crashed { .. }),
            "event {k}: unexpected failure {e}"
        );
    }
    let acked = db.durable_txns();
    let applied = db.applied_txns();
    let state = db.durable_state();

    let (recovered, report) =
        DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
            .unwrap_or_else(|e| panic!("event {k}: recovery failed: {e}"));
    let n = recovered.applied_txns();
    assert!(
        acked <= n && n <= applied,
        "event {k}: durability contract violated (acked {acked}, recovered {n}, applied {applied})"
    );
    if !crashed {
        assert_eq!(n, applied, "event {k}: no crash, yet transactions went missing");
    }
    assert_eq!(
        recovered.durable_txns(),
        n,
        "event {k}: recovery must leave nothing unsynced"
    );
    assert!(
        report.txns_replayed + report.checkpoint_txns == n,
        "event {k}: report inconsistent with recovered state: {report}"
    );
    assert_oracle_exact(recovered.db(), n, &format!("event {k}"));
    assert_recovered_is_reusable(recovered, &format!("event {k}"));
    n
}

/// Second generation: commits one more durable transaction on a recovered
/// instance, re-crashes it, and recovers again — nothing may be lost.
/// Regression: recovery used to re-open the WAL with the rejected torn tail
/// still in place, so every commit acked durable *after* a torn-tail
/// recovery sat behind a bad frame and the next replay silently dropped it.
fn assert_recovered_is_reusable(mut recovered: DurableDb, context: &str) {
    let n = recovered.applied_txns();
    let receipt = recovered
        .apply(&[MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.123, 0.877] }])
        .unwrap_or_else(|e| panic!("{context}: post-recovery apply failed: {e}"));
    assert!(receipt.durable, "{context}: post-recovery commit not acked durable");
    let (second, report) = DurableDb::open_or_recover_from_state(
        &recovered.durable_state(),
        DurabilityOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{context}: second recovery failed: {e}"));
    assert_eq!(
        report.torn_tail_bytes, 0,
        "{context}: recovered WAL still carries a torn tail"
    );
    assert_eq!(
        second.applied_txns(),
        n + 1,
        "{context}: acked-durable post-recovery txn lost by the second recovery"
    );
    assert_eq!(
        answers(second.db()),
        answers(recovered.db()),
        "{context}: second recovery diverges from the live post-recovery state"
    );
}

#[test]
fn crash_matrix_every_kill_point_recovers_oracle_exact() {
    let steps = script();

    // Count the durability events of a clean run with a counting plan.
    let mut counter = DurableDb::create(
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    );
    counter.set_crash_plan(CrashPlan::count_only());
    let acked = drive(&mut counter, &steps).expect("counting run must not crash");
    assert_eq!(acked, N_TXNS as u64);
    let events = counter.crash_events_seen();
    assert!(events > 50, "workload too small to exercise the matrix ({events} events)");

    // Kill at every boundary, plus one past the end (no crash at all).
    let mut recovered_counts = BTreeSet::new();
    for k in 0..=events {
        recovered_counts.insert(crash_at(k, &steps));
    }
    // Sanity: the matrix actually exercised a range of recovery depths.
    assert!(recovered_counts.contains(&(N_TXNS as u64)));
    assert!(
        recovered_counts.len() >= N_TXNS / 2,
        "matrix never varied: {recovered_counts:?}"
    );
}

#[test]
fn recovery_is_idempotent_and_resumable() {
    let steps = script();

    // Crash somewhere in the middle of the workload.
    let mut db = DurableDb::create(
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    );
    counter_crash(&mut db, &steps);
    let state = db.durable_state();

    // Recovering twice from the same bytes yields identical states.
    let (r1, rep1) = DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
        .expect("first recovery");
    let (r2, rep2) = DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
        .expect("second recovery");
    assert_eq!(rep1, rep2);
    assert_eq!(answers(r1.db()), answers(r2.db()));

    // The recovered instance accepts the rest of the workload and ends up
    // oracle-exact for the full script.
    let mut resumed = r1;
    let done = resumed.applied_txns();
    let mut seen = 0u64;
    for step in &steps {
        match step {
            Step::Txn(ops) => {
                seen += 1;
                if seen > done {
                    resumed.apply(ops).expect("resumed apply");
                }
            }
            Step::Checkpoint => {
                if seen >= done {
                    resumed.checkpoint().expect("resumed checkpoint");
                }
            }
        }
    }
    assert_oracle_exact(resumed.db(), N_TXNS as u64, "resumed run");
}

/// Drives with a mid-workload crash installed; asserts it actually fired.
fn counter_crash(db: &mut DurableDb, steps: &[Step]) {
    db.set_crash_plan(CrashPlan::at_event(120));
    let err = drive(db, steps).expect_err("plan must fire mid-workload");
    assert!(matches!(err, DurabilityError::Crashed { .. }));
}

#[test]
fn torn_fsync_tail_is_dropped_not_misread() {
    // Seeded torn-length plans land the crash mid-frame: recovery must
    // report a torn tail and still satisfy the contract.
    let steps = script();
    let opts = DurabilityOptions { fsync_every: 2, ..DurabilityOptions::default() };

    let mut counter = DurableDb::create(seed_relation(), &PCubeConfig::default(), opts);
    counter.set_crash_plan(CrashPlan::count_only());
    drive(&mut counter, &steps).expect("counting run must not crash");
    let events = counter.crash_events_seen();

    let mut torn_runs = 0u64;
    for k in 0..events {
        let mut db = DurableDb::create(seed_relation(), &PCubeConfig::default(), opts);
        db.set_crash_plan(CrashPlan::at_event(k).with_seed(k.wrapping_mul(31) + 7));
        let _ = drive(&mut db, &steps);
        let acked = db.durable_txns();
        let applied = db.applied_txns();
        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("event {k}: recovery failed: {e}"));
        if report.torn_tail_bytes > 0 {
            torn_runs += 1;
        }
        let n = recovered.applied_txns();
        assert!(
            acked <= n && n <= applied,
            "event {k}: contract violated (acked {acked}, recovered {n}, applied {applied})"
        );
        assert_oracle_exact(recovered.db(), n, &format!("torn sweep event {k}"));
        if report.torn_tail_bytes > 0 {
            assert_recovered_is_reusable(recovered, &format!("torn sweep event {k}"));
        }
    }
    assert!(torn_runs > 0, "no run produced a torn tail — the sweep never cut a frame");
}

// --------------------------------------------- at-rest WAL damage matrix --

/// Seeds the damage sweep runs; CI's reduced matrix overrides via
/// `PCUBE_DAMAGE_SEEDS`.
fn damage_seeds() -> u64 {
    std::env::var("PCUBE_DAMAGE_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// Torn writes and bit rot strike the *surviving* WAL image between the
/// crash and the reopen: every seeded cut or flipped bit must degrade into
/// a typed `RecoveryReport` (truncate-and-report at the first bad frame),
/// the recovered transaction set must stay a prefix of the applied order,
/// and the recovered database must answer oracle-exact for that prefix.
/// Never a panic, never a fabricated transaction.
#[test]
fn wal_damage_matrix_recovers_typed_and_prefix_closed() {
    let steps = script();
    // Odd seeds drop the checkpoints so the whole script rides in the WAL
    // and damage can cut anywhere in 0..=N_TXNS; even seeds keep them, so
    // damage also lands on post-checkpoint logs with marker records.
    let no_ckpt: Vec<Step> =
        steps.iter().filter(|s| matches!(s, Step::Txn(_))).cloned().collect();

    let (mut torn_seen, mut rot_seen, mut lossy) = (0u64, 0u64, 0u64);
    for seed in 0..damage_seeds() {
        let script = if seed % 2 == 0 { &steps } else { &no_ckpt };
        let mut db = DurableDb::create(
            seed_relation(),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        );
        drive(&mut db, script).expect("clean drive");
        let applied = db.applied_txns();
        let mut state = db.durable_state();

        let mut plan = FaultPlan::seeded(seed).with_wal_torn(0.5).with_wal_bit_rot(0.5);
        match plan.damage_wal_image(&mut state.wal) {
            Some(WalDamage::Torn { .. }) => torn_seen += 1,
            Some(WalDamage::BitRot { .. }) => rot_seen += 1,
            None => {}
        }

        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
                .unwrap_or_else(|e| {
                    panic!("seed {seed}: damaged-WAL recovery must degrade gracefully, got {e}")
                });
        let n = recovered.applied_txns();
        assert!(
            report.checkpoint_txns <= n && n <= applied,
            "seed {seed}: recovered {n} outside [{}, {applied}]",
            report.checkpoint_txns
        );
        if n < applied {
            lossy += 1;
            assert!(
                report.torn_tail_bytes > 0 || report.txns_dropped > 0,
                "seed {seed}: transactions vanished without the report saying so: {report}"
            );
        }
        assert_oracle_exact(recovered.db(), n, &format!("damage seed {seed}"));
        assert_recovered_is_reusable(recovered, &format!("damage seed {seed}"));
    }
    assert!(torn_seen > 0, "the sweep never tore the image");
    assert!(rot_seen > 0, "the sweep never flipped a bit");
    assert!(lossy > 0, "no damage ever reached a frame — the matrix tested nothing");
}

/// Transient fsync failures during the live workload: retries are bounded
/// (exponential backoff, then a typed `WalSync` error), accounted on the
/// I/O ledger — and the pending tail is never lost: it lands on a later
/// sync or survives into recovery.
#[test]
fn transient_fsync_failures_retry_bounded_and_lose_nothing() {
    let steps = script();
    let (mut retried, mut terminal) = (0u64, 0u64);
    for seed in 0..16 {
        let mut db = DurableDb::create(
            seed_relation(),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        );
        db.set_wal_fault_plan(FaultPlan::seeded(seed * 131 + 17).with_fsync_failures(0.6));
        let outcome = drive(&mut db, &steps);
        match &outcome {
            Ok(_) => {}
            Err(DurabilityError::WalSync { attempts, backoff_us }) => {
                terminal += 1;
                assert_eq!(*attempts, 6, "seed {seed}: retries must stop at the bound");
                assert!(*backoff_us > 0, "seed {seed}: backoff went unaccounted");
            }
            Err(e) => panic!("seed {seed}: unexpected failure {e}"),
        }
        retried += db.db().stats().wal_retries();
        let applied = db.applied_txns();
        let acked = db.durable_txns();

        // Heal the device; the pending tail must land, not evaporate.
        db.take_wal_fault_plan();
        db.sync().unwrap_or_else(|e| panic!("seed {seed}: healed sync failed: {e}"));
        assert_eq!(db.durable_txns(), applied, "seed {seed}: tail lost after healing");

        let (recovered, _) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
        let n = recovered.applied_txns();
        assert!(
            acked <= n && n <= applied,
            "seed {seed}: contract violated (acked {acked}, recovered {n}, applied {applied})"
        );
        assert_oracle_exact(recovered.db(), n, &format!("fsync-fault seed {seed}"));
    }
    assert!(retried > 0, "the sweep never exercised a retry");
    assert!(terminal > 0, "the sweep never exhausted the retry bound");
}

#[test]
fn file_mode_recovery_rewrites_torn_wal_tail() {
    let dir = std::env::temp_dir().join(format!("pcube-crash-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = DurableDb::create_at(
        &dir,
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    )
    .expect("create_at");
    db.apply(&[MaintenanceOp::Insert { codes: vec![1, 1], coords: vec![0.4, 0.6] }])
        .expect("apply");
    let n = db.applied_txns();
    drop(db);

    // The OS tore the last write: garbage bytes at the on-disk log tail.
    let wal_path = dir.join("wal.pcube");
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    bytes.extend_from_slice(&[0xAB; 13]);
    std::fs::write(&wal_path, &bytes).expect("write wal");

    let (mut db, report) =
        DurableDb::open_or_recover(&dir, DurabilityOptions::default()).expect("recover");
    assert!(report.torn_tail_bytes > 0, "the torn tail went unreported");
    assert_eq!(db.applied_txns(), n);
    let receipt = db
        .apply(&[MaintenanceOp::Insert { codes: vec![2, 0], coords: vec![0.2, 0.9] }])
        .expect("post-recovery apply");
    assert!(receipt.durable);
    drop(db);

    // Recovery must have rewritten wal.pcube to the intact prefix: the
    // second open sees no torn tail and the post-recovery commit survived.
    let (db2, report2) =
        DurableDb::open_or_recover(&dir, DurabilityOptions::default()).expect("second recover");
    assert_eq!(report2.torn_tail_bytes, 0, "recovery left the torn tail on disk");
    assert_eq!(db2.applied_txns(), n + 1, "durable commit lost behind the on-disk torn tail");
    let _ = std::fs::remove_dir_all(&dir);
}
