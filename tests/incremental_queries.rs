//! §V-C correctness: drill-down and roll-up must return exactly what a
//! fresh query with the new predicate set returns (Lemma 2), while reusing
//! the previous query's lists.

use pcube::core::{
    skyline_drill_down, skyline_query, skyline_roll_up, topk_drill_down, topk_query,
    topk_roll_up, LinearFn, PCubeConfig, PCubeDb,
};
use pcube::cube::{Predicate, Selection};
use pcube::data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build_db(n: usize, seed: u64) -> PCubeDb {
    let spec = SyntheticSpec {
        n_tuples: n,
        n_bool: 4,
        n_pref: 2,
        cardinality: 4,
        distribution: Distribution::Uniform,
        seed,
    };
    PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
}

fn sorted_tids(pairs: &[(u64, Vec<f64>)]) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.iter().map(|p| p.0).collect();
    v.sort_unstable();
    v
}

#[test]
fn skyline_drill_down_equals_fresh_query() {
    let db = build_db(1000, 31);
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..8 {
        let base = sample_selection(db.relation(), 1, &mut rng);
        let tid = rng.gen_range(0..db.relation().len() as u64);
        let extra_dim = (base[0].dim + 1 + rng.gen_range(0..3)) % 4;
        let extra = Predicate { dim: extra_dim, value: db.relation().bool_code(tid, extra_dim) };

        let first = skyline_query(&db, &base, &[0, 1], false);
        let drilled = skyline_drill_down(&db, first.state, extra);

        let mut full: Selection = base.clone();
        full.push(extra);
        let fresh = skyline_query(&db, &full, &[0, 1], false);
        assert_eq!(
            sorted_tids(&drilled.skyline),
            sorted_tids(&fresh.skyline),
            "base {base:?} extra {extra:?}"
        );
    }
}

#[test]
fn skyline_roll_up_equals_fresh_query() {
    let db = build_db(1000, 32);
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..8 {
        let sel = sample_selection(db.relation(), 2, &mut rng);
        let drop_dim = sel[rng.gen_range(0..2)].dim;

        let first = skyline_query(&db, &sel, &[0, 1], false);
        let rolled = skyline_roll_up(&db, first.state, drop_dim);

        let remaining: Selection = sel.iter().copied().filter(|p| p.dim != drop_dim).collect();
        let fresh = skyline_query(&db, &remaining, &[0, 1], false);
        assert_eq!(
            sorted_tids(&rolled.skyline),
            sorted_tids(&fresh.skyline),
            "sel {sel:?} dropped {drop_dim}"
        );
    }
}

#[test]
fn skyline_drill_then_roll_returns_to_start() {
    let db = build_db(800, 33);
    let mut rng = StdRng::seed_from_u64(3);
    let base = sample_selection(db.relation(), 1, &mut rng);
    let tid = rng.gen_range(0..db.relation().len() as u64);
    let extra_dim = (base[0].dim + 1) % 4;
    let extra = Predicate { dim: extra_dim, value: db.relation().bool_code(tid, extra_dim) };

    let first = skyline_query(&db, &base, &[0, 1], false);
    let original = sorted_tids(&first.skyline);
    let drilled = skyline_drill_down(&db, first.state, extra);
    let back = skyline_roll_up(&db, drilled.state, extra_dim);
    assert_eq!(sorted_tids(&back.skyline), original);
}

#[test]
fn chained_drill_downs_stay_correct() {
    let db = build_db(1200, 34);
    let mut rng = StdRng::seed_from_u64(4);
    let tid = rng.gen_range(0..db.relation().len() as u64);
    // Drill from 0 to 3 predicates along a real row so every step matches
    // at least one tuple.
    let mut state = skyline_query(&db, &Vec::new(), &[0, 1], false).state;
    let mut selection: Selection = Vec::new();
    for dim in 0..3 {
        let extra = Predicate { dim, value: db.relation().bool_code(tid, dim) };
        selection.push(extra);
        let drilled = skyline_drill_down(&db, state, extra);
        let fresh = skyline_query(&db, &selection, &[0, 1], false);
        assert_eq!(
            sorted_tids(&drilled.skyline),
            sorted_tids(&fresh.skyline),
            "after drilling to {selection:?}"
        );
        state = drilled.state;
    }
}

#[test]
fn topk_drill_down_equals_fresh_query() {
    let db = build_db(1000, 35);
    let f = LinearFn::new(vec![0.6, 0.4]);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..8 {
        let base = sample_selection(db.relation(), 1, &mut rng);
        let tid = rng.gen_range(0..db.relation().len() as u64);
        let extra_dim = (base[0].dim + 1 + rng.gen_range(0..3)) % 4;
        let extra = Predicate { dim: extra_dim, value: db.relation().bool_code(tid, extra_dim) };

        let first = topk_query(&db, &base, 10, &f, false);
        let drilled = topk_drill_down(&db, first.state, extra, &f);

        let mut full: Selection = base.clone();
        full.push(extra);
        let fresh = topk_query(&db, &full, 10, &f, false);
        assert_eq!(drilled.topk.len(), fresh.topk.len());
        for (d, fr) in drilled.topk.iter().zip(&fresh.topk) {
            assert!((d.2 - fr.2).abs() < 1e-9, "scores {} vs {}", d.2, fr.2);
        }
    }
}

#[test]
fn topk_roll_up_equals_fresh_query() {
    let db = build_db(1000, 36);
    let f = LinearFn::new(vec![0.5, 0.5]);
    let mut rng = StdRng::seed_from_u64(6);
    for _ in 0..8 {
        let sel = sample_selection(db.relation(), 2, &mut rng);
        let drop_dim = sel[rng.gen_range(0..2)].dim;

        let first = topk_query(&db, &sel, 10, &f, false);
        let rolled = topk_roll_up(&db, first.state, drop_dim, &f);

        let remaining: Selection = sel.iter().copied().filter(|p| p.dim != drop_dim).collect();
        let fresh = topk_query(&db, &remaining, 10, &f, false);
        assert_eq!(rolled.topk.len(), fresh.topk.len(), "sel {sel:?} drop {drop_dim}");
        for (r, fr) in rolled.topk.iter().zip(&fresh.topk) {
            assert!((r.2 - fr.2).abs() < 1e-9, "scores {} vs {}", r.2, fr.2);
        }
    }
}

#[test]
fn drill_down_is_cheaper_than_fresh_query() {
    // Fig 16's claim, qualitatively: continuing from cached lists reads
    // fewer R-tree blocks than starting over.
    let db = build_db(6000, 37);
    let mut rng = StdRng::seed_from_u64(7);
    let mut drill_reads = 0u64;
    let mut fresh_reads = 0u64;
    for _ in 0..5 {
        let base = sample_selection(db.relation(), 1, &mut rng);
        let tid = rng.gen_range(0..db.relation().len() as u64);
        let extra_dim = (base[0].dim + 1) % 4;
        let extra = Predicate { dim: extra_dim, value: db.relation().bool_code(tid, extra_dim) };
        let first = skyline_query(&db, &base, &[0, 1], false);
        let drilled = skyline_drill_down(&db, first.state, extra);
        let mut full = base.clone();
        full.push(extra);
        let fresh = skyline_query(&db, &full, &[0, 1], false);
        drill_reads += drilled.stats.io.reads(pcube::storage::IoCategory::RtreeBlock);
        fresh_reads += fresh.stats.io.reads(pcube::storage::IoCategory::RtreeBlock);
    }
    assert!(
        drill_reads < fresh_reads,
        "drill-down should be cheaper: {drill_reads} vs {fresh_reads} block reads"
    );
}
