//! Differential testing against naive full-scan oracles: for every query
//! class (top-k, skyline, dynamic skyline, convex hull) and for arbitrary
//! proptest-generated datasets and selections, the serial engine, the
//! parallel engine at several worker counts, and a brute-force oracle must
//! produce **exactly** the same answer — same tuples, same order, same
//! scores. Serial vs parallel is compared bit-for-bit; the engines'
//! canonical `(score, tid)` result order is what makes that possible.

use pcube::baselines::reference::{bnl_skyline, naive_topk};
use pcube::baselines::{
    BooleanFirstExecutor, BooleanIndexSet, DominationFirstExecutor, IndexMergeExecutor,
};
use pcube::core::{
    convex_hull_query, dynamic_skyline_query, par_convex_hull_query, par_dynamic_skyline_query,
    par_skyline_query, par_topk_query, skyline_query, skyline_query_governed, topk_query,
    topk_query_governed, Executor, LinearFn, PCubeConfig, PCubeDb, PCubeExecutor, PSkylineClass,
    ParallelOptions, Planner, PriorityGraph, QueryBudget, RankingFunction, StopReason,
    SubspaceSkylineClass,
};
use pcube::cube::{Predicate, Relation, Schema, Selection};
use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [2, 3, 8];

#[derive(Debug, Clone)]
struct Row {
    codes: Vec<u32>,
    coords: Vec<f64>,
}

fn arb_rows(n_bool: usize, n_pref: usize, max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u32..4, n_bool..=n_bool),
            prop::collection::vec(0.0f64..1.0, n_pref..=n_pref),
        )
            .prop_map(|(codes, coords)| Row { codes, coords }),
        1..max_rows,
    )
}

/// Rows whose coordinates come from a 5-value grid, so projections onto a
/// subspace collide often — the interesting regime for distinct-value
/// subspace semantics.
fn arb_coarse_rows(
    n_bool: usize,
    n_pref: usize,
    max_rows: usize,
) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u32..4, n_bool..=n_bool),
            prop::collection::vec((0u8..5).prop_map(|v| v as f64 * 0.25), n_pref..=n_pref),
        )
            .prop_map(|(codes, coords)| Row { codes, coords }),
        1..max_rows,
    )
}

fn db_from(rows: &[Row], n_bool: usize, n_pref: usize) -> PCubeDb {
    let bool_names: Vec<String> = (0..n_bool).map(|i| format!("A{i}")).collect();
    let pref_names: Vec<String> = (0..n_pref).map(|i| format!("N{i}")).collect();
    let schema = Schema::new(
        &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &pref_names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut relation = Relation::new(schema);
    for r in rows {
        relation.push_coded(&r.codes, &r.coords);
    }
    PCubeDb::build(relation, &PCubeConfig::default())
}

fn qualifying(rows: &[Row], sel: &Selection) -> Vec<(u64, Vec<f64>)> {
    rows.iter()
        .enumerate()
        .filter(|(_, r)| sel.iter().all(|p| r.codes[p.dim] == p.value))
        .map(|(i, r)| (i as u64, r.coords.clone()))
        .collect()
}

/// Oracle skyline in the engines' canonical order: BNL over a full scan,
/// then sort by `(coordinate sum over pref_dims, tid)`.
fn oracle_skyline(points: &[(u64, Vec<f64>)], pref_dims: &[usize]) -> Vec<(u64, Vec<f64>)> {
    let mut sky = bnl_skyline(points, pref_dims);
    let key = |c: &[f64]| -> f64 { pref_dims.iter().map(|&d| c[d]).sum() };
    sky.sort_by(|a, b| key(&a.1).total_cmp(&key(&b.1)).then(a.0.cmp(&b.0)));
    sky
}

/// Oracle dynamic skyline: BNL in `|x − q|` space, canonical order by
/// `(transformed key, tid)`, reported with original coordinates.
fn oracle_dynamic(
    points: &[(u64, Vec<f64>)],
    q: &[f64],
    pref_dims: &[usize],
) -> Vec<(u64, Vec<f64>)> {
    let transformed: Vec<(u64, Vec<f64>)> = points
        .iter()
        .map(|(t, c)| (*t, c.iter().enumerate().map(|(d, &x)| (x - q[d]).abs()).collect()))
        .collect();
    let sky = oracle_skyline(&transformed, pref_dims);
    sky.into_iter()
        .map(|(tid, _)| {
            let orig = points
                .iter()
                .find(|(t, _)| *t == tid)
                .expect("skyline tid came from points")
                .1
                .clone();
            (tid, orig)
        })
        .collect()
}

/// Transitive closure of priority edges over dimension ids `0..n` —
/// a plain boolean-matrix Floyd–Warshall, independent of the engine's
/// bitmask representation.
fn priority_closure(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<bool>> {
    let mut c = vec![vec![false; n]; n];
    for &(a, b) in edges {
        c[a][b] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if c[i][k] && c[k][j] {
                    c[i][j] = true;
                }
            }
        }
    }
    c
}

/// `a ≻_Γ b` (Mindolin & Chomicki): `a` is strictly better somewhere, and
/// every dimension where `a` is strictly worse is excused by some
/// strictly-better dimension with (transitive) priority over it.
fn gamma_dominates(a: &[f64], b: &[f64], dims: &[usize], cl: &[Vec<bool>]) -> bool {
    let better: Vec<usize> = dims.iter().copied().filter(|&d| a[d] < b[d]).collect();
    if better.is_empty() {
        return false;
    }
    dims.iter().copied().filter(|&d| a[d] > b[d]).all(|d| better.iter().any(|&g| cl[g][d]))
}

/// Oracle p-skyline: the ≻_Γ-maximal points of a full scan, in the
/// engines' canonical `(coordinate sum over dims, tid)` order.
fn oracle_pskyline(
    points: &[(u64, Vec<f64>)],
    dims: &[usize],
    edges: &[(usize, usize)],
    n_pref: usize,
) -> Vec<(u64, Vec<f64>)> {
    let cl = priority_closure(n_pref, edges);
    let mut sky: Vec<(u64, Vec<f64>)> = points
        .iter()
        .filter(|(t, c)| {
            !points.iter().any(|(o, oc)| o != t && gamma_dominates(oc, c, dims, &cl))
        })
        .cloned()
        .collect();
    let key = |c: &[f64]| -> f64 { dims.iter().map(|&d| c[d]).sum() };
    sky.sort_by(|a, b| key(&a.1).total_cmp(&key(&b.1)).then(a.0.cmp(&b.0)));
    sky
}

/// Oracle subspace skyline: Pareto-maximal points of the projection onto
/// `dims`, canonical `(projected sum, tid)` order, then distinct-value
/// dedup keeping the smallest tid per projected point; reported with the
/// projected coordinates only.
fn oracle_subspace(points: &[(u64, Vec<f64>)], dims: &[usize]) -> Vec<(u64, Vec<f64>)> {
    let mut kept: Vec<(u64, Vec<f64>)> = points
        .iter()
        .filter(|(t, c)| {
            !points.iter().any(|(o, oc)| {
                o != t
                    && dims.iter().all(|&d| oc[d] <= c[d])
                    && dims.iter().any(|&d| oc[d] < c[d])
            })
        })
        .cloned()
        .collect();
    let key = |c: &[f64]| -> f64 { dims.iter().map(|&d| c[d]).sum() };
    kept.sort_by(|a, b| key(&a.1).total_cmp(&key(&b.1)).then(a.0.cmp(&b.0)));
    let mut seen: Vec<Vec<u64>> = Vec::new();
    let mut out = Vec::new();
    for (t, c) in kept {
        let proj_bits: Vec<u64> = dims.iter().map(|&d| c[d].to_bits()).collect();
        if seen.contains(&proj_bits) {
            continue;
        }
        seen.push(proj_bits);
        out.push((t, dims.iter().map(|&d| c[d]).collect()));
    }
    out
}

/// Priority DAGs exercised by the p-skyline differential tests (edges in
/// actual dimension ids over 3 preference dimensions): empty (= Pareto),
/// a single edge, a transitive chain, shared dominated/dominant dims.
const PRIORITY_EDGE_SETS: [&[(usize, usize)]; 5] = [
    &[],
    &[(0, 1)],
    &[(0, 1), (1, 2)],
    &[(0, 2), (1, 2)],
    &[(2, 0), (2, 1)],
];

/// Oracle convex hull: Andrew's monotone chain over a full scan — the same
/// tie conventions as the engine (sort by `(x, y, tid)`, coordinate dedup
/// keeping the smallest tid, collinear boundary points dropped with the
/// engine's epsilon).
fn oracle_hull(points: &[(u64, Vec<f64>)], dims: (usize, usize)) -> Vec<(u64, [f64; 2])> {
    fn cross(o: [f64; 2], a: [f64; 2], b: [f64; 2]) -> f64 {
        (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
    }
    let mut pts: Vec<(u64, [f64; 2])> =
        points.iter().map(|(t, c)| (*t, [c[dims.0], c[dims.1]])).collect();
    pts.sort_by(|a, b| {
        a.1[0].total_cmp(&b.1[0]).then(a.1[1].total_cmp(&b.1[1])).then(a.0.cmp(&b.0))
    });
    pts.dedup_by(|a, b| a.1 == b.1);
    if pts.len() < 3 {
        return pts;
    }
    let chain = |iter: &mut dyn Iterator<Item = &(u64, [f64; 2])>| {
        let mut half: Vec<(u64, [f64; 2])> = Vec::new();
        for &p in iter {
            while half.len() >= 2
                && cross(half[half.len() - 2].1, half[half.len() - 1].1, p.1) <= 1e-12
            {
                half.pop();
            }
            half.push(p);
        }
        half
    };
    let mut lower = chain(&mut pts.iter());
    let mut upper = chain(&mut pts.iter().rev());
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn topk_serial_and_parallel_match_oracle(
        rows in arb_rows(2, 2, 150),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        k in 1usize..12,
        w0 in 0.01f64..1.0,
        w1 in 0.01f64..1.0,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let f = LinearFn::new(vec![w0, w1]);
        let oracle = naive_topk(&qualifying(&rows, &sel), k, &f);
        let serial = topk_query(&db, &sel, k, &f, false);
        // Oracle check: same tids in the same order, scores within float
        // noise of the oracle's recomputation.
        prop_assert_eq!(
            serial.topk.iter().map(|r| r.0).collect::<Vec<_>>(),
            oracle.iter().map(|r| r.0).collect::<Vec<_>>()
        );
        for (g, e) in serial.topk.iter().zip(&oracle) {
            prop_assert!((g.2 - e.2).abs() < 1e-9, "score {} vs {}", g.2, e.2);
        }
        // Parallel check: bit-identical to serial at every worker count.
        for workers in WORKER_COUNTS {
            let par = par_topk_query(&db, &sel, k, &f, ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.topk, &serial.topk, "workers={}", workers);
        }
    }

    #[test]
    fn skyline_serial_and_parallel_match_oracle(
        rows in arb_rows(2, 2, 150),
        d0 in 0u32..4,
        d1 in 0u32..4,
        n_preds in 0usize..=2,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }, Predicate { dim: 1, value: d1 }]
            [..n_preds]
            .to_vec();
        let oracle = oracle_skyline(&qualifying(&rows, &sel), &[0, 1]);
        let serial = skyline_query(&db, &sel, &[0, 1], false);
        prop_assert_eq!(&serial.skyline, &oracle);
        for workers in WORKER_COUNTS {
            let par = par_skyline_query(&db, &sel, &[0, 1], ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.skyline, &serial.skyline, "workers={}", workers);
        }
    }

    #[test]
    fn dynamic_skyline_serial_and_parallel_match_oracle(
        rows in arb_rows(2, 2, 120),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        q0 in 0.0f64..1.0,
        q1 in 0.0f64..1.0,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let q = vec![q0, q1];
        let oracle = oracle_dynamic(&qualifying(&rows, &sel), &q, &[0, 1]);
        let serial = dynamic_skyline_query(&db, &sel, &q, &[0, 1]);
        prop_assert_eq!(&serial.skyline, &oracle);
        for workers in WORKER_COUNTS {
            let par =
                par_dynamic_skyline_query(&db, &sel, &q, &[0, 1], ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.skyline, &serial.skyline, "workers={}", workers);
        }
    }

    #[test]
    fn hull_serial_and_parallel_match_oracle(
        rows in arb_rows(2, 2, 150),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let oracle = oracle_hull(&qualifying(&rows, &sel), (0, 1));
        let serial = convex_hull_query(&db, &sel, (0, 1));
        prop_assert_eq!(&serial.hull, &oracle);
        for workers in WORKER_COUNTS {
            let par = par_convex_hull_query(&db, &sel, (0, 1), ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.hull, &serial.hull, "workers={}", workers);
        }
    }

    /// Whichever engine the §VI planner picks, the answer must be exactly
    /// the oracle's — the planner changes cost, never correctness — and
    /// every recorded cost estimate must be finite and positive.
    #[test]
    fn planner_chosen_engine_matches_oracle(
        rows in arb_rows(2, 2, 120),
        d0 in 0u32..4,
        d1 in 0u32..4,
        n_preds in 0usize..=2,
        k in 1usize..10,
        w0 in 0.01f64..1.0,
        w1 in 0.01f64..1.0,
    ) {
        let db = db_from(&rows, 2, 2);
        let planner = Planner::new(&db);
        let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
        let boolean = BooleanFirstExecutor::new(&indexes);
        let merge = IndexMergeExecutor::new(&indexes);
        let executors: Vec<&dyn Executor> =
            vec![&PCubeExecutor, &boolean, &DominationFirstExecutor, &merge];
        let sel: Selection = [Predicate { dim: 0, value: d0 }, Predicate { dim: 1, value: d1 }]
            [..n_preds]
            .to_vec();

        let f = LinearFn::new(vec![w0, w1]);
        let oracle = naive_topk(&qualifying(&rows, &sel), k, &f);
        let (topk, stats) = db.plan_and_run_topk(&planner, &executors, &sel, k, &f).unwrap();
        prop_assert_eq!(
            topk.iter().map(|r| r.0).collect::<Vec<_>>(),
            oracle.iter().map(|r| r.0).collect::<Vec<_>>(),
            "planner chose {:?}", stats.plan.as_ref().map(|p| p.chosen)
        );
        for (g, e) in topk.iter().zip(&oracle) {
            prop_assert!((g.2 - e.2).abs() < 1e-9, "score {} vs {}", g.2, e.2);
        }
        let plan = stats.plan.expect("planner decision recorded");
        prop_assert!(!plan.estimates.is_empty());
        for e in &plan.estimates {
            prop_assert!(e.blocks().is_finite() && e.blocks() > 0.0, "{:?}", e);
            prop_assert!(e.seconds.is_finite() && e.seconds > 0.0, "{:?}", e);
        }
        prop_assert!((0.0..=1.0).contains(&plan.selectivity));

        let oracle = oracle_skyline(&qualifying(&rows, &sel), &[0, 1]);
        let (sky, stats) =
            db.plan_and_run_skyline(&planner, &executors, &sel, &[0, 1]).unwrap();
        prop_assert_eq!(
            &sky, &oracle,
            "planner chose {:?}", stats.plan.as_ref().map(|p| p.chosen)
        );
        let plan = stats.plan.expect("planner decision recorded");
        for e in &plan.estimates {
            prop_assert!(e.blocks().is_finite() && e.blocks() > 0.0, "{:?}", e);
        }
    }

    /// Early termination must not corrupt the books: for any block budget,
    /// the `IoSnapshot` in the returned stats equals the delta actually
    /// charged on the database's shared ledger, and a `Partial` outcome's
    /// progress counters agree with the stats and the rows returned. A
    /// budget generous enough never to trip must leave the answer
    /// bit-identical to the ungoverned run.
    #[test]
    fn early_termination_counters_equal_blocks_actually_touched(
        rows in arb_rows(2, 2, 150),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        k in 1usize..12,
        max_blocks in 1u64..40,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let f = LinearFn::new(vec![0.6, 0.4]);
        let full_topk = topk_query(&db, &sel, k, &f, false);
        let full_sky = skyline_query(&db, &sel, &[0, 1], false);
        let budget = QueryBudget::unlimited().with_block_budget(max_blocks);

        // Top-k: the ledger delta measured outside the query must equal
        // the stats the query reports about itself.
        let base = db.stats().total_reads();
        let cut = topk_query_governed(&db, &sel, k, &f, false, &budget, None);
        let delta = db.stats().total_reads() - base;
        prop_assert_eq!(cut.stats.io.total_reads(), delta, "top-k stats vs ledger");
        match &cut.stats.outcome {
            pcube::core::QueryOutcome::Complete => {
                prop_assert_eq!(&cut.topk, &full_topk.topk, "untripped run is identical");
            }
            pcube::core::QueryOutcome::Partial { reason, progress } => {
                prop_assert_eq!(*reason, StopReason::BlockBudgetExceeded);
                prop_assert_eq!(progress.blocks_used, delta, "progress vs ledger");
                prop_assert!(progress.blocks_used > max_blocks, "trips only past the budget");
                prop_assert_eq!(progress.nodes_expanded, cut.stats.nodes_expanded);
                prop_assert_eq!(progress.results_so_far, cut.topk.len());
                prop_assert!(progress.pops >= cut.stats.nodes_expanded,
                    "every expansion was popped first");
                // Serial partial top-k is a prefix of the true top-k.
                prop_assert_eq!(&cut.topk[..], &full_topk.topk[..cut.topk.len()]);
            }
        }

        // Skyline: same bookkeeping contract; a partial is a sound subset.
        let base = db.stats().total_reads();
        let cut = skyline_query_governed(&db, &sel, &[0, 1], false, &budget, None);
        let delta = db.stats().total_reads() - base;
        prop_assert_eq!(cut.stats.io.total_reads(), delta, "skyline stats vs ledger");
        if let pcube::core::QueryOutcome::Partial { progress, .. } = &cut.stats.outcome {
            prop_assert_eq!(progress.blocks_used, delta);
            prop_assert_eq!(progress.results_so_far, cut.skyline.len());
            for p in &cut.skyline {
                prop_assert!(full_sky.skyline.contains(p), "partial skyline ⊆ full");
            }
        } else {
            prop_assert_eq!(&cut.skyline, &full_sky.skyline);
        }
    }

    /// The plugged-in p-skyline class: kernel == independent naive oracle
    /// for a spread of priority DAGs (including the empty one, which must
    /// reproduce the Pareto skyline), and parallel == serial bit-for-bit
    /// at every worker count.
    #[test]
    fn pskyline_serial_and_parallel_match_oracle(
        rows in arb_rows(2, 3, 120),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        edge_set in 0usize..PRIORITY_EDGE_SETS.len(),
    ) {
        let db = db_from(&rows, 2, 3);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let edges = PRIORITY_EDGE_SETS[edge_set];
        let graph = PriorityGraph::new(vec![0, 1, 2], edges).expect("the edge sets are DAGs");
        let oracle = oracle_pskyline(&qualifying(&rows, &sel), &[0, 1, 2], edges, 3);
        let serial = db.pskyline(&sel, &graph);
        prop_assert_eq!(&serial.rows, &oracle, "edges {:?}", edges);
        if edges.is_empty() {
            let pareto = skyline_query(&db, &sel, &[0, 1, 2], false);
            prop_assert_eq!(&serial.rows, &pareto.skyline, "empty Γ is the Pareto skyline");
        }
        for workers in WORKER_COUNTS {
            let par = db.par_pskyline(&sel, &graph, ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.rows, &serial.rows, "workers={}", workers);
        }
    }

    /// The plugged-in subspace skyline class: kernel == independent naive
    /// oracle (coarse coordinates force duplicate projections, so the
    /// distinct-value dedup is actually exercised), parallel == serial.
    #[test]
    fn subspace_skyline_serial_and_parallel_match_oracle(
        rows in arb_coarse_rows(2, 3, 120),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        which in 0usize..3,
    ) {
        let dims_options: [&[usize]; 3] = [&[0], &[2, 0], &[1, 2]];
        let dims = dims_options[which];
        let db = db_from(&rows, 2, 3);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let oracle = oracle_subspace(&qualifying(&rows, &sel), dims);
        let serial = db.subspace_skyline(&sel, dims);
        prop_assert_eq!(&serial.rows, &oracle, "dims {:?}", dims);
        for workers in WORKER_COUNTS {
            let par = db.par_subspace_skyline(&sel, dims, ParallelOptions::with_workers(workers));
            prop_assert_eq!(&par.rows, &serial.rows, "workers={}", workers);
        }
    }

    /// Budget semantics for the new classes: an untripped governed run is
    /// bit-identical to the full answer; a partial answer contains only
    /// qualifying tuples and is internally consistent (mutually
    /// non-dominated, distinct projections for the subspace class).
    #[test]
    fn pskyline_and_subspace_partials_are_sound(
        rows in arb_coarse_rows(2, 3, 150),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
        max_blocks in 1u64..40,
    ) {
        let db = db_from(&rows, 2, 3);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        let budget = QueryBudget::unlimited().with_block_budget(max_blocks);
        let qual: std::collections::HashSet<u64> =
            qualifying(&rows, &sel).iter().map(|(t, _)| *t).collect();

        let edges = [(0usize, 1usize), (0, 2)];
        let graph = PriorityGraph::new(vec![0, 1, 2], &edges).expect("DAG");
        let class = PSkylineClass::new(graph);
        let full = db.run(&sel, &class);
        let cut = db.run_governed(&sel, &class, &budget, None);
        match &cut.stats.outcome {
            pcube::core::QueryOutcome::Complete => {
                prop_assert_eq!(&cut.rows, &full.rows, "untripped run is identical");
            }
            pcube::core::QueryOutcome::Partial { reason, progress } => {
                prop_assert_eq!(*reason, StopReason::BlockBudgetExceeded);
                prop_assert_eq!(progress.results_so_far, cut.rows.len());
                let cl = priority_closure(3, &edges);
                for (t, c) in &cut.rows {
                    prop_assert!(qual.contains(t), "partial rows qualify");
                    prop_assert_eq!(c, &rows[*t as usize].coords, "coords come from the row");
                    for (o, oc) in &cut.rows {
                        prop_assert!(
                            o == t || !gamma_dominates(oc, c, &[0, 1, 2], &cl),
                            "partial rows are mutually ≻_Γ-incomparable"
                        );
                    }
                }
            }
        }

        let dims = [1usize, 2];
        let class = SubspaceSkylineClass::new(dims.to_vec());
        let full = db.run(&sel, &class);
        let cut = db.run_governed(&sel, &class, &budget, None);
        match &cut.stats.outcome {
            pcube::core::QueryOutcome::Complete => {
                prop_assert_eq!(&cut.rows, &full.rows, "untripped run is identical");
            }
            pcube::core::QueryOutcome::Partial { reason, .. } => {
                prop_assert_eq!(*reason, StopReason::BlockBudgetExceeded);
                for (t, c) in &cut.rows {
                    prop_assert!(qual.contains(t), "partial rows qualify");
                    let expect: Vec<f64> =
                        dims.iter().map(|&d| rows[*t as usize].coords[d]).collect();
                    prop_assert_eq!(c, &expect, "projected coords come from the row");
                    for (o, oc) in &cut.rows {
                        if o != t {
                            prop_assert!(oc != c, "projections are distinct");
                            prop_assert!(
                                !(oc[0] <= c[0] && oc[1] <= c[1]
                                    && (oc[0] < c[0] || oc[1] < c[1])),
                                "partial rows are mutually non-dominated"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn three_pref_dims_and_subset_dims_agree(
        rows in arb_rows(2, 3, 100),
        d0 in 0u32..4,
        n_preds in 0usize..=1,
    ) {
        let db = db_from(&rows, 2, 3);
        let sel: Selection = [Predicate { dim: 0, value: d0 }][..n_preds].to_vec();
        for dims in [vec![0usize, 1, 2], vec![2, 0], vec![1]] {
            let oracle = oracle_skyline(&qualifying(&rows, &sel), &dims);
            let serial = skyline_query(&db, &sel, &dims, false);
            prop_assert_eq!(&serial.skyline, &oracle, "dims {:?}", &dims);
            let par = par_skyline_query(&db, &sel, &dims, ParallelOptions::with_workers(4));
            prop_assert_eq!(&par.skyline, &serial.skyline, "dims {:?}", &dims);
        }
    }
}

/// The ranking function used in the deterministic (non-proptest) checks
/// exercises the `RankingFunction + Sync` bound with a trait object.
#[test]
fn parallel_topk_accepts_trait_objects_and_empty_selections() {
    let rows: Vec<Row> = (0..500u64)
        .map(|i| Row {
            codes: vec![(i % 4) as u32, (i % 3) as u32],
            coords: vec![(i as f64 * 0.617) % 1.0, (i as f64 * 0.387) % 1.0],
        })
        .collect();
    let db = db_from(&rows, 2, 2);
    let f: Box<dyn RankingFunction + Sync> = Box::new(LinearFn::new(vec![0.7, 0.3]));
    let serial = topk_query(&db, &Vec::new(), 10, f.as_ref(), false);
    let par = par_topk_query(&db, &Vec::new(), 10, f.as_ref(), ParallelOptions::with_workers(8));
    assert_eq!(par.topk, serial.topk);
    assert_eq!(par.topk.len(), 10);
}

/// Impossible selections must come back empty from both engines, and the
/// worker-capped fan-out (more workers than root children) must degrade
/// gracefully.
#[test]
fn parallel_engines_handle_empty_and_tiny_inputs() {
    let rows: Vec<Row> = (0..40u64)
        .map(|i| Row {
            codes: vec![(i % 2) as u32, 0],
            coords: vec![(i as f64 * 0.713) % 1.0, (i as f64 * 0.293) % 1.0],
        })
        .collect();
    let db = db_from(&rows, 2, 2);
    let impossible: Selection = vec![Predicate { dim: 0, value: 999 }];
    let f = LinearFn::new(vec![1.0, 1.0]);
    let opts = ParallelOptions::with_workers(64);
    assert!(par_topk_query(&db, &impossible, 5, &f, opts).topk.is_empty());
    assert!(par_skyline_query(&db, &impossible, &[0, 1], opts).skyline.is_empty());
    assert!(par_dynamic_skyline_query(&db, &impossible, &[0.5, 0.5], &[0, 1], opts)
        .skyline
        .is_empty());
    assert!(par_convex_hull_query(&db, &impossible, (0, 1), opts).hull.is_empty());
}
