//! Model checks for the lock-free query-kernel structures, in the style of
//! an offline model checker: enumerate **every** interleaving of the
//! structures' primitive steps for small worker counts, replay each schedule
//! against both the real structure and a trivially-correct reference model,
//! and assert they agree at every step. Larger worker counts (4, 8) are
//! covered by seeded-random schedules plus real-thread stress.
//!
//! Checked structures (see `pcube_core::query::kernel`):
//!
//! * [`SharedBound`] — atomic `fetch_min` over order-preserving f64 bits.
//!   Invariants: every read is the minimum of all previously applied
//!   updates (no lost update), and reads are monotone non-increasing.
//! * [`SharedWindow`] — grow-only lock-free point list with decomposed
//!   `reserve` / `publish` steps (the exact window where a torn read could
//!   exist). Invariants: `refresh` never yields a torn or foreign point,
//!   never yields a duplicate, marks are monotone, the visible prefix is
//!   gap-free, and once all publishes land every point is visible (no lost
//!   update).

use pcube::core::query::kernel::{SharedBound, SharedWindow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Visits every interleaving of `counts[w]` ordered steps per worker, as a
/// sequence of worker indices. The number of schedules is the multinomial
/// `(Σcounts)! / Π counts[w]!` — callers keep counts small enough to be
/// exhaustive.
fn enumerate_schedules(counts: &[usize], visit: &mut dyn FnMut(&[usize])) {
    fn rec(
        remaining: &mut [usize],
        schedule: &mut Vec<usize>,
        total: usize,
        visit: &mut dyn FnMut(&[usize]),
    ) {
        if schedule.len() == total {
            visit(schedule);
            return;
        }
        for w in 0..remaining.len() {
            if remaining[w] > 0 {
                remaining[w] -= 1;
                schedule.push(w);
                rec(remaining, schedule, total, visit);
                schedule.pop();
                remaining[w] += 1;
            }
        }
    }
    let total = counts.iter().sum();
    rec(&mut counts.to_vec(), &mut Vec::with_capacity(total), total, visit);
}

/// A seeded-random interleaving with `counts[w]` steps per worker —
/// Fisher–Yates over the step multiset (intra-worker order is preserved by
/// construction because steps of one worker are interchangeable indices).
fn random_schedule(counts: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let mut schedule: Vec<usize> =
        counts.iter().enumerate().flat_map(|(w, &n)| std::iter::repeat_n(w, n)).collect();
    for i in (1..schedule.len()).rev() {
        schedule.swap(i, rng.gen_range(0..i + 1));
    }
    schedule
}

// ---------------------------------------------------------------------------
// SharedBound
// ---------------------------------------------------------------------------

/// Replays one schedule of `lower_to` steps against the reference model
/// (a running min), asserting agreement after every step.
fn check_bound_schedule(scripts: &[Vec<f64>], schedule: &[usize]) {
    let bound = SharedBound::unbounded();
    let mut cursor = vec![0usize; scripts.len()];
    let mut model = f64::INFINITY;
    let mut last_read = f64::INFINITY;
    for &w in schedule {
        let v = scripts[w][cursor[w]];
        cursor[w] += 1;
        bound.lower_to(v);
        model = model.min(v);
        let read = bound.get();
        assert_eq!(read, model, "bound diverged from running min in schedule {schedule:?}");
        assert!(read <= last_read, "bound rose in schedule {schedule:?}");
        last_read = read;
    }
    assert_eq!(bound.get(), model, "final bound is not the global min");
}

/// Exhaustive: every interleaving of 2 and 3 workers' update scripts keeps
/// the bound equal to the running min of applied updates.
#[test]
fn shared_bound_exhaustive_interleavings_2_and_3_workers() {
    // Scripts mix improving, non-improving and equal updates, including a
    // negative value and a non-monotone per-worker sequence.
    let two: Vec<Vec<f64>> = vec![vec![5.0, 2.0, 7.5], vec![3.0, 3.0, -1.0]];
    let mut n = 0usize;
    enumerate_schedules(&[3, 3], &mut |s| {
        check_bound_schedule(&two, s);
        n += 1;
    });
    assert_eq!(n, 20, "C(6,3) interleavings of two 3-step scripts");

    let three: Vec<Vec<f64>> = vec![vec![9.0, 0.5], vec![0.5, 4.0], vec![2.0, 1.0]];
    let mut n = 0usize;
    enumerate_schedules(&[2, 2, 2], &mut |s| {
        check_bound_schedule(&three, s);
        n += 1;
    });
    assert_eq!(n, 90, "6!/(2!·2!·2!) interleavings of three 2-step scripts");
}

/// Seeded-random schedules at 4 and 8 workers, then a real-thread stress at
/// 2, 4 and 8 workers: the final bound is exactly the global minimum and no
/// thread ever observes the bound rise.
#[test]
fn shared_bound_random_schedules_and_threads_2_4_8_workers() {
    let mut rng = StdRng::seed_from_u64(11);
    for &workers in &[4usize, 8] {
        let scripts: Vec<Vec<f64>> = (0..workers)
            .map(|w| (0..4).map(|i| ((w * 17 + i * 29) % 23) as f64 - 3.0).collect())
            .collect();
        let counts = vec![4usize; workers];
        for _ in 0..500 {
            let schedule = random_schedule(&counts, &mut rng);
            check_bound_schedule(&scripts, &schedule);
        }
    }

    for &workers in &[2usize, 4, 8] {
        let bound = SharedBound::unbounded();
        let per_worker = 1000usize;
        std::thread::scope(|scope| {
            for w in 0..workers {
                let bound = &bound;
                scope.spawn(move || {
                    let mut last = f64::INFINITY;
                    for i in 0..per_worker {
                        // Values sweep down to each worker's floor `w`.
                        bound.lower_to((w + per_worker - i) as f64);
                        let read = bound.get();
                        assert!(read <= last, "worker {w} saw the bound rise");
                        assert!(read >= 1.0, "bound below any written value");
                        last = read;
                    }
                });
            }
        });
        // Worker 0's floor is the global min: 0 + per_worker - (per_worker-1).
        assert_eq!(bound.get(), 1.0, "{workers}-worker min lost");
    }
}

// ---------------------------------------------------------------------------
// SharedWindow
// ---------------------------------------------------------------------------

/// The sentinel point worker `w` publishes as its `i`-th point. All three
/// coordinates encode (w, i), so a torn read — coordinates from different
/// writes — is detectable by internal inconsistency.
fn sentinel(w: usize, i: usize) -> Vec<f64> {
    vec![w as f64, i as f64, (w * 1000 + i) as f64]
}

/// Replays one schedule of decomposed reserve/publish steps, interleaving a
/// reader `refresh` after every step, and checks every window invariant.
///
/// Each worker's script is `points` repetitions of [reserve, publish], so
/// worker `w` contributes `2·points` steps; step `2i` reserves a slot for
/// its `i`-th point and step `2i+1` publishes it. Between any two steps the
/// window may have reserved-but-unpublished slots — exactly the state a
/// torn read or a gap in the visible prefix would come from.
fn check_window_schedule(workers: usize, points: usize, schedule: &[usize]) {
    let window = SharedWindow::default();
    let mut pending: Vec<Option<usize>> = vec![None; workers]; // reserved slot
    let mut next_point = vec![0usize; workers];
    let mut published = 0usize;
    let mut seen: Vec<Vec<f64>> = Vec::new();
    let mut mark = 0usize;
    for &w in schedule {
        match pending[w].take() {
            None => pending[w] = Some(window.reserve()),
            Some(slot) => {
                window.publish(slot, sentinel(w, next_point[w]));
                next_point[w] += 1;
                published += 1;
            }
        }
        let before = seen.len();
        let new_mark = window.refresh(mark, &mut seen);
        assert!(new_mark >= mark, "refresh mark went backwards");
        assert_eq!(seen.len() - before, new_mark - mark, "mark/point count mismatch");
        mark = new_mark;
        assert!(mark <= published, "refresh saw more points than were published");
        for p in &seen[before..] {
            let (w, i) = (p[0] as usize, p[1] as usize);
            assert_eq!(p, &sentinel(w, i), "torn read: {p:?} in schedule {schedule:?}");
        }
    }
    // All publishes have landed: the final refresh must surface every point
    // exactly once (no lost update, no duplicate).
    mark = window.refresh(mark, &mut seen);
    assert_eq!(mark, workers * points, "final mark misses published points");
    assert_eq!(seen.len(), workers * points);
    let mut tags: Vec<(usize, usize)> =
        seen.iter().map(|p| (p[0] as usize, p[1] as usize)).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), workers * points, "duplicate or lost point");
    for (w, counter) in next_point.iter().enumerate() {
        assert_eq!(*counter, points, "worker {w} did not publish all its points");
    }
}

/// Exhaustive: every interleaving of decomposed reserve/publish steps for
/// 2 workers × 2 points and 3 workers × 1 point (with a refresh wedged
/// between every pair of steps) upholds all window invariants.
#[test]
fn shared_window_exhaustive_interleavings_2_and_3_workers() {
    let mut n = 0usize;
    enumerate_schedules(&[4, 4], &mut |s| {
        check_window_schedule(2, 2, s);
        n += 1;
    });
    assert_eq!(n, 70, "C(8,4) interleavings of two 4-step scripts");

    let mut n = 0usize;
    enumerate_schedules(&[2, 2, 2], &mut |s| {
        check_window_schedule(3, 1, s);
        n += 1;
    });
    assert_eq!(n, 90, "6!/(2!·2!·2!) interleavings of three 2-step scripts");
}

/// Seeded-random schedules at 4 and 8 workers (2 points each), deep enough
/// that exhaustive enumeration is infeasible but the same invariants hold on
/// every sampled interleaving.
#[test]
fn shared_window_random_schedules_4_and_8_workers() {
    let mut rng = StdRng::seed_from_u64(23);
    for &workers in &[4usize, 8] {
        let counts = vec![4usize; workers]; // 2 points → 4 steps per worker
        for _ in 0..400 {
            let schedule = random_schedule(&counts, &mut rng);
            check_window_schedule(workers, 2, &schedule);
        }
    }
}

/// Real threads at 2, 4 and 8 workers: concurrent `push`es race a refreshing
/// reader; every intermediate snapshot is untorn and gap-free, and the final
/// window holds every point exactly once. Crosses the segment-0 boundary
/// (32 slots) so segment growth happens mid-race.
#[test]
fn shared_window_concurrent_push_and_refresh_2_4_8_workers() {
    for &workers in &[2usize, 4, 8] {
        let per_worker = 25usize; // 8×25 = 200 points: spans 3 spine segments
        let window = SharedWindow::default();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let window = &window;
                scope.spawn(move || {
                    for i in 0..per_worker {
                        window.push(sentinel(w, i));
                    }
                });
            }
            // Racing reader: refresh until every point is visible.
            let mut seen: Vec<Vec<f64>> = Vec::new();
            let mut mark = 0usize;
            while mark < workers * per_worker {
                let new_mark = window.refresh(mark, &mut seen);
                assert!(new_mark >= mark);
                for p in &seen[mark..new_mark] {
                    let (w, i) = (p[0] as usize, p[1] as usize);
                    assert_eq!(p, &sentinel(w, i), "torn read under real threads");
                }
                mark = new_mark;
                std::hint::spin_loop();
            }
            let mut tags: Vec<(usize, usize)> =
                seen.iter().map(|p| (p[0] as usize, p[1] as usize)).collect();
            tags.sort_unstable();
            tags.dedup();
            assert_eq!(tags.len(), workers * per_worker, "duplicate or lost point");
        });
    }
}
