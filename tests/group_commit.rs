//! Group-commit durability properties.
//!
//! The contract under test: with any interleaving of concurrent committers
//! feeding one log writer, and a crash at **any** batch boundary (including
//! mid-fsync, with a seeded torn cut), recovery yields a *prefix-closed*
//! set of committed transactions — every transaction recovery keeps is
//! preceded only by kept transactions in submission order, every receipt
//! acknowledged durable survives, and the recovered database answers
//! exactly like a clean re-execution of the surviving prefix.
//!
//! Two angles:
//!
//! * a deterministic proptest that models arbitrary arrival orders and
//!   batch splits directly through [`DurableDb::apply_batch`] (the same
//!   code path the queue's writer thread uses), so every case is seeded
//!   and replayable;
//! * a real-thread test that pushes concurrent submitters through
//!   [`CommitQueue`] with a crash plan installed, then recovers the corpse.

use pcube::prelude::*;
use proptest::prelude::*;

const SEED_ROWS: usize = 32;

fn seed_relation() -> Relation {
    let mut r = Relation::new(Schema::new(&["A", "B"], &["x", "y"]));
    let vals_a = ["a1", "a2", "a3"];
    let vals_b = ["b1", "b2"];
    for i in 0..SEED_ROWS {
        let x = (i as f64 * 0.3771).fract();
        let y = (i as f64 * 0.6113 + 0.131).fract();
        r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
    }
    r
}

/// The `k`-th submitted transaction: one insert with a payload derived from
/// `k`, so any prefix of the submission order is a pure function of its
/// length.
fn txn(k: usize) -> Vec<MaintenanceOp> {
    vec![MaintenanceOp::Insert {
        codes: vec![(k % 3) as u32, (k % 2) as u32],
        coords: vec![(k as f64 * 0.271 + 0.07).fract(), (k as f64 * 0.413 + 0.19).fract()],
    }]
}

/// Splits the first `n_txns` transactions into fsync batches whose sizes
/// cycle through `sizes`.
fn batches(n_txns: usize, sizes: &[usize]) -> Vec<Vec<Vec<MaintenanceOp>>> {
    let mut out = Vec::new();
    let mut next = 0usize;
    let mut cursor = 0usize;
    while next < n_txns {
        let take = sizes[cursor % sizes.len()].min(n_txns - next);
        cursor += 1;
        out.push((next..next + take).map(txn).collect());
        next += take;
    }
    out
}

fn skyline_tids(db: &PCubeDb) -> Vec<u64> {
    let out = skyline_query(db, &Vec::new(), &[0, 1], false);
    let mut tids: Vec<u64> = out.skyline.iter().map(|(t, _)| *t).collect();
    tids.sort_unstable();
    tids
}

/// A clean re-execution of the first `n` submitted transactions.
fn oracle(n: u64) -> PCubeDb {
    let mut db = PCubeDb::build(seed_relation(), &PCubeConfig::default());
    for k in 0..n as usize {
        for op in txn(k) {
            match op {
                MaintenanceOp::Insert { codes, coords } => {
                    db.insert_coded(&codes, &coords);
                }
                MaintenanceOp::Delete { .. } => unreachable!("insert-only workload"),
            }
        }
    }
    db
}

/// Drives the batches until done or the crash plan fires; errors after the
/// crash are the poisoned instance refusing work, which is expected.
fn drive_batches(db: &mut DurableDb, all: &[Vec<Vec<MaintenanceOp>>]) {
    for batch in all {
        let results = db.apply_batch(batch);
        if results.iter().any(|r| {
            matches!(
                r,
                Err(DurabilityError::Crashed { .. }) | Err(DurabilityError::Poisoned { .. })
            )
        }) {
            return;
        }
    }
}

fn assert_prefix_closed(state: &DurableState, acked: u64, applied: u64, context: &str) {
    let (recovered, report) =
        DurableDb::open_or_recover_from_state(state, DurabilityOptions::default())
            .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    let n = recovered.applied_txns();
    assert!(
        acked <= n && n <= applied,
        "{context}: prefix bounds violated (acked {acked}, recovered {n}, applied {applied})"
    );
    // Prefix closure in full: the recovered state IS the first-n-txns state,
    // not merely n transactions' worth of *some* subset.
    assert_eq!(
        recovered.live_tuples() as u64,
        SEED_ROWS as u64 + n,
        "{context}: recovered tuple count disagrees with a {n}-txn prefix"
    );
    assert_eq!(
        skyline_tids(recovered.db()),
        skyline_tids(&oracle(n)),
        "{context}: recovered answers diverge from the {n}-txn prefix oracle"
    );
    assert_eq!(
        report.txns_replayed + report.checkpoint_txns,
        n,
        "{context}: report inconsistent with recovered state: {report}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Any batch split of any submission count, crashed at any durability
    /// event (WAL append, fsync — with a seeded torn cut — page flush),
    /// recovers to a prefix of the submission order.
    #[test]
    fn any_batch_split_any_crash_point_recovers_a_prefix(
        n_txns in 4usize..18,
        sizes in prop::collection::vec(1usize..6, 1..6),
        crash_pick in any::<prop::sample::Index>(),
        torn_seed in any::<u64>(),
    ) {
        let all = batches(n_txns, &sizes);

        // Count the durability events of a clean run of this exact split.
        let mut counter = DurableDb::create(
            seed_relation(),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        );
        counter.set_crash_plan(CrashPlan::count_only());
        drive_batches(&mut counter, &all);
        prop_assert_eq!(counter.applied_txns(), n_txns as u64);
        let events = counter.crash_events_seen();

        // Crash at one seeded event (the +2 window includes "never fires").
        let k = crash_pick.index(events as usize + 2) as u64;
        let mut db = DurableDb::create(
            seed_relation(),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        );
        db.set_crash_plan(CrashPlan::at_event(k).with_seed(torn_seed | 1));
        drive_batches(&mut db, &all);
        let acked = db.durable_txns();
        let applied = db.applied_txns();
        if db.poisoned().is_none() {
            prop_assert_eq!(applied, n_txns as u64);
        }
        assert_prefix_closed(
            &db.durable_state(),
            acked,
            applied,
            &format!("split {sizes:?}, {n_txns} txns, crash event {k}"),
        );
    }
}

/// Real threads, real queue, real crash: concurrent submitters race into a
/// [`CommitQueue`] whose writer dies at a seeded boundary; every receipt
/// the queue acknowledged as durable must survive recovery, and losses are
/// typed errors on the submitters' side — never a panic, never a hang.
#[test]
fn concurrent_committers_with_a_crashing_writer_recover_a_prefix() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 6;
    for crash_event in [3u64, 11, 23, 41, 71, 997] {
        let mut db = DurableDb::create(
            seed_relation(),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        );
        db.set_crash_plan(CrashPlan::at_event(crash_event).with_seed(crash_event * 7 + 1));
        let queue = CommitQueue::start(
            db,
            CommitQueuePolicy {
                max_batch: 4,
                max_queue: 8,
                max_wait: std::time::Duration::from_micros(200),
            },
        );

        let mut durable_acked: Vec<u64> = Vec::new();
        let mut typed_failures = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut acked = Vec::new();
                        let mut failed = 0u64;
                        for i in 0..PER_THREAD {
                            let k = (t * PER_THREAD + i) as usize;
                            match queue.submit(txn(k)) {
                                Ok(receipt) => {
                                    if receipt.durable {
                                        acked.push(receipt.txn);
                                    }
                                }
                                Err(
                                    CommitError::Closed | CommitError::Rejected(_),
                                ) => failed += 1,
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        }
                        (acked, failed)
                    })
                })
                .collect();
            for handle in handles {
                let (acked, failed) = handle.join().expect("submitter panicked");
                durable_acked.extend(acked);
                typed_failures += failed;
            }
        });

        let db = queue.shutdown();
        let crashed = db.poisoned().is_some();
        let acked_floor = durable_acked.iter().copied().max().unwrap_or(0);
        let (recovered, _) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .unwrap_or_else(|e| panic!("event {crash_event}: recovery failed: {e}"));
        let n = recovered.applied_txns();
        assert!(
            acked_floor <= n,
            "event {crash_event}: durable-acked txn {acked_floor} lost (recovered {n})"
        );
        assert_eq!(
            recovered.live_tuples() as u64,
            SEED_ROWS as u64 + n,
            "event {crash_event}: recovered state is not an n-txn prefix"
        );
        if crashed {
            assert!(
                typed_failures > 0 || n >= THREADS * PER_THREAD,
                "event {crash_event}: writer died yet no submitter heard a typed error"
            );
        } else {
            assert_eq!(n, THREADS * PER_THREAD, "event {crash_event}: lossless run lost work");
            assert_eq!(typed_failures, 0);
        }
    }
}

/// Group commit amortizes fsyncs: a burst of transactions through the queue
/// must spend far fewer WAL syncs than transactions, while a
/// one-commit-per-fsync baseline spends one each.
#[test]
fn group_commit_amortizes_fsyncs_under_load() {
    let db = DurableDb::create(
        seed_relation(),
        &PCubeConfig::default(),
        // A realistic 100µs device fsync so batching has something to win.
        DurabilityOptions { fsync_delay_us: 100, ..DurabilityOptions::default() },
    );
    let queue = CommitQueue::start(
        db,
        CommitQueuePolicy {
            max_batch: 16,
            max_queue: 64,
            max_wait: std::time::Duration::from_micros(300),
        },
    );
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let queue = &queue;
            scope.spawn(move || {
                for i in 0..8u64 {
                    queue
                        .submit(txn((t * 8 + i) as usize))
                        .expect("submit");
                }
            });
        }
    });
    let stats = queue.stats();
    let db = queue.shutdown();
    assert_eq!(stats.commits, 64);
    assert!(
        stats.fsync_amortization() > 1.5,
        "8 submitters against a 100µs fsync never batched: {stats:?}"
    );
    assert_eq!(db.durable_txns(), 64);
}
