//! §VII convex hull extension: the signature-pruned hull must equal the
//! hull of the brute-force qualifying set.

use pcube::core::{convex_hull_query, PCubeConfig, PCubeDb};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cross(o: [f64; 2], a: [f64; 2], b: [f64; 2]) -> f64 {
    (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
}

/// O(n³) hull membership: a point is a hull vertex iff it is not strictly
/// inside the hull of the others — checked via "is there a half-plane
/// through p containing all points", the slow but obviously-correct way:
/// p is a vertex iff it is NOT a strict convex combination; test by
/// checking p is outside the hull of all other points using orientation
/// against every edge of that hull (computed by a reference chain).
fn reference_hull(points: &[(u64, [f64; 2])]) -> Vec<u64> {
    // Reference monotone chain, independent implementation.
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| {
        a.1[0]
            .partial_cmp(&b.1[0])
            .unwrap()
            .then(a.1[1].partial_cmp(&b.1[1]).unwrap())
            .then(a.0.cmp(&b.0))
    });
    pts.dedup_by(|a, b| a.1 == b.1);
    if pts.len() < 3 {
        return pts.iter().map(|p| p.0).collect();
    }
    let half = |iter: Vec<(u64, [f64; 2])>| {
        let mut h: Vec<(u64, [f64; 2])> = Vec::new();
        for p in iter {
            while h.len() >= 2 && cross(h[h.len() - 2].1, h[h.len() - 1].1, p.1) <= 1e-12 {
                h.pop();
            }
            h.push(p);
        }
        h
    };
    let mut lower = half(pts.clone());
    let mut upper = half(pts.into_iter().rev().collect());
    lower.pop();
    upper.pop();
    lower.extend(upper);
    let mut ids: Vec<u64> = lower.into_iter().map(|p| p.0).collect();
    ids.sort_unstable();
    ids
}

fn check(db: &PCubeDb, sel: &Selection) {
    let out = convex_hull_query(db, sel, (0, 1));
    let mut got: Vec<u64> = out.hull.iter().map(|p| p.0).collect();
    got.sort_unstable();
    let qualifying: Vec<(u64, [f64; 2])> = (0..db.relation().len() as u64)
        .filter(|&t| db.relation().matches(t, sel))
        .map(|t| {
            let c = db.relation().pref_coords(t);
            (t, [c[0], c[1]])
        })
        .collect();
    let mut expect = reference_hull(&qualifying);
    expect.sort_unstable();
    // Tie handling: when several tuples share a hull-vertex coordinate, any
    // representative is valid. Compare by coordinates instead of tids.
    let coord = |t: u64| {
        let c = db.relation().pref_coords(t);
        (format!("{:.12}", c[0]), format!("{:.12}", c[1]))
    };
    let mut got_pts: Vec<_> = got.iter().map(|&t| coord(t)).collect();
    let mut exp_pts: Vec<_> = expect.iter().map(|&t| coord(t)).collect();
    got_pts.sort();
    exp_pts.sort();
    assert_eq!(got_pts, exp_pts, "sel {sel:?}");
}

#[test]
fn hull_matches_reference_on_uniform_data() {
    let spec = SyntheticSpec {
        n_tuples: 1200,
        n_bool: 3,
        n_pref: 2,
        cardinality: 5,
        distribution: Distribution::Uniform,
        seed: 71,
    };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    check(&db, &Vec::new());
    for n_preds in 1..=2 {
        for _ in 0..4 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            check(&db, &sel);
        }
    }
}

#[test]
fn hull_matches_reference_on_clustered_data() {
    let spec = SyntheticSpec {
        n_tuples: 800,
        n_bool: 2,
        n_pref: 3,
        cardinality: 4,
        distribution: Distribution::Correlated,
        seed: 72,
    };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..4 {
        let sel = sample_selection(db.relation(), 1, &mut rng);
        check(&db, &sel);
    }
}

#[test]
fn hull_prunes_interior_subtrees() {
    // With no selection, the geometric prune alone should avoid reading a
    // meaningful share of the tree on uniform data.
    let spec = SyntheticSpec { n_tuples: 20_000, n_pref: 2, ..Default::default() };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    db.stats().reset();
    let out = convex_hull_query(&db, &Vec::new(), (0, 1));
    assert!(out.hull.len() >= 3);
    let total_nodes = db.rtree().count_nodes() as u64;
    assert!(
        out.stats.nodes_expanded < total_nodes,
        "hull search should skip interior nodes: {} vs {total_nodes}",
        out.stats.nodes_expanded
    );
}

#[test]
fn hull_of_empty_selection_is_empty() {
    let spec = SyntheticSpec { n_tuples: 200, n_pref: 2, ..Default::default() };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let sel = vec![pcube::cube::Predicate { dim: 0, value: 9_999 }];
    let out = convex_hull_query(&db, &sel, (0, 1));
    assert!(out.hull.is_empty());
}
