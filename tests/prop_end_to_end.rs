//! Randomized end-to-end properties: arbitrary small databases, arbitrary
//! selections, arbitrary maintenance interleavings — signature query answers
//! must always equal brute force, and materialized signatures must always
//! equal a from-scratch rebuild.

use pcube::baselines::reference::{bnl_skyline, naive_topk};
use pcube::core::{skyline_query, topk_query, LinearFn, PCubeConfig, PCubeDb, Signature};
use pcube::cube::{group_by, Predicate, Relation, Schema, Selection};
use pcube::rtree::Path;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Row {
    codes: Vec<u32>,
    coords: Vec<f64>,
}

fn arb_rows(n_bool: usize, n_pref: usize, max_rows: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (
            prop::collection::vec(0u32..4, n_bool..=n_bool),
            prop::collection::vec(0.0f64..1.0, n_pref..=n_pref),
        )
            .prop_map(|(codes, coords)| Row { codes, coords }),
        1..max_rows,
    )
}

fn db_from(rows: &[Row], n_bool: usize, n_pref: usize) -> PCubeDb {
    let bool_names: Vec<String> = (0..n_bool).map(|i| format!("A{i}")).collect();
    let pref_names: Vec<String> = (0..n_pref).map(|i| format!("N{i}")).collect();
    let schema = Schema::new(
        &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &pref_names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut relation = Relation::new(schema);
    for r in rows {
        relation.push_coded(&r.codes, &r.coords);
    }
    PCubeDb::build(relation, &PCubeConfig::default())
}

fn assert_signatures_match_rebuild(db: &PCubeDb) {
    let mut paths: HashMap<u64, Path> = HashMap::new();
    db.rtree().for_each_tuple(|tid, path, _| {
        paths.insert(tid, path.clone());
    });
    for &cuboid in db.pcube().cuboids() {
        for (cell, tids) in group_by(db.relation(), cuboid) {
            let expect =
                Signature::from_paths(db.rtree().m_max(), tids.iter().map(|t| &paths[t]));
            let code = db.pcube().registry().code(&cell).expect("cell registered");
            assert_eq!(db.pcube().store().load_full(code), expect, "cell {cell:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn skyline_equals_oracle_on_arbitrary_data(
        rows in arb_rows(2, 2, 120),
        d0 in 0u32..4,
        d1 in 0u32..4,
        n_preds in 0usize..=2,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = [Predicate { dim: 0, value: d0 }, Predicate { dim: 1, value: d1 }]
            [..n_preds]
            .to_vec();
        let qualifying: Vec<(u64, Vec<f64>)> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| sel.iter().all(|p| r.codes[p.dim] == p.value))
            .map(|(i, r)| (i as u64, r.coords.clone()))
            .collect();
        let mut expect: Vec<u64> = bnl_skyline(&qualifying, &[0, 1]).iter().map(|p| p.0).collect();
        expect.sort_unstable();
        for eager in [false, true] {
            let out = skyline_query(&db, &sel, &[0, 1], eager);
            let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expect, "eager={}", eager);
        }
    }

    #[test]
    fn topk_equals_oracle_on_arbitrary_data(
        rows in arb_rows(2, 2, 120),
        d0 in 0u32..4,
        k in 1usize..15,
        w0 in 0.01f64..1.0,
        w1 in 0.01f64..1.0,
    ) {
        let db = db_from(&rows, 2, 2);
        let sel: Selection = vec![Predicate { dim: 0, value: d0 }];
        let f = LinearFn::new(vec![w0, w1]);
        let qualifying: Vec<(u64, Vec<f64>)> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.codes[0] == d0)
            .map(|(i, r)| (i as u64, r.coords.clone()))
            .collect();
        let expect = naive_topk(&qualifying, k, &f);
        let out = topk_query(&db, &sel, k, &f, false);
        prop_assert_eq!(out.topk.len(), expect.len());
        for (g, e) in out.topk.iter().zip(&expect) {
            prop_assert!((g.2 - e.2).abs() < 1e-9, "score {} vs {}", g.2, e.2);
        }
    }

    #[test]
    fn maintenance_keeps_signatures_exact(
        initial in arb_rows(2, 2, 60),
        inserts in arb_rows(2, 2, 40),
    ) {
        let mut db = db_from(&initial, 2, 2);
        for r in &inserts {
            db.insert_coded(&r.codes, &r.coords);
        }
        db.rtree().check_invariants();
        assert_signatures_match_rebuild(&db);
        // And queries remain exact after maintenance.
        let all_rows: Vec<Row> = initial.iter().chain(inserts.iter()).cloned().collect();
        let sel: Selection = vec![Predicate { dim: 1, value: 1 }];
        let qualifying: Vec<(u64, Vec<f64>)> = all_rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.codes[1] == 1)
            .map(|(i, r)| (i as u64, r.coords.clone()))
            .collect();
        let mut expect: Vec<u64> = bnl_skyline(&qualifying, &[0, 1]).iter().map(|p| p.0).collect();
        expect.sort_unstable();
        let out = skyline_query(&db, &sel, &[0, 1], false);
        let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
