//! Cross-crate correctness: the signature-guided query processor must agree
//! with brute-force oracles and with both baselines on every workload shape
//! the paper's experiments use.

use pcube::baselines::reference::{bnl_skyline, naive_topk};
use pcube::baselines::{bbs_skyline, index_merge_topk, ranking_topk, BooleanIndexSet};
use pcube::core::{skyline_query, topk_query, LinearFn, PCubeConfig, PCubeDb, WeightedDistanceFn};
use pcube::cube::{MaterializationPlan, Predicate, Selection};
use pcube::data::{covertype_surrogate, sample_selection, synthetic, Distribution, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn qualifying(db: &PCubeDb, sel: &Selection) -> Vec<(u64, Vec<f64>)> {
    (0..db.relation().len() as u64)
        .filter(|&t| db.relation().matches(t, sel))
        .map(|t| (t, db.relation().pref_coords(t)))
        .collect()
}

fn sorted_tids(pairs: &[(u64, Vec<f64>)]) -> Vec<u64> {
    let mut v: Vec<u64> = pairs.iter().map(|p| p.0).collect();
    v.sort_unstable();
    v
}

fn check_skylines(db: &PCubeDb, sel: &Selection, pref_dims: &[usize]) {
    let oracle = sorted_tids(&bnl_skyline(&qualifying(db, sel), pref_dims));
    for eager in [false, true] {
        let sig = skyline_query(db, sel, pref_dims, eager);
        assert_eq!(
            sorted_tids(&sig.skyline),
            oracle,
            "signature skyline (eager={eager}) vs oracle, sel {sel:?}"
        );
    }
    let (bbs, _) = bbs_skyline(db, sel, pref_dims);
    assert_eq!(sorted_tids(&bbs), oracle, "BBS vs oracle, sel {sel:?}");
}

fn check_topk(db: &PCubeDb, indexes: &BooleanIndexSet, sel: &Selection, k: usize) {
    let dims = db.relation().schema().n_pref();
    let fns: Vec<Box<dyn pcube::core::RankingFunction>> = vec![
        Box::new(LinearFn::new((0..dims).map(|i| 0.3 + 0.2 * i as f64).collect())),
        Box::new(WeightedDistanceFn::new(vec![0.4; dims], vec![1.0; dims])),
    ];
    for f in &fns {
        let oracle = naive_topk(&qualifying(db, sel), k, f.as_ref());
        let oracle_scores: Vec<f64> = oracle.iter().map(|r| r.2).collect();
        let assert_scores = |name: &str, got: &[(u64, Vec<f64>, f64)]| {
            assert_eq!(got.len(), oracle.len(), "{name}: cardinality, sel {sel:?}");
            for (g, e) in got.iter().map(|r| r.2).zip(&oracle_scores) {
                assert!((g - e).abs() < 1e-9, "{name}: score {g} vs {e}, sel {sel:?}");
            }
        };
        let sig = topk_query(db, sel, k, f.as_ref(), false);
        assert_scores("signature", &sig.topk);
        let (rank, _) = ranking_topk(db, sel, k, f.as_ref());
        assert_scores("ranking", &rank);
        let (merge, _) = index_merge_topk(db, indexes, sel, k, f.as_ref());
        assert_scores("index-merge", &merge);
    }
}

fn exercise(spec: &SyntheticSpec, seeds: u64) {
    let db = PCubeDb::build(synthetic(spec), &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    let pref_dims: Vec<usize> = (0..spec.n_pref).collect();
    let mut rng = StdRng::seed_from_u64(seeds);
    for n_preds in 0..=spec.n_bool.min(3) {
        for _ in 0..3 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            check_skylines(&db, &sel, &pref_dims);
            check_topk(&db, &indexes, &sel, 7);
        }
    }
    // Subset preference dimensions (the paper allows N1..Nj ⊆ all).
    if spec.n_pref >= 2 {
        let sel = sample_selection(db.relation(), 1, &mut rng);
        check_skylines(&db, &sel, &[0]);
        check_skylines(&db, &sel, &[spec.n_pref - 1, 0]);
    }
}

#[test]
fn uniform_2d() {
    exercise(
        &SyntheticSpec {
            n_tuples: 1200,
            n_bool: 3,
            n_pref: 2,
            cardinality: 6,
            distribution: Distribution::Uniform,
            seed: 11,
        },
        1,
    );
}

#[test]
fn correlated_3d() {
    exercise(
        &SyntheticSpec {
            n_tuples: 900,
            n_bool: 2,
            n_pref: 3,
            cardinality: 4,
            distribution: Distribution::Correlated,
            seed: 12,
        },
        2,
    );
}

#[test]
fn anticorrelated_3d() {
    exercise(
        &SyntheticSpec {
            n_tuples: 700,
            n_bool: 3,
            n_pref: 3,
            cardinality: 5,
            distribution: Distribution::AntiCorrelated,
            seed: 13,
        },
        3,
    );
}

#[test]
fn four_pref_dimensions() {
    exercise(
        &SyntheticSpec {
            n_tuples: 600,
            n_bool: 2,
            n_pref: 4,
            cardinality: 3,
            distribution: Distribution::Uniform,
            seed: 14,
        },
        4,
    );
}

#[test]
fn high_cardinality_selective_predicates() {
    exercise(
        &SyntheticSpec {
            n_tuples: 1500,
            n_bool: 3,
            n_pref: 2,
            cardinality: 150,
            distribution: Distribution::Uniform,
            seed: 15,
        },
        5,
    );
}

#[test]
fn covertype_surrogate_slice() {
    let db = PCubeDb::build(covertype_surrogate(2500, 21), &PCubeConfig::default());
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    let mut rng = StdRng::seed_from_u64(6);
    for n_preds in 1..=4 {
        let sel = sample_selection(db.relation(), n_preds, &mut rng);
        check_skylines(&db, &sel, &[0, 1, 2]);
        check_topk(&db, &indexes, &sel, 10);
    }
}

#[test]
fn empty_selection_queries_whole_table() {
    let db = PCubeDb::build(
        synthetic(&SyntheticSpec { n_tuples: 400, n_pref: 2, ..Default::default() }),
        &PCubeConfig::default(),
    );
    let indexes = BooleanIndexSet::build(db.relation(), 4096, db.stats().clone());
    check_skylines(&db, &Vec::new(), &[0, 1]);
    check_topk(&db, &indexes, &Vec::new(), 5);
}

#[test]
fn impossible_selection_returns_nothing() {
    let db = PCubeDb::build(
        synthetic(&SyntheticSpec { n_tuples: 300, cardinality: 5, ..Default::default() }),
        &PCubeConfig::default(),
    );
    let sel = vec![Predicate { dim: 0, value: 999 }];
    let out = skyline_query(&db, &sel, &[0, 1, 2], false);
    assert!(out.skyline.is_empty());
    let f = LinearFn::new(vec![1.0, 1.0, 1.0]);
    let top = topk_query(&db, &sel, 5, &f, false);
    assert!(top.topk.is_empty());
}

#[test]
fn level2_materialization_gives_same_answers() {
    let spec = SyntheticSpec {
        n_tuples: 800,
        n_bool: 3,
        n_pref: 2,
        cardinality: 4,
        ..Default::default()
    };
    let relation = synthetic(&spec);
    let atomic = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let level2 = PCubeDb::build(
        relation,
        &PCubeConfig { plan: MaterializationPlan::UpToLevel(2), ..PCubeConfig::default() },
    );
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..5 {
        let sel = sample_selection(atomic.relation(), 2, &mut rng);
        let a = skyline_query(&atomic, &sel, &[0, 1], false);
        let b = skyline_query(&level2, &sel, &[0, 1], false);
        assert_eq!(sorted_tids(&a.skyline), sorted_tids(&b.skyline), "sel {sel:?}");
    }
}

#[test]
fn signature_prunes_more_rtree_blocks_than_domination() {
    // The Fig 9 claim, qualitatively: on a selective query, Signature reads
    // fewer R-tree blocks than Domination and does zero tuple probes.
    let db = PCubeDb::build(
        synthetic(&SyntheticSpec {
            n_tuples: 5000,
            n_bool: 3,
            n_pref: 2,
            cardinality: 50,
            ..Default::default()
        }),
        &PCubeConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(8);
    let sel = sample_selection(db.relation(), 1, &mut rng);
    let sig = skyline_query(&db, &sel, &[0, 1], false);
    let (_, dom) = bbs_skyline(&db, &sel, &[0, 1]);
    use pcube::storage::IoCategory as C;
    assert!(
        sig.stats.io.reads(C::RtreeBlock) <= dom.io.reads(C::RtreeBlock),
        "signature {} vs domination {} blocks",
        sig.stats.io.reads(C::RtreeBlock),
        dom.io.reads(C::RtreeBlock)
    );
    assert_eq!(sig.stats.io.reads(C::TupleRandomAccess), 0);
    assert!(dom.io.reads(C::TupleRandomAccess) > 0);
    assert!(sig.stats.peak_heap <= dom.peak_heap, "Fig 10: smaller candidate heap");
}
