//! High-contention read-path tests: many client threads hammering a *small*
//! hot set so every thread fights over the same pages, shards, and shared
//! pruning state at once. Two contracts:
//!
//! 1. **Differential** — answers computed by the parallel engines (2, 4 and
//!    8 workers) under 8-thread client contention are bit-identical to the
//!    single-threaded serial answers.
//! 2. **Bounded locking** — the [`ShardedBufferPool`] read path takes a
//!    provably bounded number of shard-lock acquisitions: 1 per hit, 2 per
//!    single-flight miss, plus at most one re-acquisition per waiter wakeup
//!    (and a fetch completion can wake at most `threads − 1` waiters). A
//!    regression that re-introduces lock traffic on the read path — e.g.
//!    holding the shard lock across the pager read, or looping waiters
//!    without making progress — blows through the bound.

use pcube::core::{LinearFn, PCubeConfig, PCubeDb, ParallelOptions};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use pcube::storage::{IoCategory, IoStats, Pager, ShardedBufferPool, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLIENT_THREADS: usize = 8;

/// One query of the hot-cell workload.
#[derive(Clone)]
enum Query {
    TopK { sel: Selection, k: usize, weights: Vec<f64> },
    Skyline { sel: Selection },
    Dynamic { sel: Selection, q: Vec<f64> },
    Hull { sel: Selection },
}

/// A canonicalized answer, comparable with `==` across runs.
#[derive(Clone, PartialEq, Debug)]
enum Answer {
    TopK(Vec<(u64, Vec<f64>, f64)>),
    Skyline(Vec<(u64, Vec<f64>)>),
    Hull(Vec<(u64, [f64; 2])>),
}

fn run_serial(db: &PCubeDb, q: &Query) -> Answer {
    match q {
        Query::TopK { sel, k, weights } => {
            Answer::TopK(db.topk(sel, *k, &LinearFn::new(weights.clone())).topk)
        }
        Query::Skyline { sel } => Answer::Skyline(db.skyline(sel, &[0, 1]).skyline),
        Query::Dynamic { sel, q } => Answer::Skyline(db.dynamic_skyline(sel, q, &[0, 1]).skyline),
        Query::Hull { sel } => Answer::Hull(db.hull(sel, (0, 1)).hull),
    }
}

fn run_parallel(db: &PCubeDb, q: &Query, workers: usize) -> Answer {
    let opts = ParallelOptions::with_workers(workers);
    match q {
        Query::TopK { sel, k, weights } => {
            Answer::TopK(db.par_topk(sel, *k, &LinearFn::new(weights.clone()), opts).topk)
        }
        Query::Skyline { sel } => Answer::Skyline(db.par_skyline(sel, &[0, 1], opts).skyline),
        Query::Dynamic { sel, q } => {
            Answer::Skyline(db.par_dynamic_skyline(sel, q, &[0, 1], opts).skyline)
        }
        Query::Hull { sel } => Answer::Hull(db.par_hull(sel, (0, 1), opts).hull),
    }
}

fn build_db() -> PCubeDb {
    let spec = SyntheticSpec {
        n_tuples: 4000,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        distribution: Distribution::Uniform,
        seed: 42,
    };
    PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
}

/// A *small* hot set (6 distinct queries) that every thread loops over many
/// times — unlike a broad workload, contention concentrates on the same
/// cells, pages and shared bounds.
fn build_hot_set(db: &PCubeDb) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(13);
    (0..6)
        .map(|i| {
            let sel = sample_selection(db.relation(), i % 3, &mut rng);
            match i % 4 {
                0 => Query::TopK { sel, k: 5 + i, weights: vec![0.3, 0.7] },
                1 => Query::Skyline { sel },
                2 => Query::Dynamic { sel, q: vec![0.4, 0.6] },
                _ => Query::Hull { sel },
            }
        })
        .collect()
}

/// 8 client threads loop a 6-query hot set; each iteration runs the parallel
/// engine with 2, 4 or 8 workers (rotating). Every answer must be
/// bit-identical to the serial baseline, for every worker count, under
/// maximum cross-thread interference.
#[test]
fn hot_cell_contention_parallel_answers_bit_identical_at_2_4_8_workers() {
    let db = build_db();
    let hot = build_hot_set(&db);
    let expected: Vec<Answer> = hot.iter().map(|q| run_serial(&db, q)).collect();
    const ROUNDS: usize = 8;

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let (db, hot, expected) = (&db, &hot, &expected);
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for (i, q) in hot.iter().enumerate() {
                        // 2, 4 and 8 workers, staggered per thread so every
                        // worker count runs concurrently with every other.
                        let workers = 1 << (1 + (t + round + i) % 3);
                        assert_eq!(
                            run_parallel(db, q, workers),
                            expected[i],
                            "thread {t}, round {round}, hot query {i}, {workers} workers"
                        );
                    }
                }
            });
        }
    });
}

/// Serial engines under the same hot-cell contention: still bit-identical
/// and still deterministic per query.
#[test]
fn hot_cell_contention_serial_answers_bit_identical() {
    let db = build_db();
    let hot = build_hot_set(&db);
    let expected: Vec<Answer> = hot.iter().map(|q| run_serial(&db, q)).collect();

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let (db, hot, expected) = (&db, &hot, &expected);
            scope.spawn(move || {
                for round in 0..8 {
                    for (i, q) in hot.iter().enumerate() {
                        assert_eq!(
                            run_serial(db, q),
                            expected[i],
                            "thread {t}, round {round}, hot query {i}"
                        );
                    }
                }
            });
        }
    });
}

/// The shard-lock cost contract under forced contention. A deliberately tiny
/// pool (capacity 16 over 4 shards, 256 distinct pages) guarantees constant
/// evictions, so threads keep colliding on misses for the same hot pages.
///
/// Accounting (see `ShardedBufferPool::try_read`):
/// * every request acquires the shard lock once on entry,
/// * a single-flight miss re-acquires it once to install the fetched page,
/// * a waiter re-acquires once per wakeup, and each of the `misses` fetch
///   completions wakes at most `threads − 1` waiters.
///
/// Hence: `requests ≤ acquisitions ≤ requests + misses × threads`. A
/// lock-per-page-read regression multiplies acquisitions by the page count
/// per request and fails the upper bound.
#[test]
fn sharded_pool_lock_acquisitions_bounded_under_forced_misses() {
    const PAGES: u64 = 256;
    const PER_THREAD: usize = 2000;

    let stats = IoStats::new_shared();
    let mut pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats);
    let pids: Vec<_> = (0..PAGES)
        .map(|i| {
            let pid = pager.allocate();
            let mut page = vec![0u8; PAGE_SIZE];
            page[..8].copy_from_slice(&i.to_le_bytes());
            pager.write(pid, &page);
            pid
        })
        .collect();

    // 16 slots over 4 shards for 256 pages: the pool thrashes by design.
    let pool = ShardedBufferPool::new(16, 4);

    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let (pool, pager, pids) = (&pool, &pager, &pids);
            scope.spawn(move || {
                let mut state = 0x9e3779b97f4a7c15u64 ^ (t as u64) << 32;
                for _ in 0..PER_THREAD {
                    // Cheap xorshift: ~90% of reads hit a 16-page hot set so
                    // threads collide on the same shards; the rest sweep the
                    // full range to force evictions.
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let i = if state % 10 < 9 {
                        (state >> 8) % 16
                    } else {
                        (state >> 8) % PAGES
                    } as usize;
                    let page = pool.try_read(pager, pids[i]).expect("unfaulted read");
                    assert_eq!(
                        u64::from_le_bytes(page[..8].try_into().expect("8-byte prefix")),
                        i as u64,
                        "torn or misrouted page under contention"
                    );
                }
            });
        }
    });

    let requests = (CLIENT_THREADS * PER_THREAD) as u64;
    let hits = pool.hits();
    let misses = pool.misses();
    let acquisitions = pool.lock_acquisitions();
    // Every request resolves as exactly one hit or one miss.
    assert_eq!(hits + misses, requests, "request accounting drifted");
    // The thrashing config must actually exercise the miss path heavily.
    assert!(misses > requests / 20, "only {misses} misses in {requests} requests");
    // The lock-cost contract: never fewer than one acquisition per request,
    // never more than the single-flight + waiter-wakeup ceiling.
    assert!(acquisitions >= requests, "{acquisitions} acquisitions < {requests} requests");
    let ceiling = requests + misses * CLIENT_THREADS as u64;
    assert!(
        acquisitions <= ceiling,
        "{acquisitions} shard-lock acquisitions exceed bound {ceiling} \
         ({requests} requests, {misses} misses, {CLIENT_THREADS} threads)"
    );
    // Contention is spread: every shard saw traffic.
    for s in 0..pool.shard_count() {
        assert!(
            pool.shard_lock_acquisitions(s) > 0,
            "shard {s} never touched — hot set maps degenerately"
        );
    }
}

/// Under a wall-clock per-page read latency (the serve_bench simulation) the
/// single-flight pool still returns correct bytes and charges each page
/// fetch exactly once per miss — sleeping readers must not double-fetch.
#[test]
fn single_flight_holds_under_wall_read_latency() {
    let stats = IoStats::new_shared();
    let mut pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats.clone());
    let pids: Vec<_> = (0..8u64)
        .map(|i| {
            let pid = pager.allocate();
            let mut page = vec![0u8; PAGE_SIZE];
            page[..8].copy_from_slice(&i.to_le_bytes());
            pager.write(pid, &page);
            pid
        })
        .collect();
    pager.set_read_delay(Some(std::time::Duration::from_micros(200)));
    let before = stats.snapshot();

    let pool = ShardedBufferPool::new(64, 4);
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            let (pool, pager, pids) = (&pool, &pager, &pids);
            scope.spawn(move || {
                for (i, pid) in pids.iter().enumerate() {
                    let page = pool.try_read(pager, *pid).expect("unfaulted read");
                    assert_eq!(
                        u64::from_le_bytes(page[..8].try_into().expect("8-byte prefix")),
                        i as u64
                    );
                }
            });
        }
    });

    // All 8 threads demanded all 8 pages, but single-flight means each page
    // was fetched from the pager exactly once — even though the fetch now
    // takes 200 µs and every other thread arrives while it is in flight.
    let delta = stats.snapshot().since(&before);
    assert_eq!(delta.reads(IoCategory::RtreeBlock), pids.len() as u64);
    assert_eq!(pool.misses(), pids.len() as u64);
    assert_eq!(pool.hits(), (CLIENT_THREADS * pids.len()) as u64 - pids.len() as u64);
}
