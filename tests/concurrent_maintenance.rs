//! Snapshot-isolated maintenance under concurrency: one writer thread
//! interleaves insert/delete transactions (and checkpoints) while eight
//! reader threads hammer `par_*` queries through [`EpochReader`] handles.
//!
//! The isolation contract checked here:
//!
//! * every reader answer is **bit-identical** to a brute-force oracle
//!   computed over the reader's own pinned snapshot — i.e. the answer always
//!   corresponds to a pre- or post-transaction state, never a torn one;
//! * re-running the same query on the same pinned snapshot returns the
//!   identical answer, no matter how many commits landed in between;
//! * epochs observed by each reader never go backwards;
//! * the writer never blocks on readers — it completes its whole workload
//!   while readers are continuously querying.

use pcube::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SEED_ROWS: usize = 256;
const N_TXNS: u64 = 60;
const N_READERS: usize = 8;

fn seed_relation() -> Relation {
    let mut r = Relation::new(Schema::new(&["A", "B"], &["x", "y"]));
    let vals_a = ["a1", "a2", "a3"];
    let vals_b = ["b1", "b2"];
    for i in 0..SEED_ROWS {
        let x = (i as f64 * 0.3771).fract();
        let y = (i as f64 * 0.6113 + 0.131).fract();
        r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
    }
    r
}

/// Canonical form of an answer: sorted `(tid, coordinate bit patterns)` —
/// bit-identical comparison, no float tolerance anywhere.
type Canon = Vec<(u64, Vec<u64>)>;

fn canon(rows: impl IntoIterator<Item = (u64, Vec<f64>)>) -> Canon {
    let mut out: Canon = rows
        .into_iter()
        .map(|(tid, coords)| (tid, coords.iter().map(|c| c.to_bits()).collect()))
        .collect();
    out.sort();
    out
}

/// Brute-force skyline over exactly the tuples live in `db`'s R-tree that
/// satisfy `selection` — the oracle for one pinned snapshot.
fn oracle_skyline(db: &PCubeDb, selection: &Selection) -> Canon {
    let mut rows: Vec<(u64, Vec<f64>)> = Vec::new();
    db.rtree().for_each_tuple(|tid, _, coords| {
        let matches = selection
            .iter()
            .all(|p| db.relation().bool_code(tid, p.dim) == p.value);
        if matches {
            rows.push((tid, coords.to_vec()));
        }
    });
    let dominated = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let skyline: Vec<(u64, Vec<f64>)> = rows
        .iter()
        .filter(|(_, c)| !rows.iter().any(|(_, other)| dominated(other, c)))
        .cloned()
        .collect();
    canon(skyline)
}

#[test]
fn eight_readers_never_observe_a_torn_snapshot() {
    let mut db = DurableDb::create(
        seed_relation(),
        &PCubeConfig::default(),
        DurabilityOptions::default(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let selection: Selection = vec![Predicate { dim: 0, value: 1 }];

    let readers: Vec<_> = (0..N_READERS)
        .map(|r| {
            let reader = db.reader();
            let stop = stop.clone();
            let selection = selection.clone();
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut last_epoch = 0u64;
                let opts = ParallelOptions::with_workers(2);
                while !stop.load(Ordering::Relaxed) {
                    let snap = reader.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "reader {r}: epoch went backwards ({} after {last_epoch})",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();

                    // Alternate the selection to vary the probe shape.
                    let sel: Selection =
                        if iterations.is_multiple_of(2) { selection.clone() } else { Vec::new() };
                    let got = canon(par_skyline_query(snap.db(), &sel, &[0, 1], opts).skyline);

                    // Bit-identical to the pinned snapshot's own oracle:
                    // the answer is a pre- or post-transaction state.
                    assert_eq!(
                        got,
                        oracle_skyline(snap.db(), &sel),
                        "reader {r}: answer diverges from its pinned snapshot"
                    );
                    // Stable on the pinned snapshot regardless of commits
                    // landing concurrently.
                    let again = canon(par_skyline_query(snap.db(), &sel, &[0, 1], opts).skyline);
                    assert_eq!(got, again, "reader {r}: pinned snapshot changed mid-query");

                    iterations += 1;
                }
                iterations
            })
        })
        .collect();

    // The writer: inserts, deletes, periodic checkpoints — full speed, no
    // coordination with the readers.
    let mut live: BTreeSet<u64> = (0..SEED_ROWS as u64).collect();
    let mut next_tid = SEED_ROWS as u64;
    for t in 0..N_TXNS {
        let base = next_tid;
        let mut ops = Vec::new();
        for j in 0..2u64 {
            let i = t * 2 + j;
            ops.push(MaintenanceOp::Insert {
                codes: vec![(i % 3) as u32, (i % 2) as u32],
                coords: vec![
                    (i as f64 * 0.271 + 0.05).fract(),
                    (i as f64 * 0.413 + 0.11).fract(),
                ],
            });
            live.insert(next_tid);
            next_tid += 1;
        }
        if !t.is_multiple_of(2) {
            let candidates: Vec<u64> = live.iter().copied().filter(|&x| x < base).collect();
            let victim = candidates[(t as usize * 17) % candidates.len()];
            ops.push(MaintenanceOp::Delete { tid: victim });
            live.remove(&victim);
        }
        let receipt = db.apply(&ops).expect("writer apply");
        assert_eq!(receipt.txn, t + 1);
        if (t + 1).is_multiple_of(20) {
            db.checkpoint().expect("writer checkpoint");
        }
    }
    assert_eq!(db.applied_txns(), N_TXNS, "writer was blocked before finishing");

    stop.store(true, Ordering::Relaxed);
    let iterations: Vec<u64> = readers.into_iter().map(|h| h.join().expect("reader panicked")).collect();
    for (r, n) in iterations.iter().enumerate() {
        assert!(*n > 0, "reader {r} never completed an iteration");
    }

    // Readers that pin now see the final state exactly.
    let final_reader = db.reader().snapshot();
    assert_eq!(final_reader.epoch(), db.epoch());
    assert_eq!(
        canon(par_skyline_query(final_reader.db(), &Vec::new(), &[0, 1], ParallelOptions::with_workers(4)).skyline),
        oracle_skyline(db.db(), &Vec::new()),
    );
}
