//! §VII extension: queries driven by lossy Bloom-filter signatures must
//! return exactly the same answers as the exact signatures (soundness — no
//! false negatives), just with possibly more R-tree reads.

use pcube::core::{skyline_query, skyline_query_probed, topk_query, topk_query_probed, LinearFn};
use pcube::core::{PCubeConfig, PCubeDb};
use pcube::data::{sample_selection, synthetic, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn db() -> PCubeDb {
    let spec = SyntheticSpec {
        n_tuples: 3000,
        n_bool: 3,
        n_pref: 2,
        cardinality: 20,
        ..Default::default()
    };
    PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
}

#[test]
fn bloom_skyline_matches_exact_signature() {
    let db = db();
    let mut rng = StdRng::seed_from_u64(1);
    for n_preds in 1..=3 {
        for _ in 0..4 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            let exact = skyline_query(&db, &sel, &[0, 1], false);
            for fp in [0.001, 0.05, 0.3] {
                let probe = db.pcube().probe_bloom(&sel, fp);
                let bloom = skyline_query_probed(&db, &sel, &[0, 1], probe);
                let mut a: Vec<u64> = exact.skyline.iter().map(|p| p.0).collect();
                let mut b: Vec<u64> = bloom.skyline.iter().map(|p| p.0).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "sel {sel:?} fp {fp}");
            }
        }
    }
}

#[test]
fn bloom_topk_matches_exact_signature() {
    let db = db();
    let mut rng = StdRng::seed_from_u64(2);
    let f = LinearFn::new(vec![0.4, 0.6]);
    for _ in 0..6 {
        let sel = sample_selection(db.relation(), 2, &mut rng);
        let exact = topk_query(&db, &sel, 8, &f, false);
        let probe = db.pcube().probe_bloom(&sel, 0.02);
        let bloom = topk_query_probed(&db, &sel, 8, &f, probe);
        assert_eq!(exact.topk.len(), bloom.topk.len());
        for (e, b) in exact.topk.iter().zip(&bloom.topk) {
            assert!((e.2 - b.2).abs() < 1e-12, "scores {} vs {}", e.2, b.2);
        }
    }
}

#[test]
fn looser_filters_read_no_fewer_blocks() {
    // A sloppier fp target can only add false positives, i.e. extra reads.
    let db = db();
    let mut rng = StdRng::seed_from_u64(3);
    let sel = sample_selection(db.relation(), 1, &mut rng);
    let mut reads = Vec::new();
    for fp in [0.0001, 0.2, 0.49] {
        db.stats().reset();
        let probe = db.pcube().probe_bloom(&sel, fp);
        let out = skyline_query_probed(&db, &sel, &[0, 1], probe);
        reads.push((fp, out.stats.io.reads(pcube::storage::IoCategory::RtreeBlock)));
    }
    // Not strictly monotone per-query (hash luck), but the tight filter must
    // not read more than the sloppy one by any large factor.
    assert!(
        reads[0].1 <= reads[2].1 + 5,
        "tight filter should prune at least as well: {reads:?}"
    );
}

#[test]
fn unknown_value_bloom_probe_is_empty() {
    let db = db();
    let sel = vec![pcube::cube::Predicate { dim: 0, value: 9999 }];
    let probe = db.pcube().probe_bloom(&sel, 0.01);
    let out = skyline_query_probed(&db, &sel, &[0, 1], probe);
    assert!(out.skyline.is_empty());
}
