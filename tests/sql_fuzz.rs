//! The SQL parser must never panic, whatever the input.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = pcube::sql::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("select".to_string()),
                Just("skyline".to_string()),
                Just("top".to_string()),
                Just("from".to_string()),
                Just("where".to_string()),
                Just("and".to_string()),
                Just("order".to_string()),
                Just("by".to_string()),
                Just("preference".to_string()),
                Just("of".to_string()),
                Just("in".to_string()),
                Just("subspace".to_string()),
                Just("prioritize".to_string()),
                Just("over".to_string()),
                Just(",".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("^".to_string()),
                Just("2".to_string()),
                Just("*".to_string()),
                Just("+".to_string()),
                Just("-".to_string()),
                Just("=".to_string()),
                Just("'v'".to_string()),
                Just("x".to_string()),
                Just("0.5".to_string()),
            ],
            0..30,
        ),
    ) {
        let _ = pcube::sql::parse(&words.join(" "));
    }
}
