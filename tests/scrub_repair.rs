//! The scrub chaos suite: seed bit rot into the live signature store,
//! prove the engine stays **exact** while degraded (§VII base-table
//! verification), then prove `scrub` finds every damaged page, quarantine
//! stops the re-read tax, and `repair` rebuilds the store bit-identical to
//! a never-corrupted oracle — including across a crash injected at every
//! durability boundary of the repair transaction itself.
//!
//! Damage is seeded deterministically; `PCUBE_DAMAGE_SEEDS` widens the
//! sweep (CI runs 16). `PCUBE_SCRUB_REPORT` writes the last scrub's JSON
//! report for the CI artifact.

use pcube::prelude::*;

const SEED_ROWS: usize = 120;
const N_TXNS: usize = 6;

fn seed_relation() -> Relation {
    let mut r = Relation::new(Schema::new(&["A", "B"], &["x", "y"]));
    let vals_a = ["a1", "a2", "a3"];
    let vals_b = ["b1", "b2"];
    for i in 0..SEED_ROWS {
        let x = (i as f64 * 0.3771).fract();
        let y = (i as f64 * 0.6113 + 0.131).fract();
        r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
    }
    r
}

/// The deterministic maintenance script both the subject and the oracle run.
fn script() -> Vec<Vec<MaintenanceOp>> {
    (0..N_TXNS)
        .map(|t| {
            let mut ops: Vec<MaintenanceOp> = (0..2)
                .map(|j| {
                    let i = t * 2 + j;
                    MaintenanceOp::Insert {
                        codes: vec![(i % 3) as u32, (i % 2) as u32],
                        coords: vec![
                            (i as f64 * 0.271 + 0.05).fract(),
                            (i as f64 * 0.413 + 0.11).fract(),
                        ],
                    }
                })
                .collect();
            if t % 2 == 1 {
                ops.push(MaintenanceOp::Delete { tid: (t * 13 % SEED_ROWS) as u64 });
            }
            ops
        })
        .collect()
}

/// A durable database that ran the script, with per-page checksums armed on
/// the signature pager (so silent bit rot is *detectable*).
fn build_subject() -> DurableDb {
    let mut db =
        DurableDb::create(seed_relation(), &PCubeConfig::default(), DurabilityOptions::default());
    for ops in script() {
        db.apply(&ops).expect("script applies cleanly");
    }
    db.signature_store_mut().sig_pager_mut().set_checksums(true);
    db
}

/// The never-corrupted oracle: same seed, same script, no damage.
fn oracle() -> PCubeDb {
    let mut db = PCubeDb::build(seed_relation(), &PCubeConfig::default());
    for ops in script() {
        for op in &ops {
            match op {
                MaintenanceOp::Insert { codes, coords } => {
                    db.insert_coded(codes, coords);
                }
                MaintenanceOp::Delete { tid } => {
                    assert!(db.delete(*tid), "oracle delete of {tid} failed");
                }
            }
        }
    }
    db
}

/// Flips one seed-derived bit in **every** live signature page. Returns the
/// damaged page count.
fn rot_every_signature_page(db: &mut DurableDb, seed: u64) -> usize {
    let pager = db.signature_store_mut().sig_pager_mut();
    let page_size = pager.page_size();
    let pages = pager.live_page_ids();
    for (i, &pid) in pages.iter().enumerate() {
        let offset = ((seed.wrapping_mul(2654435761).wrapping_add(i as u64 * 97)) as usize)
            % page_size;
        let mask = ((seed >> (i % 8)) as u8) | 1;
        pager.corrupt_page(pid, offset, mask).expect("live page accepts corruption");
    }
    pages.len()
}

/// Every acceptance query family, answered exactly — the same differential
/// battery as the crash matrix.
fn answers(db: &PCubeDb) -> Vec<Vec<(u64, Vec<f64>)>> {
    let selections: [Selection; 2] = [Vec::new(), vec![Predicate { dim: 0, value: 1 }]];
    let f = MinCoordSum::new(vec![0, 1]);
    let mut out = Vec::new();
    for sel in &selections {
        out.push(skyline_query(db, sel, &[0, 1], false).skyline);
        out.push(
            topk_query(db, sel, 5, &f, false)
                .topk
                .into_iter()
                .map(|(tid, coords, score)| {
                    let mut c = coords;
                    c.push(score);
                    (tid, c)
                })
                .collect(),
        );
        out.push(dynamic_skyline_query(db, sel, &[0.45, 0.55], &[0, 1]).skyline);
        out.push(
            convex_hull_query(db, sel, (0, 1))
                .hull
                .into_iter()
                .map(|(tid, xy)| (tid, xy.to_vec()))
                .collect(),
        );
    }
    out
}

/// Block reads charged by one warm run of the query battery.
fn battery_reads(db: &PCubeDb) -> u64 {
    answers(db); // warm any caches so the measured run is steady-state
    let before = db.stats().snapshot();
    answers(db);
    db.stats().snapshot().since(&before).total_reads()
}

fn damage_seeds() -> u64 {
    std::env::var("PCUBE_DAMAGE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(4)
}

// ------------------------------------------------------- the healing story --

#[test]
fn bit_rot_in_every_signature_page_is_survived_found_and_healed() {
    let want = answers(&oracle());
    let mut last_report_json = String::new();

    for seed in 1..=damage_seeds() {
        let mut db = build_subject();
        let clean_reads = battery_reads(db.db());
        let damaged = rot_every_signature_page(&mut db, seed);
        assert!(damaged > 0, "no live signature pages to damage");

        // Degraded, not wrong: with every signature page rotten the engine
        // falls back to base-table verification and stays exact.
        let before = db.db().stats().snapshot();
        assert_eq!(answers(db.db()), want, "seed {seed}: degraded answers diverged");
        let while_degraded = db.db().stats().snapshot().since(&before);
        assert!(
            while_degraded.degraded_reads() > 0,
            "seed {seed}: degraded queries must be visible on the ledger"
        );

        // Scrub finds every damaged page (some were already quarantined by
        // the degraded queries above — scrub reports both buckets).
        let report = db.scrub(&QueryBudget::unlimited());
        assert!(report.stopped.is_none(), "seed {seed}: unlimited scrub stopped early");
        assert!(report.checksums_enabled, "seed {seed}: checksums should be armed");
        assert_eq!(
            (report.newly_quarantined + report.already_quarantined) as usize,
            damaged,
            "seed {seed}: scrub missed damage: {report}"
        );

        // Quarantine memoizes: a second scrub issues no physical reads for
        // the damaged pages and the hit counter grows instead.
        let before = db.db().stats().snapshot();
        let again = db.scrub(&QueryBudget::unlimited());
        assert_eq!(again.pages_scanned, 0, "seed {seed}: quarantined pages were re-read");
        assert_eq!(again.already_quarantined as usize, damaged);
        assert!(
            db.db().stats().snapshot().since(&before).quarantine_hits() > 0,
            "seed {seed}: cell walk should hit the quarantine, not the disk"
        );
        last_report_json = again.to_json();

        // Repair: rebuilt from the base table, routed through the WAL,
        // bit-identical to the never-corrupted oracle.
        let outcome = db.repair().expect("repair succeeds");
        assert!(outcome.txn.is_some(), "seed {seed}: repair with damage must commit");
        assert_eq!(
            outcome.pages_healed as usize, damaged,
            "seed {seed}: every quarantined page must heal: {outcome}"
        );
        let sig_pager = db.signature_store_mut().sig_pager_mut();
        assert_eq!(sig_pager.quarantine_len(), 0, "seed {seed}: quarantine must clear");
        let rescrub = db.scrub(&QueryBudget::unlimited());
        assert!(rescrub.is_clean(), "seed {seed}: post-repair scrub found damage: {rescrub}");

        // Healed answers are exact, degraded reads stop incrementing, and
        // the query battery costs what it did before the damage.
        let before = db.db().stats().snapshot();
        assert_eq!(answers(db.db()), want, "seed {seed}: healed answers diverged");
        let after_repair = db.db().stats().snapshot().since(&before);
        assert_eq!(
            after_repair.degraded_reads(),
            0,
            "seed {seed}: healed store still degrading"
        );
        assert_eq!(
            battery_reads(db.db()),
            clean_reads,
            "seed {seed}: blocks-per-query did not return to the clean baseline"
        );
    }

    if let Ok(path) = std::env::var("PCUBE_SCRUB_REPORT") {
        std::fs::write(&path, &last_report_json)
            .unwrap_or_else(|e| panic!("cannot write scrub report to {path}: {e}"));
    }
}

// ------------------------------------------------------ repair crash matrix --

/// A subject with seeded damage already scrubbed into quarantine — the
/// state `repair` starts from at every matrix point.
fn damaged_and_scrubbed(seed: u64) -> DurableDb {
    let mut db = build_subject();
    rot_every_signature_page(&mut db, seed);
    let report = db.scrub(&QueryBudget::unlimited());
    assert!(report.newly_quarantined > 0, "scrub must quarantine the damage");
    db
}

#[test]
fn repair_crash_matrix_every_boundary_recovers_oracle_exact() {
    let want = answers(&oracle());
    let seed = 3;

    // Count the repair transaction's durability events with a counting plan.
    let mut counter = damaged_and_scrubbed(seed);
    counter.set_crash_plan(CrashPlan::count_only());
    counter.repair().expect("counting repair must not crash");
    let events = counter.crash_events_seen();
    assert!(events > 4, "repair too small to exercise a matrix ({events} events)");
    assert_eq!(answers(counter.db()), want, "counting repair diverged from the oracle");

    // Kill at every boundary, plus one past the end (no crash at all).
    for k in 1..=events + 1 {
        let mut db = damaged_and_scrubbed(seed);
        let pre_repair_txns = db.applied_txns();
        db.set_crash_plan(CrashPlan::at_event(k));
        let res = db.repair();
        if let Err(e) = &res {
            assert!(
                matches!(e, DurabilityError::Crashed { .. }),
                "event {k}: unexpected repair failure {e}"
            );
        }

        let (recovered, _report) = DurableDb::open_or_recover_from_state(
            &db.durable_state(),
            DurabilityOptions::default(),
        )
        .unwrap_or_else(|e| panic!("event {k}: recovery after repair crash failed: {e}"));

        // Pre- or post-repair, never torn — and both states answer exactly
        // like the never-corrupted oracle, because the durable image never
        // saw the in-memory rot and a replayed rebuild is deterministic.
        let n = recovered.applied_txns();
        assert!(
            n == pre_repair_txns || n == pre_repair_txns + 1,
            "event {k}: recovered a torn repair (txns {n}, pre-repair {pre_repair_txns})"
        );
        if res.is_ok() {
            assert_eq!(n, pre_repair_txns + 1, "event {k}: acked repair txn lost");
        }
        assert_eq!(answers(recovered.db()), want, "event {k}: recovered answers diverged");
        let rescrub = recovered.scrub(&QueryBudget::unlimited());
        assert!(
            rescrub.is_clean(),
            "event {k}: recovered store carries damage: {rescrub}"
        );

        // The recovered instance keeps working: one more durable commit.
        let mut recovered = recovered;
        let receipt = recovered
            .apply(&[MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.123, 0.877] }])
            .unwrap_or_else(|e| panic!("event {k}: post-recovery apply failed: {e}"));
        assert!(receipt.durable, "event {k}: post-recovery commit not acked durable");
    }
}

// ----------------------------------------------------------- smaller pieces --

#[test]
fn repair_without_damage_is_a_no_op() {
    let mut db = build_subject();
    let epoch = db.epoch();
    let outcome = db.repair().expect("no-op repair succeeds");
    assert_eq!(outcome.txn, None);
    assert_eq!(outcome.cells_rebuilt, 0);
    assert_eq!(outcome.pages_healed, 0);
    assert_eq!(db.epoch(), epoch, "a no-op repair must not publish");
}

#[test]
fn budget_limited_scrub_stops_with_a_typed_reason_and_partial_coverage() {
    let mut db = build_subject();
    rot_every_signature_page(&mut db, 7);
    let report = db.scrub(&QueryBudget::unlimited().with_block_budget(2));
    assert_eq!(
        report.stopped,
        Some(StopReason::BlockBudgetExceeded),
        "a 2-block scrub must trip: {report}"
    );
    let full = db.scrub(&QueryBudget::unlimited());
    assert!(
        report.pages_scanned < full.pages_scanned + full.already_quarantined,
        "the budgeted sweep should cover a strict prefix"
    );
}

#[test]
fn scrub_runs_concurrently_with_parallel_readers() {
    let db = build_subject();
    let tid_set = |rows: &[(u64, Vec<f64>)]| -> Vec<u64> {
        let mut t: Vec<u64> = rows.iter().map(|(tid, _)| *tid).collect();
        t.sort_unstable();
        t
    };
    let want = tid_set(&skyline_query(db.db(), &Vec::new(), &[0, 1], false).skyline);
    std::thread::scope(|s| {
        let reader = s.spawn(|| {
            for _ in 0..8 {
                let out = par_skyline_query(
                    db.db(),
                    &Vec::new(),
                    &[0, 1],
                    ParallelOptions::default(),
                );
                assert_eq!(tid_set(&out.skyline), want, "reader diverged during scrub");
            }
        });
        for _ in 0..4 {
            let report = db.scrub(&QueryBudget::unlimited());
            assert!(report.is_clean(), "clean store scrubs clean under readers: {report}");
        }
        reader.join().expect("reader thread panicked");
    });
}

#[test]
fn orphan_quarantine_entries_clear_without_touching_the_free_list() {
    // Quarantine a page no cell references (free it first), then repair:
    // the entry must clear, but the page must *not* be freed again.
    let mut db = build_subject();
    let pager = db.signature_store_mut().sig_pager_mut();
    let pid = pager.allocate();
    let bytes = vec![0xABu8; pager.page_size()];
    pager.write(pid, &bytes);
    pager.corrupt_page(pid, 1, 0x02).unwrap();
    assert!(pager.try_read(pid).is_err(), "corrupted page must fail its read");
    assert_eq!(pager.quarantine_len(), 1);
    let outcome = db.repair().expect("repair succeeds");
    assert_eq!(outcome.cells_rebuilt, 0, "no cell references the orphan page");
    assert_eq!(
        db.signature_store_mut().sig_pager_mut().quarantine_len(),
        0,
        "orphan entry must clear"
    );
}
