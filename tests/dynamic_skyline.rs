//! The §VII dynamic-skyline extension must agree with a brute-force oracle
//! over the transformed space, under boolean selections.

use pcube::core::{dynamic_skyline_query, PCubeConfig, PCubeDb};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn oracle(
    db: &PCubeDb,
    sel: &Selection,
    q: &[f64],
    pref_dims: &[usize],
) -> Vec<u64> {
    let transform = |coords: &[f64]| -> Vec<f64> {
        coords.iter().enumerate().map(|(d, &x)| (x - q[d]).abs()).collect()
    };
    let qualifying: Vec<(u64, Vec<f64>)> = (0..db.relation().len() as u64)
        .filter(|&t| db.relation().matches(t, sel))
        .map(|t| (t, transform(&db.relation().pref_coords(t))))
        .collect();
    let mut sky = Vec::new();
    'outer: for (tid, t) in &qualifying {
        for (other, s) in &qualifying {
            if other != tid {
                let mut strict = false;
                let mut dom = true;
                for &d in pref_dims {
                    if s[d] > t[d] {
                        dom = false;
                        break;
                    }
                    if s[d] < t[d] {
                        strict = true;
                    }
                }
                if dom && strict {
                    continue 'outer;
                }
            }
        }
        sky.push(*tid);
    }
    sky.sort_unstable();
    sky
}

#[test]
fn dynamic_skyline_matches_oracle() {
    let spec = SyntheticSpec {
        n_tuples: 900,
        n_bool: 3,
        n_pref: 2,
        cardinality: 5,
        distribution: Distribution::Uniform,
        seed: 51,
    };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let mut rng = StdRng::seed_from_u64(1);
    for n_preds in 0..=2 {
        for _ in 0..4 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            let q = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            let out = dynamic_skyline_query(&db, &sel, &q, &[0, 1]);
            let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
            got.sort_unstable();
            assert_eq!(got, oracle(&db, &sel, &q, &[0, 1]), "sel {sel:?} q {q:?}");
        }
    }
}

#[test]
fn query_point_at_origin_reduces_to_static_skyline() {
    // With q = 0 and non-negative coordinates, |x − 0| = x: the dynamic
    // skyline equals the ordinary skyline.
    let spec = SyntheticSpec { n_tuples: 700, n_pref: 3, ..Default::default() };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let mut rng = StdRng::seed_from_u64(2);
    let sel = sample_selection(db.relation(), 1, &mut rng);
    let dynamic = dynamic_skyline_query(&db, &sel, &[0.0, 0.0, 0.0], &[0, 1, 2]);
    let static_sky = pcube::core::skyline_query(&db, &sel, &[0, 1, 2], false);
    let mut a: Vec<u64> = dynamic.skyline.iter().map(|p| p.0).collect();
    let mut b: Vec<u64> = static_sky.skyline.iter().map(|p| p.0).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn center_query_point_prefers_central_tuples() {
    let spec = SyntheticSpec { n_tuples: 2000, n_pref: 2, ..Default::default() };
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let q = [0.5, 0.5];
    let out = dynamic_skyline_query(&db, &Vec::new(), &q, &[0, 1]);
    assert!(!out.skyline.is_empty());
    // Every dynamic skyline point must be closer to q (per-dimension) than
    // the farthest corner would allow; in particular the closest tuple to q
    // by L1 must be in the skyline.
    let closest = (0..db.relation().len() as u64)
        .min_by(|&a, &b| {
            let da: f64 = db.relation().pref_coords(a).iter().zip(&q).map(|(x, t)| (x - t).abs()).sum();
            let dbv: f64 = db.relation().pref_coords(b).iter().zip(&q).map(|(x, t)| (x - t).abs()).sum();
            da.partial_cmp(&dbv).unwrap()
        })
        .unwrap();
    assert!(out.skyline.iter().any(|p| p.0 == closest), "closest tuple must survive");
}
