//! Chaos soak: thousands of mixed queries across many client threads, under
//! seeded storage faults, randomized budgets, and mid-flight cancellations —
//! all against one shared [`PCubeDb`] behind an admission gate.
//!
//! The lifecycle contract under test:
//!
//! * **no panics, no deadlocks** — any engine panic fails the test via the
//!   joined worker threads; a watchdog aborts the process if the soak wedges;
//! * **`Complete` is exact** — bit-identical to the clean serial oracle,
//!   even while the signature pagers are injecting seeded read faults
//!   (graceful degradation must not bend answers, only cost);
//! * **`Partial` is honest** — the reason matches a budget that was actually
//!   set, the progress counters agree with the returned rows, serial top-k
//!   partials are prefixes and serial skyline partials sound subsets, and
//!   parallel partials contain only tuples satisfying the selection;
//! * **deadline overshoot ≤ one kernel pop** — the cooperative-checking
//!   guarantee `overshoot_seconds <= max_pop_seconds`, asserted on every
//!   deadline trip.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pcube::core::{
    convex_hull_query, convex_hull_query_governed, dynamic_skyline_query,
    dynamic_skyline_query_governed, par_skyline_query_governed, par_topk_query_governed,
    skyline_query, skyline_query_governed, topk_query, topk_query_governed, AdmissionGate,
    CancelToken, LinearFn, PCubeConfig, PCubeDb, ParallelOptions, Progress, QueryBudget,
    QueryOutcome, QueryStats, StopReason,
};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, SyntheticSpec};
use pcube::storage::FaultPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 8;
const TOTAL_QUERIES: usize = 5_000;
const DISTINCT_CASES: usize = 64;

#[derive(Clone)]
enum Query {
    TopK { sel: Selection, k: usize, weights: Vec<f64> },
    Skyline { sel: Selection },
    Dynamic { sel: Selection, q: Vec<f64> },
    Hull { sel: Selection },
}

/// A canonicalized answer, comparable with `==` across threads and runs.
#[derive(Clone, PartialEq, Debug)]
enum Answer {
    TopK(Vec<(u64, Vec<f64>, f64)>),
    Skyline(Vec<(u64, Vec<f64>)>),
    Hull(Vec<(u64, [f64; 2])>),
}

struct Case {
    query: Query,
    oracle: Answer,
}

fn build_cases(db: &PCubeDb, seed: u64) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..DISTINCT_CASES)
        .map(|i| {
            let sel = sample_selection(db.relation(), i % 3, &mut rng);
            let query = match i % 4 {
                0 => Query::TopK {
                    sel,
                    k: 3 + i % 16,
                    weights: vec![0.2 + 0.1 * (i % 7) as f64, 0.9 - 0.1 * (i % 5) as f64],
                },
                1 => Query::Skyline { sel },
                2 => Query::Dynamic {
                    sel,
                    q: vec![0.1 * (i % 10) as f64, 1.0 - 0.1 * (i % 10) as f64],
                },
                _ => Query::Hull { sel },
            };
            let oracle = match &query {
                Query::TopK { sel, k, weights } => Answer::TopK(
                    topk_query(db, sel, *k, &LinearFn::new(weights.clone()), false).topk,
                ),
                Query::Skyline { sel } => Answer::Skyline(skyline_query(db, sel, &[0, 1], false).skyline),
                Query::Dynamic { sel, q } => {
                    Answer::Skyline(dynamic_skyline_query(db, sel, q, &[0, 1]).skyline)
                }
                Query::Hull { sel } => Answer::Hull(convex_hull_query(db, sel, (0, 1)).hull),
            };
            Case { query, oracle }
        })
        .collect()
}

/// How query `i` is governed, derived deterministically from its index.
enum Governance {
    /// No budget: must complete, bit-identically.
    Unlimited,
    /// An already-expired deadline: guaranteed `DeadlineExceeded`.
    InstantDeadline,
    /// A short random deadline: may complete or trip.
    RandomDeadline(Duration),
    /// A small block budget: usually trips on the unselective cases.
    Blocks(u64),
    /// A small heap cap.
    Heap(usize),
    /// A token cancelled before the query starts: guaranteed `Cancelled`.
    PreCancelled,
    /// A token cancelled from another thread mid-flight.
    MidFlightCancel(Duration),
    /// Run on the parallel engine (workers share one fleet budget).
    Parallel { workers: usize, budget: QueryBudget },
}

fn governance_for(i: usize, rng: &mut StdRng) -> Governance {
    match i % 10 {
        0..=2 => Governance::Unlimited,
        3 => Governance::InstantDeadline,
        4 => Governance::RandomDeadline(Duration::from_micros(rng.gen_range(0..2_000))),
        5 => Governance::Blocks(rng.gen_range(1..=40)),
        6 => Governance::Heap(rng.gen_range(4..=64)),
        7 => Governance::PreCancelled,
        8 => Governance::MidFlightCancel(Duration::from_micros(rng.gen_range(0..300))),
        _ => Governance::Parallel {
            workers: 2 + i % 2,
            budget: match rng.gen_range(0..3u32) {
                0 => QueryBudget::unlimited(),
                1 => QueryBudget::unlimited()
                    .with_deadline(Duration::from_micros(rng.gen_range(0..2_000))),
                _ => QueryBudget::unlimited().with_block_budget(rng.gen_range(1..=40)),
            },
        },
    }
}

/// Tallies across the whole soak, checked at the end.
#[derive(Default)]
struct Tally {
    complete: AtomicU64,
    deadline: AtomicU64,
    blocks: AtomicU64,
    heap: AtomicU64,
    cancelled: AtomicU64,
}

impl Tally {
    fn record(&self, outcome: &QueryOutcome) {
        let counter = match outcome.partial_reason() {
            None => &self.complete,
            Some(StopReason::DeadlineExceeded) => &self.deadline,
            Some(StopReason::BlockBudgetExceeded) => &self.blocks,
            Some(StopReason::HeapCapExceeded) => &self.heap,
            Some(StopReason::Cancelled) => &self.cancelled,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The per-partial invariants every engine must honor. `exact_rows` is
/// false only for hulls, whose `results_so_far` counts the points *visited*
/// (the returned rows are the hull of those, necessarily no larger).
fn check_progress(i: usize, stats: &QueryStats, rows: usize, serial: bool, exact_rows: bool) {
    let QueryOutcome::Partial { reason, progress } = &stats.outcome else {
        return;
    };
    let Progress { results_so_far, overshoot_seconds, max_pop_seconds, frontier, .. } = *progress;
    if exact_rows {
        assert_eq!(results_so_far, rows, "query {i}: progress vs returned rows");
    } else {
        assert!(results_so_far >= rows, "query {i}: visited points bound the hull size");
    }
    if serial {
        assert!(frontier >= 1, "query {i}: a serial trip abandons at least the popped entry");
    }
    if *reason == StopReason::DeadlineExceeded {
        assert!(
            overshoot_seconds <= max_pop_seconds + 1e-6,
            "query {i}: overshoot {overshoot_seconds}s exceeds one pop ({max_pop_seconds}s)"
        );
    } else {
        assert_eq!(overshoot_seconds, 0.0, "query {i}: overshoot only for deadline trips");
    }
}

fn assert_reason_allowed(i: usize, reason: StopReason, allowed: &[StopReason]) {
    assert!(
        allowed.contains(&reason),
        "query {i}: stop reason {reason} but only {allowed:?} were configured"
    );
}

#[allow(clippy::too_many_lines)]
fn run_one(db: &PCubeDb, i: usize, case: &Case, tally: &Tally) {
    let mut rng = StdRng::seed_from_u64(0x50AC ^ i as u64);
    let governance = governance_for(i, &mut rng);

    // Resolve governance into (budget, cancel token, helper thread, the
    // reasons this configuration is allowed to produce, parallel workers).
    let mut budget = QueryBudget::unlimited();
    let mut cancel: Option<CancelToken> = None;
    let mut canceller: Option<std::thread::JoinHandle<()>> = None;
    let mut allowed: Vec<StopReason> = Vec::new();
    let mut workers = 0usize;
    match governance {
        Governance::Unlimited => {}
        Governance::InstantDeadline => {
            budget = budget.with_deadline(Duration::ZERO);
            allowed.push(StopReason::DeadlineExceeded);
        }
        Governance::RandomDeadline(d) => {
            budget = budget.with_deadline(d);
            allowed.push(StopReason::DeadlineExceeded);
        }
        Governance::Blocks(b) => {
            budget = budget.with_block_budget(b);
            allowed.push(StopReason::BlockBudgetExceeded);
        }
        Governance::Heap(h) => {
            budget = budget.with_heap_cap(h);
            allowed.push(StopReason::HeapCapExceeded);
        }
        Governance::PreCancelled => {
            let token = CancelToken::new();
            token.cancel();
            cancel = Some(token);
            allowed.push(StopReason::Cancelled);
        }
        Governance::MidFlightCancel(after) => {
            let token = CancelToken::new();
            let handle = token.clone();
            canceller = Some(std::thread::spawn(move || {
                std::thread::sleep(after);
                handle.cancel();
            }));
            cancel = Some(token);
            allowed.push(StopReason::Cancelled);
        }
        Governance::Parallel { workers: w, budget: b } => {
            workers = w;
            if b.deadline().is_some() {
                allowed.push(StopReason::DeadlineExceeded);
            }
            if b.max_blocks().is_some() {
                allowed.push(StopReason::BlockBudgetExceeded);
            }
            // One worker's trip drains the fleet: siblings report Cancelled.
            if !allowed.is_empty() {
                allowed.push(StopReason::Cancelled);
            }
            budget = b;
        }
    }
    let serial = workers == 0;

    // Admission: every soak query goes through the gate. The gate has fewer
    // slots than client threads but a generous wait, so queries queue under
    // real contention yet never shed.
    let permit = db.admit().expect("generous admission wait must not shed");
    assert!(permit.is_some(), "the soak installs a gate");

    match &case.query {
        Query::TopK { sel, k, weights } => {
            let f = LinearFn::new(weights.clone());
            let (topk, stats) = if serial {
                let out = topk_query_governed(db, sel, *k, &f, false, &budget, cancel.as_ref());
                (out.topk, out.stats)
            } else {
                let out = par_topk_query_governed(
                    db,
                    sel,
                    *k,
                    &f,
                    ParallelOptions::with_workers(workers),
                    &budget,
                    cancel.as_ref(),
                );
                (out.topk, out.stats)
            };
            check_progress(i, &stats, topk.len(), serial, true);
            match &stats.outcome {
                QueryOutcome::Complete => {
                    assert_eq!(Answer::TopK(topk), case.oracle, "query {i}: complete top-k");
                }
                QueryOutcome::Partial { reason, .. } => {
                    assert_reason_allowed(i, *reason, &allowed);
                    let Answer::TopK(full) = &case.oracle else { panic!("oracle kind") };
                    if serial {
                        // Serial top-k accepts in ascending score order: any
                        // partial is a prefix of the true answer.
                        assert_eq!(&topk[..], &full[..topk.len()], "query {i}: partial prefix");
                    } else {
                        for (tid, _, _) in &topk {
                            assert!(
                                db.relation().matches(*tid, sel),
                                "query {i}: parallel partial returned non-qualifying {tid}"
                            );
                        }
                    }
                }
            }
            tally.record(&stats.outcome);
        }
        Query::Skyline { sel } => {
            let (sky, stats) = if serial {
                let out = skyline_query_governed(db, sel, &[0, 1], false, &budget, cancel.as_ref());
                (out.skyline, out.stats)
            } else {
                let out = par_skyline_query_governed(
                    db,
                    sel,
                    &[0, 1],
                    ParallelOptions::with_workers(workers),
                    &budget,
                    cancel.as_ref(),
                );
                (out.skyline, out.stats)
            };
            check_progress(i, &stats, sky.len(), serial, true);
            match &stats.outcome {
                QueryOutcome::Complete => {
                    assert_eq!(Answer::Skyline(sky), case.oracle, "query {i}: complete skyline");
                }
                QueryOutcome::Partial { reason, .. } => {
                    assert_reason_allowed(i, *reason, &allowed);
                    let Answer::Skyline(full) = &case.oracle else { panic!("oracle kind") };
                    if serial {
                        // BBS accepts only never-dominated points: a serial
                        // partial skyline is a sound subset.
                        for p in &sky {
                            assert!(full.contains(p), "query {i}: partial skyline ⊆ full");
                        }
                    } else {
                        for (tid, _) in &sky {
                            assert!(
                                db.relation().matches(*tid, sel),
                                "query {i}: parallel partial returned non-qualifying {tid}"
                            );
                        }
                    }
                }
            }
            tally.record(&stats.outcome);
        }
        Query::Dynamic { sel, q } => {
            // Serial only (the parallel mode maps dynamic cases here too —
            // governance still applies, just on one thread).
            let out = dynamic_skyline_query_governed(db, sel, q, &[0, 1], &budget, cancel.as_ref());
            check_progress(i, &out.stats, out.skyline.len(), true, true);
            match &out.stats.outcome {
                QueryOutcome::Complete => {
                    assert_eq!(
                        Answer::Skyline(out.skyline),
                        case.oracle,
                        "query {i}: complete dynamic skyline"
                    );
                }
                QueryOutcome::Partial { reason, .. } => {
                    assert_reason_allowed(i, *reason, &allowed);
                    let Answer::Skyline(full) = &case.oracle else { panic!("oracle kind") };
                    for p in &out.skyline {
                        assert!(full.contains(p), "query {i}: partial dynamic skyline ⊆ full");
                    }
                }
            }
            tally.record(&out.stats.outcome);
        }
        Query::Hull { sel } => {
            let out = convex_hull_query_governed(db, sel, (0, 1), &budget, cancel.as_ref());
            check_progress(i, &out.stats, out.hull.len(), true, false);
            match &out.stats.outcome {
                QueryOutcome::Complete => {
                    assert_eq!(Answer::Hull(out.hull), case.oracle, "query {i}: complete hull");
                }
                QueryOutcome::Partial { reason, .. } => {
                    // A partial hull carries no membership guarantee (it is
                    // the hull of the visited points); only the books are
                    // checked, which check_progress already did.
                    assert_reason_allowed(i, *reason, &allowed);
                }
            }
            tally.record(&out.stats.outcome);
        }
    }
    drop(permit);
    if let Some(h) = canceller {
        h.join().expect("canceller thread never panics");
    }
}

/// The soak itself: ≥5,000 queries, ≥8 threads, seeded faults on both
/// signature pagers, an admission gate narrower than the thread count, and
/// every governance mode in the mix.
#[test]
fn soak_mixed_queries_under_faults_budgets_and_cancels() {
    // Watchdog: a wedged soak (deadlock, livelock) aborts loudly instead of
    // hanging the suite past CI's timeout.
    let finished = Arc::new(AtomicBool::new(false));
    let watchdog_flag = finished.clone();
    std::thread::spawn(move || {
        for _ in 0..240 {
            std::thread::sleep(Duration::from_secs(1));
            if watchdog_flag.load(Ordering::Relaxed) {
                return;
            }
        }
        eprintln!("soak watchdog: still running after 240s — aborting (deadlock?)");
        std::process::abort();
    });

    let spec = SyntheticSpec {
        n_tuples: 2_000,
        n_bool: 3,
        n_pref: 2,
        cardinality: 6,
        seed: 7,
        ..Default::default()
    };
    let mut db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());

    // Oracles come from the clean database; faults are installed after.
    let cases = build_cases(&db, 7);

    db.signature_store_mut()
        .sig_pager_mut()
        .set_fault_plan(FaultPlan::seeded(0xC4A0).with_read_errors(0.3));
    db.signature_store_mut()
        .dir_pager_mut()
        .set_fault_plan(FaultPlan::seeded(0x0D1E).with_read_errors(0.2));
    db.set_admission_gate(AdmissionGate::new(THREADS - 2, Duration::from_secs(60)));

    let tally = Tally::default();
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (db, cases, tally, next) = (&db, &cases, &tally, &next);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= TOTAL_QUERIES {
                        break;
                    }
                    run_one(db, i, &cases[i % cases.len()], tally);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("soak worker panicked");
        }
    });
    finished.store(true, Ordering::Relaxed);

    // The gate saw every query and, with its generous wait, shed none.
    let gate = db.admission_gate().expect("gate installed");
    assert_eq!(gate.admitted_total(), TOTAL_QUERIES as u64, "every query was admitted");
    assert_eq!(gate.shed_total(), 0, "a 60s wait never sheds a soak query");
    assert_eq!(gate.in_flight(), 0, "all permits released");

    // The mix must actually have exercised every lifecycle path.
    let complete = tally.complete.load(Ordering::Relaxed);
    let deadline = tally.deadline.load(Ordering::Relaxed);
    let blocks = tally.blocks.load(Ordering::Relaxed);
    let heap = tally.heap.load(Ordering::Relaxed);
    let cancelled = tally.cancelled.load(Ordering::Relaxed);
    assert_eq!(
        complete + deadline + blocks + heap + cancelled,
        TOTAL_QUERIES as u64,
        "every query tallied exactly once"
    );
    assert!(complete > 0, "unlimited queries completed");
    assert!(deadline > 0, "instant deadlines tripped");
    assert!(blocks > 0, "small block budgets tripped");
    assert!(heap > 0, "small heap caps tripped");
    assert!(cancelled > 0, "pre-cancelled tokens tripped");
    assert!(
        db.stats().degraded_reads() > 0,
        "the seeded fault plans must actually have fired during the soak"
    );
    eprintln!(
        "soak: {complete} complete, {deadline} deadline, {blocks} blocks, \
         {heap} heap, {cancelled} cancelled"
    );
}
