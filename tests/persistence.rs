//! Save/open roundtrips: a reloaded database must answer every query
//! identically and accept further maintenance.

use pcube::core::{skyline_query, topk_query, LinearFn, PCubeConfig, PCubeDb};
use pcube::data::{sample_selection, synthetic, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build() -> PCubeDb {
    let spec = SyntheticSpec {
        n_tuples: 1500,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        ..Default::default()
    };
    PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
}

#[test]
fn bytes_roundtrip_preserves_every_answer() {
    let db = build();
    let bytes = db.save_to_bytes();
    let reloaded = PCubeDb::load_from_bytes(&bytes).expect("loads");
    assert_eq!(reloaded.relation().len(), db.relation().len());
    assert_eq!(reloaded.rtree().height(), db.rtree().height());
    assert_eq!(reloaded.pcube().registry().len(), db.pcube().registry().len());
    reloaded.rtree().check_invariants();

    let mut rng = StdRng::seed_from_u64(1);
    let f = LinearFn::new(vec![0.6, 0.4]);
    for n_preds in 0..=2 {
        for _ in 0..3 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            let a = skyline_query(&db, &sel, &[0, 1], false);
            let b = skyline_query(&reloaded, &sel, &[0, 1], false);
            let mut ta: Vec<u64> = a.skyline.iter().map(|p| p.0).collect();
            let mut tb: Vec<u64> = b.skyline.iter().map(|p| p.0).collect();
            ta.sort_unstable();
            tb.sort_unstable();
            assert_eq!(ta, tb, "skyline mismatch for {sel:?}");

            let x = topk_query(&db, &sel, 5, &f, false);
            let y = topk_query(&reloaded, &sel, 5, &f, false);
            assert_eq!(x.topk.len(), y.topk.len());
            for (p, q) in x.topk.iter().zip(&y.topk) {
                assert!((p.2 - q.2).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn reloaded_database_accepts_inserts() {
    let db = build();
    let mut reloaded = PCubeDb::load_from_bytes(&db.save_to_bytes()).unwrap();
    for i in 0..40u64 {
        let f = i as f64;
        reloaded.insert_coded(&[i as u32 % 8, 0, 1], &[(f * 0.37) % 1.0, (f * 0.61) % 1.0]);
    }
    reloaded.rtree().check_invariants();
    assert_eq!(reloaded.relation().len(), 1540);
    // New rows are findable.
    let sel = vec![pcube::cube::Predicate { dim: 2, value: 1 }];
    let out = skyline_query(&reloaded, &sel, &[0, 1], false);
    assert!(!out.skyline.is_empty());
    // Second roundtrip after maintenance.
    let again = PCubeDb::load_from_bytes(&reloaded.save_to_bytes()).unwrap();
    let out2 = skyline_query(&again, &sel, &[0, 1], false);
    assert_eq!(out.skyline.len(), out2.skyline.len());
}

#[test]
fn file_roundtrip() {
    let db = build();
    let path = std::env::temp_dir().join(format!("pcube_test_{}.db", std::process::id()));
    db.save(&path).expect("save");
    let reloaded = PCubeDb::open(&path).expect("open");
    assert_eq!(reloaded.relation().len(), db.relation().len());
    // String dictionaries survive: selection by name still binds.
    let out = skyline_query(&reloaded, &Vec::new(), &[0, 1], false);
    assert!(!out.skyline.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_images_are_rejected_not_panicking() {
    let db = build();
    let bytes = db.save_to_bytes();
    assert!(PCubeDb::load_from_bytes(b"not a database").is_err());
    assert!(PCubeDb::load_from_bytes(&bytes[..bytes.len() / 2]).is_err());
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(PCubeDb::load_from_bytes(&wrong_magic).is_err());
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(PCubeDb::load_from_bytes(&trailing).is_err());
}

fn load_err(buf: &[u8]) -> pcube::core::PersistError {
    match PCubeDb::load_from_bytes(buf) {
        Err(e) => e,
        Ok(_) => panic!("expected the load to fail"),
    }
}

#[test]
fn persist_errors_pinpoint_section_and_offset() {
    let db = build();
    let bytes = db.save_to_bytes();

    // Zero-length buffer.
    let e = load_err(&[]);
    assert_eq!(e.section, "header");
    assert!(e.cause.contains("shorter than the magic header"), "{e}");

    // Wrong magic.
    let e = load_err(b"NOTADB99");
    assert_eq!((e.section, e.offset), ("header", 0));

    // Future version byte.
    let mut future = bytes.clone();
    future[7] = b'9';
    let e = load_err(&future);
    assert_eq!((e.section, e.offset), ("header", 7));
    assert!(e.cause.contains("future format version"), "{e}");

    // Old version byte gets a precise "unsupported" message.
    let mut old = bytes.clone();
    old[7] = b'1';
    let e = load_err(&old);
    assert!(e.cause.contains("unsupported format version 1"), "{e}");

    // Truncation inside a section.
    let e = load_err(&bytes[..bytes.len() - 10]);
    assert!(!e.section.is_empty());
    assert!(e.offset <= bytes.len(), "{e}");

    // A bit flip anywhere in a section payload trips that section's CRC.
    for &at in &[20usize, bytes.len() / 3, bytes.len() / 2, bytes.len() - 20] {
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x10;
        let e = load_err(&flipped);
        assert!(
            e.cause.contains("checksum mismatch")
                || e.cause.contains("section")
                || e.cause.contains("truncated"),
            "byte {at}: unexpected error {e}"
        );
        assert!(!e.section.is_empty(), "byte {at}: error must name a section");
    }
}

#[test]
fn truncated_trailing_section_names_the_section_not_a_length_error() {
    // A partial write that cuts the *last* section short — the classic
    // torn-file shape — must be reported as a truncation of that section
    // by name ("signatures", the trailing section of the v2 layout), not
    // as a generic length complaint against the whole image.
    let db = build();
    let bytes = db.save_to_bytes();

    // Find where the trailing signatures section begins: its 9-byte header
    // (tag 4 + u64 length) is the last section header in the image.
    // Walk the framing from the front to locate it robustly.
    let mut pos = 8; // magic
    let mut last_body = 0usize;
    while pos + 9 <= bytes.len() {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[pos + 1..pos + 9]);
        let len = u64::from_le_bytes(raw) as usize;
        last_body = pos + 9;
        pos = pos + 9 + len + 4;
    }
    assert_eq!(pos, bytes.len(), "walked framing must land on the image end");
    assert_eq!(bytes[last_body - 9], 4, "trailing section must be the signatures tag");

    // Cut at several depths inside the trailing section: just after the
    // header, mid-payload, and one byte short of complete.
    for cut in [last_body, last_body + (bytes.len() - last_body) / 2, bytes.len() - 1] {
        let e = load_err(&bytes[..cut]);
        assert_eq!(
            e.section, "signatures",
            "cut at {cut}: wrong section named: {e}"
        );
        assert!(
            e.cause.contains("truncated"),
            "cut at {cut}: cause must say the section is truncated, got: {e}"
        );
        assert!(
            !e.cause.contains("implausible"),
            "cut at {cut}: a clean truncation must not be reported as corruption: {e}"
        );
    }

    // Cutting *inside the header itself* is still attributed to the
    // signatures section at the header's offset.
    let e = load_err(&bytes[..last_body - 5]);
    assert_eq!(e.section, "signatures", "header cut: {e}");
}

#[test]
fn quiescent_fault_plan_does_not_perturb_roundtrip() {
    // An installed-but-zero-probability fault plan must be a no-op: the
    // saved image and every reloaded answer stay identical.
    let mut db = build();
    let clean_bytes = db.save_to_bytes();
    db.signature_store_mut()
        .sig_pager_mut()
        .set_fault_plan(pcube::storage::FaultPlan::seeded(99));
    let with_plan = db.save_to_bytes();
    assert_eq!(clean_bytes, with_plan, "quiescent plan changed the image");

    let reloaded = PCubeDb::load_from_bytes(&with_plan).expect("loads");
    let mut rng = StdRng::seed_from_u64(7);
    for n_preds in 0..=2 {
        let sel = sample_selection(db.relation(), n_preds, &mut rng);
        let a = skyline_query(&db, &sel, &[0, 1], false);
        let b = skyline_query(&reloaded, &sel, &[0, 1], false);
        let mut ta: Vec<u64> = a.skyline.iter().map(|p| p.0).collect();
        let mut tb: Vec<u64> = b.skyline.iter().map(|p| p.0).collect();
        ta.sort_unstable();
        tb.sort_unstable();
        assert_eq!(ta, tb, "skyline mismatch for {sel:?}");
    }
    assert_eq!(
        db.signature_store_mut().sig_pager_mut().fault_counts().map_or(0, |c| c.total()),
        0,
        "a quiescent plan must never fire"
    );
}
