//! The SQL front end must produce exactly what the programmatic API does.

use pcube::core::{skyline_query, topk_query, PCubeConfig, PCubeDb, WeightedDistanceFn};
use pcube::cube::{Relation, Schema};
use pcube::sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn car_db() -> PCubeDb {
    let mut rng = StdRng::seed_from_u64(44);
    let mut cars = Relation::new(Schema::new(&["type", "color"], &["price", "mileage"]));
    let types = ["sedan", "suv", "coupe"];
    let colors = ["red", "blue", "white"];
    for _ in 0..2000 {
        let t = types[rng.gen_range(0..3)];
        let c = colors[rng.gen_range(0..3)];
        cars.push(&[t, c], &[rng.gen(), rng.gen()]);
    }
    PCubeDb::build(cars, &PCubeConfig::default())
}

#[test]
fn sql_skyline_matches_api() {
    let db = car_db();
    let out = sql::execute(
        &db,
        "select skyline from cars where type = 'sedan' and color = 'red' \
         preference by price, mileage",
    )
    .unwrap();
    let sel = db.selection(&[("type", "sedan"), ("color", "red")]);
    let api = skyline_query(&db, &sel, &[0, 1], false);
    let mut a: Vec<u64> = out.rows.iter().map(|r| r.tid).collect();
    let mut b: Vec<u64> = api.skyline.iter().map(|p| p.0).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
    for row in &out.rows {
        assert_eq!(row.bool_values[0], "sedan");
        assert_eq!(row.bool_values[1], "red");
        assert_eq!(row.score, None);
        assert_eq!(row.coords.len(), 2);
    }
}

#[test]
fn sql_topk_matches_api() {
    let db = car_db();
    let out = sql::execute(
        &db,
        "select top 7 from cars where type = 'suv' \
         order by (price - 0.25)^2 + 0.5 * (mileage - 0.4)^2",
    )
    .unwrap();
    let sel = db.selection(&[("type", "suv")]);
    let f = WeightedDistanceFn::new(vec![0.25, 0.4], vec![1.0, 0.5]);
    let api = topk_query(&db, &sel, 7, &f, false);
    assert_eq!(out.rows.len(), api.topk.len());
    for (row, (tid, _, score)) in out.rows.iter().zip(&api.topk) {
        assert_eq!(row.tid, *tid);
        assert!((row.score.unwrap() - score).abs() < 1e-12);
    }
}

#[test]
fn sql_linear_ranking_subsets_dimensions() {
    let db = car_db();
    let out = sql::execute(&db, "select top 5 from cars order by mileage").unwrap();
    // The best-5 by mileage only, regardless of price.
    let mut best: Vec<(u64, f64)> =
        (0..db.relation().len() as u64).map(|t| (t, db.relation().pref_value(t, 1))).collect();
    best.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let expect: Vec<f64> = best[..5].iter().map(|(_, m)| *m).collect();
    let got: Vec<f64> = out.rows.iter().map(|r| r.score.unwrap()).collect();
    for (g, e) in got.iter().zip(&expect) {
        assert!((g - e).abs() < 1e-12);
    }
}

#[test]
fn sql_unknown_value_matches_nothing() {
    let db = car_db();
    let out = sql::execute(&db, "select skyline from cars where type = 'boat'").unwrap();
    assert!(out.rows.is_empty());
}

#[test]
fn sql_binding_errors_are_reported() {
    let db = car_db();
    assert!(sql::execute(&db, "select skyline from cars where horsepower = '9'").is_err());
    assert!(sql::execute(&db, "select top 3 from cars order by horsepower").is_err());
    assert!(sql::execute(&db, "select skyline from cars preference by horsepower").is_err());
}

#[test]
fn sql_numeric_codes_work_on_dictionaryless_relations() {
    use pcube::data::{synthetic, SyntheticSpec};
    let spec = SyntheticSpec { n_tuples: 500, n_bool: 2, n_pref: 2, cardinality: 4, ..Default::default() };
    let db = pcube::core::PCubeDb::build(synthetic(&spec), &pcube::core::PCubeConfig::default());
    let out = sql::execute(&db, "select skyline from r where A0 = 2").unwrap();
    assert!(!out.rows.is_empty());
    for row in &out.rows {
        assert_eq!(row.bool_values[0], "#2", "raw code rendered with # prefix");
    }
    // A non-numeric value on a dictionary-less relation matches nothing.
    let out = sql::execute(&db, "select skyline from r where A0 = 'red'").unwrap();
    assert!(out.rows.is_empty());
}
