//! Concurrency stress: one shared `PCubeDb`, many client threads, no
//! interior mutability escapes. Two contracts are checked:
//!
//! 1. **Result identity** — every query answered under heavy thread
//!    contention (serial engines from 8 threads, and the parallel engines
//!    fanning out on top of that) equals the answer computed alone on one
//!    thread, bit for bit.
//! 2. **Counter consistency** — the atomic [`IoStats`] ledger loses no
//!    updates: with caches pre-warmed so each query's I/O is deterministic,
//!    the ledger's total delta across a concurrent run equals the sum of
//!    the per-query serial deltas.

use pcube::core::{LinearFn, PCubeConfig, PCubeDb, ParallelOptions};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, Distribution, SyntheticSpec};
use pcube::storage::{IoCategory, IoSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREADS: usize = 8;

/// One query of the mixed workload. Weights are deterministic per index so
/// every run (and every thread schedule) sees the same workload.
#[derive(Clone)]
enum Query {
    TopK { sel: Selection, k: usize, weights: Vec<f64> },
    Skyline { sel: Selection },
    Dynamic { sel: Selection, q: Vec<f64> },
    Hull { sel: Selection },
}

/// A canonicalized answer, comparable with `==` across runs.
#[derive(Clone, PartialEq, Debug)]
enum Answer {
    TopK(Vec<(u64, Vec<f64>, f64)>),
    Skyline(Vec<(u64, Vec<f64>)>),
    Hull(Vec<(u64, [f64; 2])>),
}

fn run_serial(db: &PCubeDb, q: &Query) -> Answer {
    match q {
        Query::TopK { sel, k, weights } => {
            Answer::TopK(db.topk(sel, *k, &LinearFn::new(weights.clone())).topk)
        }
        Query::Skyline { sel } => Answer::Skyline(db.skyline(sel, &[0, 1]).skyline),
        Query::Dynamic { sel, q } => Answer::Skyline(db.dynamic_skyline(sel, q, &[0, 1]).skyline),
        Query::Hull { sel } => Answer::Hull(db.hull(sel, (0, 1)).hull),
    }
}

fn run_parallel(db: &PCubeDb, q: &Query, workers: usize) -> Answer {
    let opts = ParallelOptions::with_workers(workers);
    match q {
        Query::TopK { sel, k, weights } => {
            Answer::TopK(db.par_topk(sel, *k, &LinearFn::new(weights.clone()), opts).topk)
        }
        Query::Skyline { sel } => Answer::Skyline(db.par_skyline(sel, &[0, 1], opts).skyline),
        Query::Dynamic { sel, q } => {
            Answer::Skyline(db.par_dynamic_skyline(sel, q, &[0, 1], opts).skyline)
        }
        Query::Hull { sel } => Answer::Hull(db.par_hull(sel, (0, 1), opts).hull),
    }
}

fn build_db() -> PCubeDb {
    let spec = SyntheticSpec {
        n_tuples: 3000,
        n_bool: 3,
        n_pref: 2,
        cardinality: 8,
        distribution: Distribution::Uniform,
        seed: 42,
    };
    PCubeDb::build(synthetic(&spec), &PCubeConfig::default())
}

fn build_workload(db: &PCubeDb, n: usize) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..n)
        .map(|i| {
            let sel = sample_selection(db.relation(), i % 3, &mut rng);
            match i % 4 {
                0 => Query::TopK {
                    sel,
                    k: 3 + i % 10,
                    weights: vec![0.2 + 0.1 * (i % 7) as f64, 0.9 - 0.1 * (i % 5) as f64],
                },
                1 => Query::Skyline { sel },
                2 => Query::Dynamic {
                    sel,
                    q: vec![0.1 * (i % 10) as f64, 1.0 - 0.1 * (i % 10) as f64],
                },
                _ => Query::Hull { sel },
            }
        })
        .collect()
}

/// 8 threads hammer the serial engines on one shared database; each answer
/// must equal the single-threaded answer, and the shared atomic ledger's
/// delta must equal the sum of per-query serial deltas (no lost updates,
/// no double charges).
#[test]
fn concurrent_serial_queries_identical_results_and_exact_counters() {
    let db = build_db();
    let workload = build_workload(&db, 32);

    // Warm pass: populate the signature directory's pinned internal-page
    // cache so every later run of the same query charges identical I/O
    // (a cold concurrent pass could double-charge racing cache misses —
    // that is a cache property, not a ledger property).
    for q in &workload {
        run_serial(&db, q);
    }

    // Measure pass: per-query expected answers and per-query I/O deltas.
    let mut expected = Vec::new();
    let mut deltas: Vec<IoSnapshot> = Vec::new();
    for q in &workload {
        let before = db.stats().snapshot();
        expected.push(run_serial(&db, q));
        deltas.push(db.stats().snapshot().since(&before));
    }
    // Sanity: warmed queries must be deterministic, otherwise the counter
    // equality below would be vacuous or flaky.
    for (i, q) in workload.iter().enumerate() {
        let before = db.stats().snapshot();
        assert_eq!(run_serial(&db, q), expected[i], "query {i} not deterministic");
        assert_eq!(
            db.stats().snapshot().since(&before),
            deltas[i],
            "query {i} I/O not deterministic after warm-up"
        );
    }

    // Concurrent pass: round-robin the workload over the threads; every
    // thread checks its own answers.
    let before = db.stats().snapshot();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (db, workload, expected) = (&db, &workload, &expected);
            scope.spawn(move || {
                for (i, q) in workload.iter().enumerate() {
                    if i % THREADS == t {
                        assert_eq!(run_serial(db, q), expected[i], "thread {t}, query {i}");
                    }
                }
            });
        }
    });
    let delta = db.stats().snapshot().since(&before);

    // Counter consistency: the concurrent total equals the serial sum,
    // category by category.
    for cat in IoCategory::ALL {
        let expect: u64 = deltas.iter().map(|d| d.reads(cat)).sum();
        assert_eq!(delta.reads(cat), expect, "lost/extra reads in {cat}");
        let expect_w: u64 = deltas.iter().map(|d| d.writes(cat)).sum();
        assert_eq!(delta.writes(cat), expect_w, "lost/extra writes in {cat}");
    }
}

/// The parallel engines running *concurrently with each other* (8 client
/// threads × 4 workers each) still return bit-identical answers. I/O counts
/// may legitimately vary (shared pruning bounds are timing-dependent);
/// results may not.
#[test]
fn concurrent_parallel_queries_are_bit_identical_to_serial() {
    let db = build_db();
    let workload = build_workload(&db, 24);
    let expected: Vec<Answer> = workload.iter().map(|q| run_serial(&db, q)).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (db, workload, expected) = (&db, &workload, &expected);
            scope.spawn(move || {
                for (i, q) in workload.iter().enumerate() {
                    if i % THREADS == t {
                        assert_eq!(
                            run_parallel(db, q, 4),
                            expected[i],
                            "thread {t}, query {i} (parallel)"
                        );
                    }
                }
            });
        }
    });
}

/// Same database queried by serial and parallel engines at once — a mixed
/// fleet sharing one buffer of signatures, R-tree pages, and counters.
#[test]
fn mixed_serial_and_parallel_fleet_agrees() {
    let db = build_db();
    let workload = build_workload(&db, 16);
    let expected: Vec<Answer> = workload.iter().map(|q| run_serial(&db, q)).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (db, workload, expected) = (&db, &workload, &expected);
            scope.spawn(move || {
                for (i, q) in workload.iter().enumerate() {
                    if i % THREADS == t {
                        let got = if t % 2 == 0 {
                            run_serial(db, q)
                        } else {
                            run_parallel(db, q, 3)
                        };
                        assert_eq!(got, expected[i], "thread {t}, query {i}");
                    }
                }
            });
        }
    });
}
