//! Chaos harness: deterministic fault-injection sweeps over the whole stack.
//!
//! Every scenario is seeded, so failures replay exactly. The contract under
//! test, for both corrupt persisted images and injected query-time storage
//! faults, is: **a clean typed error or a correct answer — never a panic,
//! never a silently wrong result.** Correctness is judged against the
//! in-memory reference oracles (`pcube::baselines::reference`) over the
//! tuples that actually satisfy the selection, or against an identical
//! fault-free twin database.

use std::sync::OnceLock;

use pcube::baselines::reference::{bnl_skyline, naive_topk};
use pcube::core::{
    convex_hull_query, dynamic_skyline_query, skyline_query, topk_query, LinearFn, PCubeConfig,
    PCubeDb,
};
use pcube::cube::Selection;
use pcube::data::{sample_selection, synthetic, SyntheticSpec};
use pcube::storage::{FaultPlan, IoCategory, IoStats, Pager, StorageError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small pages + a few hundred rows: many signature/R-tree/B+-tree pages,
/// so random corruption has a rich surface, while sweeps stay fast.
fn spec() -> SyntheticSpec {
    SyntheticSpec {
        n_tuples: 350,
        n_bool: 3,
        n_pref: 2,
        cardinality: 6,
        seed: 42,
        ..Default::default()
    }
}

fn build_db() -> PCubeDb {
    let cfg = PCubeConfig { page_size: 512, ..PCubeConfig::default() };
    PCubeDb::build(synthetic(&spec()), &cfg)
}

/// The clean persisted image, built once and shared by every sweep.
fn clean_image() -> &'static [u8] {
    static IMAGE: OnceLock<Vec<u8>> = OnceLock::new();
    IMAGE.get_or_init(|| build_db().save_to_bytes())
}

/// Tuples satisfying `sel`, as `(tid, preference coords)` — the oracle's
/// input, read straight from the base table.
fn qualifying(db: &PCubeDb, sel: &Selection) -> Vec<(u64, Vec<f64>)> {
    (0..db.relation().len() as u64)
        .filter(|&t| db.relation().matches(t, sel))
        .map(|t| (t, db.relation().pref_coords(t)))
        .collect()
}

/// Asserts skyline and top-k answers over `db` equal the reference oracles.
fn assert_matches_oracle(db: &PCubeDb, sel: &Selection, label: &str) {
    let points = qualifying(db, sel);

    let out = skyline_query(db, sel, &[0, 1], false);
    let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
    let mut want: Vec<u64> = bnl_skyline(&points, &[0, 1]).iter().map(|p| p.0).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "{label}: skyline mismatch for {sel:?}");

    let f = LinearFn::new(vec![0.7, 0.3]);
    let out = topk_query(db, sel, 8, &f, false);
    let want = naive_topk(&points, 8, &f);
    assert_eq!(out.topk.len(), want.len(), "{label}: top-k size mismatch for {sel:?}");
    for (g, w) in out.topk.iter().zip(&want) {
        assert!(
            (g.2 - w.2).abs() < 1e-9,
            "{label}: top-k score mismatch for {sel:?}: got {} want {}",
            g.2,
            w.2
        );
    }
}

/// Asserts the dynamic skyline around `q` equals a BNL oracle over the
/// |x − q|-transformed qualifying tuples.
fn assert_dynamic_matches_oracle(db: &PCubeDb, sel: &Selection, q: &[f64], label: &str) {
    let t_points: Vec<(u64, Vec<f64>)> = qualifying(db, sel)
        .into_iter()
        .map(|(t, c)| (t, c.iter().zip(q).map(|(x, qd)| (x - qd).abs()).collect()))
        .collect();
    let out = dynamic_skyline_query(db, sel, q, &[0, 1]);
    let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
    let mut want: Vec<u64> = bnl_skyline(&t_points, &[0, 1]).iter().map(|p| p.0).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "{label}: dynamic skyline mismatch for {sel:?} around {q:?}");
}

// ------------------------------------------------------ corrupt-image sweep --

/// 700 seeded corruption scenarios against the persisted image: truncation,
/// bit flips, zeroed ranges and random overwrites. Every load must either
/// return a [`pcube::core::PersistError`] naming a section, or — when the
/// corruption happens to be a no-op — answer queries exactly.
#[test]
fn corrupt_image_sweep_errors_cleanly_or_answers_correctly() {
    let image = clean_image();
    for seed in 0..700u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = image.to_vec();
        match seed % 4 {
            0 => {
                let cut = rng.gen_range(0..img.len());
                img.truncate(cut);
            }
            1 => {
                let at = rng.gen_range(0..img.len());
                let bit = rng.gen_range(0..8u32);
                img[at] ^= 1 << bit;
            }
            2 => {
                let start = rng.gen_range(0..img.len());
                let len = rng.gen_range(1..256usize).min(img.len() - start);
                for b in &mut img[start..start + len] {
                    *b = 0;
                }
            }
            _ => {
                let start = rng.gen_range(0..img.len());
                let len = rng.gen_range(1..64usize).min(img.len() - start);
                for b in &mut img[start..start + len] {
                    *b = rng.gen::<u8>();
                }
            }
        }
        match PCubeDb::load_from_bytes(&img) {
            Err(e) => {
                assert!(!e.section.is_empty(), "seed {seed}: error must name a section");
                assert!(!e.cause.is_empty(), "seed {seed}: error must carry a cause");
            }
            Ok(db) => {
                // The mutation did not change any decoded byte (e.g. zeroed
                // an already-zero range): answers must be exact.
                assert_matches_oracle(&db, &Selection::new(), &format!("image seed {seed}"));
            }
        }
    }
}

// --------------------------------------------------- query-time fault sweep --

/// 120 seeded fault plans on the signature (and sometimes directory) pager,
/// each answering skyline, top-k, dynamic-skyline and convex-hull queries
/// under 0–2 predicates. Answers must match the oracles / the fault-free
/// twin exactly; the degradation counter must have fired somewhere.
#[test]
fn query_time_fault_sweep_stays_correct() {
    let image = clean_image();
    let clean = PCubeDb::load_from_bytes(image).expect("clean image loads");
    let mut degraded_total = 0u64;
    for seed in 0..120u64 {
        let mut db = PCubeDb::load_from_bytes(image).expect("clean image loads");
        let mut rng = StdRng::seed_from_u64(1_000 + seed);
        let p = 0.1 + 0.8 * rng.gen::<f64>();
        db.signature_store_mut()
            .sig_pager_mut()
            .set_fault_plan(FaultPlan::seeded(seed).with_read_errors(p));
        if seed % 3 == 0 {
            // Every third scenario also makes the signature directory flaky.
            db.signature_store_mut()
                .dir_pager_mut()
                .set_fault_plan(FaultPlan::seeded(seed ^ 0xABCD).with_read_errors(p));
        }
        for n_preds in 0..=2usize {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            let label = format!("fault seed {seed}");
            assert_matches_oracle(&db, &sel, &label);
            let q = vec![rng.gen::<f64>(), rng.gen::<f64>()];
            assert_dynamic_matches_oracle(&db, &sel, &q, &label);

            let a = convex_hull_query(&db, &sel, (0, 1));
            let b = convex_hull_query(&clean, &sel, (0, 1));
            let mut ga: Vec<u64> = a.hull.iter().map(|p| p.0).collect();
            let mut gb: Vec<u64> = b.hull.iter().map(|p| p.0).collect();
            ga.sort_unstable();
            gb.sort_unstable();
            assert_eq!(ga, gb, "{label}: hull mismatch for {sel:?}");
        }
        degraded_total += db.stats().degraded_reads();
    }
    assert!(
        degraded_total > 0,
        "sweeping 120 fault plans should have triggered at least one degraded read"
    );
}

// --------------------------------------------------------- targeted checks --

/// Corrupt every live signature page (checksums on, so reads fail loudly):
/// queries must fall back to unfiltered traversal, tally degraded reads, and
/// still match the oracle bit-for-bit.
#[test]
fn corrupt_signature_pages_degrade_but_answers_stay_exact() {
    let mut db = PCubeDb::load_from_bytes(clean_image()).expect("clean image loads");
    {
        let pager = db.signature_store_mut().sig_pager_mut();
        pager.set_checksums(true);
        for pid in pager.live_page_ids() {
            pager.corrupt_page(pid, 7, 0x80).expect("live page accepts corruption");
        }
    }
    let mut rng = StdRng::seed_from_u64(11);
    for n_preds in 1..=2usize {
        for _ in 0..4 {
            let sel = sample_selection(db.relation(), n_preds, &mut rng);
            assert_matches_oracle(&db, &sel, "corrupt-sig");
        }
    }
    assert!(
        db.stats().degraded_reads() > 0,
        "reading corrupt signature pages must be tallied as degraded"
    );
}

/// Seeded faults must exercise every shard of the concurrent buffer pool,
/// not just the pages that happen to hash to shard 0. Allocate until each
/// of the 8 shards owns several pages, then run a faulted read workload
/// over all of them (retrying failed reads, which cache nothing) and check
/// the per-shard ledgers: every shard tallies exactly one miss per owned
/// page plus one per fault it absorbed, and serves the two re-read rounds
/// entirely from its own cache.
#[test]
fn seeded_faults_spread_across_every_buffer_pool_shard() {
    use pcube::storage::{PageId, ShardedBufferPool};

    let page_size = 256usize;
    let mut pager = Pager::new(page_size, IoCategory::SignaturePage, IoStats::new_shared());
    let pool = ShardedBufferPool::new(256, 8);
    let shards = pool.shard_count();
    assert_eq!(shards, 8, "8-way pool requested");

    // Bucket freshly allocated pages by the shard they hash to until every
    // shard owns at least four.
    let mut per_shard: Vec<Vec<PageId>> = vec![Vec::new(); shards];
    while per_shard.iter().any(|v| v.len() < 4) {
        let pid = pager.allocate();
        assert!(pid.index() < 200, "Fibonacci mixing should cover 8 shards quickly");
        pager.write(pid, &vec![pid.0 as u8; page_size]);
        per_shard[pool.shard_index(pid)].push(pid);
    }

    pager.set_fault_plan(FaultPlan::seeded(77).with_read_errors(0.4));
    let mut shard_faults = vec![0u64; shards];
    for _round in 0..3 {
        for (s, pids) in per_shard.iter().enumerate() {
            for &pid in pids {
                // A failed read installs nothing, so each retry goes back to
                // the (faulted) pager until the seeded plan lets it through.
                let mut attempts = 0;
                loop {
                    match pool.try_read(&pager, pid) {
                        Ok(page) => {
                            assert_eq!(page[0], pid.0 as u8, "page {pid:?} content survives");
                            break;
                        }
                        Err(_) => {
                            shard_faults[s] += 1;
                            attempts += 1;
                            assert!(attempts < 1_000, "seeded plan at p=0.4 must let reads through");
                        }
                    }
                }
            }
        }
    }

    assert!(shard_faults.iter().sum::<u64>() > 0, "plan at p=0.4 must fire at least once");
    let mut hit_sum = 0;
    let mut miss_sum = 0;
    for s in 0..shards {
        let owned = per_shard[s].len() as u64;
        // Round 1: one successful miss per page plus one miss per absorbed
        // fault. Rounds 2–3 are pure cache hits (faults never evict).
        assert_eq!(
            pool.shard_misses(s),
            owned + shard_faults[s],
            "shard {s}: one miss per page plus one per injected fault"
        );
        assert_eq!(pool.shard_hits(s), 2 * owned, "shard {s}: re-read rounds hit its cache");
        assert!(shard_faults[s] > 0, "shard {s}: seeded faults must reach every shard");
        hit_sum += pool.shard_hits(s);
        miss_sum += pool.shard_misses(s);
    }
    assert_eq!(pool.hits(), hit_sum, "global hit count is the per-shard sum");
    assert_eq!(pool.misses(), miss_sum, "global miss count is the per-shard sum");
}

/// Allocation exhaustion surfaces as a typed error, not a panic or a bad
/// page id.
#[test]
fn alloc_budget_exhaustion_is_a_clean_error() {
    let stats = IoStats::new_shared();
    let mut pager = Pager::new(128, IoCategory::SignaturePage, stats);
    pager.set_fault_plan(FaultPlan::seeded(5).with_alloc_budget(3));
    for i in 0..3 {
        pager.try_allocate().unwrap_or_else(|e| panic!("allocation {i} within budget: {e}"));
    }
    assert!(matches!(pager.try_allocate(), Err(StorageError::OutOfPages)));
    assert!(matches!(pager.try_allocate(), Err(StorageError::OutOfPages)));
    assert_eq!(pager.fault_counts().map_or(0, |c| c.denied_allocs), 2);
}

// ------------------------------------------------------------ proptest sweep --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random single-byte XOR mutations of the persisted image (the
    /// vendored proptest runs with a fixed, deterministic seed derived from
    /// the test name, so the sweep is reproducible). Each mutated image must
    /// fail to load with a section-named error, or answer exactly.
    #[test]
    fn prop_mutated_images_error_cleanly_or_answer_correctly(
        at in any::<proptest::sample::Index>(),
        mask in 1u8..=255u8,
    ) {
        let image = clean_image();
        let mut img = image.to_vec();
        let pos = at.index(img.len());
        img[pos] ^= mask;
        match PCubeDb::load_from_bytes(&img) {
            Err(e) => {
                prop_assert!(!e.section.is_empty());
                prop_assert!(!e.cause.is_empty());
            }
            Ok(db) => {
                let points = qualifying(&db, &Selection::new());
                let out = skyline_query(&db, &Selection::new(), &[0, 1], false);
                let mut got: Vec<u64> = out.skyline.iter().map(|p| p.0).collect();
                let mut want: Vec<u64> =
                    bnl_skyline(&points, &[0, 1]).iter().map(|p| p.0).collect();
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want);
            }
        }
    }
}
