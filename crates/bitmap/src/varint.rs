//! LEB128 variable-length integers used by the compressed encodings.

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `buf` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated or oversized (> 10 byte) input.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 255, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn sequential_values_share_a_buffer() {
        let mut buf = Vec::new();
        for v in 0..300u64 {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for v in 0..300u64 {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }

    #[test]
    fn oversized_varint_is_rejected() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos), None);
    }
}
