//! Bit arrays and bitmap compression for P-Cube signatures.
//!
//! A P-Cube signature is a tree of *bit arrays*, one per R-tree node, where
//! each bit says whether the corresponding child subtree contains any tuple of
//! a given cube cell (§IV-B of the paper). The paper compresses each node's
//! bit array individually ("node-level compression") with "typical bitmap
//! compression methods" and argues this is better than whole-signature
//! compression because (1) node arrays are large (M up to ~204), (2) arrays in
//! different nodes have different densities so an *adaptive* scheme wins, and
//! (3) only requested nodes need decompression at query time.
//!
//! This crate provides:
//!
//! * [`BitArray`] — a fixed-length bit vector with the boolean operations the
//!   signature union/intersection operators need.
//! * [`Codec`] and its implementations [`LiteralCodec`], [`RleCodec`],
//!   [`WahCodec`] and [`AdaptiveCodec`] — the per-node compression schemes.
//!   `AdaptiveCodec` picks the smallest encoding per array, which is exactly
//!   the paper's argument (2).
//! * [`BloomFilter`] — the lossy alternative sketched in §VII: a Bloom filter
//!   over the SIDs whose signature bits are 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod bloom;
mod codec;
mod varint;

pub use array::BitArray;
pub use bloom::BloomFilter;
pub use codec::{decode, AdaptiveCodec, Codec, CodecKind, LiteralCodec, RleCodec, WahCodec};
pub use varint::{read_varint, write_varint};
