//! Bloom filter: the lossy signature compression sketched in §VII.
//!
//! "We can build a bloom filter on all SID's whose corresponding entries are 1
//! in the signature. During query execution, we can load the compressed
//! signature (i.e., a bloom filter), and test a SID upon that." False
//! positives make boolean pruning *conservative* (a pruned-in node may turn
//! out empty, costing extra R-tree reads) but never drop answers, because a
//! Bloom filter has no false negatives.

use crate::array::BitArray;

/// A Bloom filter over `u64` keys (signature SIDs).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: BitArray,
    k: u32,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` at the given target false
    /// positive rate, using the standard optimal sizing
    /// `m = -n ln p / (ln 2)^2`, `k = (m/n) ln 2`.
    ///
    /// # Panics
    /// Panics if `fp_rate` is not in `(0, 1)`.
    pub fn with_rate(expected_items: usize, fp_rate: f64) -> Self {
        assert!(fp_rate > 0.0 && fp_rate < 1.0, "fp_rate must be in (0,1)");
        let n = expected_items.max(1) as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * fp_rate.ln()) / (ln2 * ln2)).ceil() as usize;
        let k = ((m as f64 / n) * ln2).round().max(1.0) as u32;
        BloomFilter { bits: BitArray::zeros(m.max(8)), k }
    }

    /// Creates a filter with an explicit number of bits and hash functions.
    ///
    /// # Panics
    /// Panics if `m_bits` or `k` is zero.
    pub fn with_params(m_bits: usize, k: u32) -> Self {
        assert!(m_bits > 0 && k > 0, "bloom parameters must be positive");
        BloomFilter { bits: BitArray::zeros(m_bits), k }
    }

    /// Number of bits in the filter.
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Number of hash functions.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = Self::mix(key);
        let m = self.bits.len() as u64;
        for i in 0..self.k {
            let idx = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % m;
            self.bits.set(idx as usize, true);
        }
    }

    /// Tests a key. `false` is definitive; `true` may be a false positive.
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = Self::mix(key);
        let m = self.bits.len() as u64;
        (0..self.k).all(|i| {
            let idx = h1.wrapping_add(u64::from(i).wrapping_mul(h2)) % m;
            self.bits.get(idx as usize)
        })
    }

    /// Fraction of bits set; an estimate of saturation.
    pub fn fill_ratio(&self) -> f64 {
        self.bits.count_ones() as f64 / self.bits.len() as f64
    }

    /// Serialized size in bytes (bit array only; `k` adds one byte).
    pub fn size_bytes(&self) -> usize {
        1 + self.bits.len().div_ceil(8)
    }

    /// Double hashing via two rounds of SplitMix64.
    fn mix(key: u64) -> (u64, u64) {
        (splitmix64(key), splitmix64(key ^ 0x9E37_79B9_7F4A_7C15) | 1)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_rate(1000, 0.01);
        for key in 0..1000u64 {
            bf.insert(key * 7919);
        }
        for key in 0..1000u64 {
            assert!(bf.contains(key * 7919), "inserted key {key} must be found");
        }
    }

    #[test]
    fn false_positive_rate_is_near_target() {
        let mut bf = BloomFilter::with_rate(10_000, 0.01);
        for key in 0..10_000u64 {
            bf.insert(key);
        }
        let fp = (10_000u64..110_000).filter(|&k| bf.contains(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "observed fp rate {rate} too high");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::with_params(1024, 4);
        assert!(!bf.contains(0));
        assert!(!bf.contains(u64::MAX));
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn sizing_grows_with_items_and_shrinks_with_rate() {
        let small = BloomFilter::with_rate(100, 0.01);
        let big = BloomFilter::with_rate(10_000, 0.01);
        assert!(big.len_bits() > small.len_bits());
        let loose = BloomFilter::with_rate(1000, 0.1);
        let tight = BloomFilter::with_rate(1000, 0.001);
        assert!(tight.len_bits() > loose.len_bits());
        assert!(tight.hashes() > loose.hashes());
    }
}
