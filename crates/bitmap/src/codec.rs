//! Per-node bitmap compression codecs.
//!
//! Every encoding is self-describing: one tag byte ([`CodecKind`]), a varint
//! bit length, then the scheme-specific payload. [`AdaptiveCodec`] encodes
//! with every scheme and keeps the smallest — the paper's point that "bit
//! arrays in different nodes may have significantly different characteristics,
//! and one may achieve better compression ratio by adaptively choosing
//! different compression scheme[s]".

use crate::array::BitArray;
use crate::varint::{read_varint, write_varint};

/// Identifies which scheme produced an encoded bit array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKind {
    /// Raw words, no compression.
    Literal,
    /// Alternating run lengths, varint coded (good for clustered bits).
    Rle,
    /// 32-bit word-aligned hybrid (WAH), good for sparse/dense mixtures.
    Wah,
}

impl CodecKind {
    fn tag(self) -> u8 {
        match self {
            CodecKind::Literal => 0,
            CodecKind::Rle => 1,
            CodecKind::Wah => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(CodecKind::Literal),
            1 => Some(CodecKind::Rle),
            2 => Some(CodecKind::Wah),
            _ => None,
        }
    }
}

/// A bitmap compression scheme.
pub trait Codec {
    /// Appends the encoding of `bits` to `out`.
    fn encode_into(&self, bits: &BitArray, out: &mut Vec<u8>);

    /// Encodes into a fresh buffer.
    fn encode(&self, bits: &BitArray) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(bits, &mut out);
        out
    }
}

/// Decodes any encoding produced by the codecs in this module.
///
/// Returns the decoded array and the number of bytes consumed, or `None` on
/// malformed input.
pub fn decode(buf: &[u8]) -> Option<(BitArray, usize)> {
    let mut pos = 0usize;
    let tag = *buf.get(pos)?;
    pos += 1;
    let kind = CodecKind::from_tag(tag)?;
    let len = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
    let bits = match kind {
        CodecKind::Literal => {
            let n_words = len.div_ceil(64);
            let mut words = Vec::with_capacity(n_words);
            for _ in 0..n_words {
                let end = pos.checked_add(8)?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(buf.get(pos..end)?);
                words.push(u64::from_le_bytes(raw));
                pos = end;
            }
            BitArray::from_words(len, words)
        }
        CodecKind::Rle => {
            let mut bits = BitArray::zeros(len);
            let mut i = 0usize;
            let mut value = false;
            while i < len {
                let run = usize::try_from(read_varint(buf, &mut pos)?).ok()?;
                let end = i.checked_add(run)?;
                if end > len {
                    return None;
                }
                if value {
                    for j in i..end {
                        bits.set(j, true);
                    }
                }
                i = end;
                value = !value;
            }
            bits
        }
        CodecKind::Wah => {
            let mut bits = BitArray::zeros(len);
            let mut i = 0usize; // next bit position to fill
            while i < len {
                let end = pos.checked_add(4)?;
                let mut raw = [0u8; 4];
                raw.copy_from_slice(buf.get(pos..end)?);
                let word = u32::from_le_bytes(raw);
                pos = end;
                if word & FILL_FLAG != 0 {
                    let fill_one = word & FILL_VALUE != 0;
                    let n_groups = (word & FILL_COUNT) as usize;
                    let n_bits = n_groups.checked_mul(GROUP_BITS)?;
                    let stop = i.checked_add(n_bits)?.min(len);
                    if fill_one {
                        for j in i..stop {
                            bits.set(j, true);
                        }
                    }
                    i += n_bits;
                } else {
                    for k in 0..GROUP_BITS {
                        let j = i + k;
                        if j >= len {
                            break;
                        }
                        if word >> k & 1 == 1 {
                            bits.set(j, true);
                        }
                    }
                    i += GROUP_BITS;
                }
            }
            bits
        }
    };
    Some((bits, pos))
}

/// Raw encoding: tag, bit length, little-endian words.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiteralCodec;

impl Codec for LiteralCodec {
    fn encode_into(&self, bits: &BitArray, out: &mut Vec<u8>) {
        out.push(CodecKind::Literal.tag());
        write_varint(out, bits.len() as u64);
        for w in bits.words() {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
}

/// Run-length encoding: varint run lengths of alternating values, starting
/// with a (possibly zero-length) run of zeros.
#[derive(Debug, Clone, Copy, Default)]
pub struct RleCodec;

impl Codec for RleCodec {
    fn encode_into(&self, bits: &BitArray, out: &mut Vec<u8>) {
        out.push(CodecKind::Rle.tag());
        write_varint(out, bits.len() as u64);
        let mut value = false;
        let mut run = 0u64;
        for i in 0..bits.len() {
            if bits.get(i) == value {
                run += 1;
            } else {
                write_varint(out, run);
                value = !value;
                run = 1;
            }
        }
        if run > 0 {
            write_varint(out, run);
        }
    }
}

const GROUP_BITS: usize = 31;
const FILL_FLAG: u32 = 1 << 31;
const FILL_VALUE: u32 = 1 << 30;
const FILL_COUNT: u32 = (1 << 30) - 1;

/// 32-bit word-aligned hybrid. Bits are grouped into 31-bit groups; a group
/// that is all zeros or all ones is folded into a *fill word* (flag bit,
/// value bit, 30-bit group count), anything else is stored as a *literal
/// word* (top bit clear, 31 payload bits). The final partial group is stored
/// as a literal.
#[derive(Debug, Clone, Copy, Default)]
pub struct WahCodec;

impl Codec for WahCodec {
    fn encode_into(&self, bits: &BitArray, out: &mut Vec<u8>) {
        out.push(CodecKind::Wah.tag());
        write_varint(out, bits.len() as u64);
        let mut pending_fill: Option<(bool, u32)> = None;
        let mut i = 0usize;
        while i < bits.len() {
            let group_len = GROUP_BITS.min(bits.len() - i);
            let mut word = 0u32;
            for k in 0..group_len {
                if bits.get(i + k) {
                    word |= 1 << k;
                }
            }
            let full = group_len == GROUP_BITS;
            let fill_of = if !full {
                None
            } else if word == 0 {
                Some(false)
            } else if word == (1u32 << GROUP_BITS) - 1 {
                Some(true)
            } else {
                None
            };
            match (fill_of, &mut pending_fill) {
                (Some(v), Some((pv, count))) if *pv == v && *count < FILL_COUNT => {
                    *count += 1;
                }
                (Some(v), pending) => {
                    if let Some((pv, count)) = pending.take() {
                        emit_fill(out, pv, count);
                    }
                    *pending = Some((v, 1));
                }
                (None, pending) => {
                    if let Some((pv, count)) = pending.take() {
                        emit_fill(out, pv, count);
                    }
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
            i += group_len;
        }
        if let Some((pv, count)) = pending_fill {
            emit_fill(out, pv, count);
        }
    }
}

fn emit_fill(out: &mut Vec<u8>, value: bool, count: u32) {
    let word = FILL_FLAG | if value { FILL_VALUE } else { 0 } | (count & FILL_COUNT);
    out.extend_from_slice(&word.to_le_bytes());
}

/// Encodes with every scheme and keeps the smallest output.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveCodec;

impl Codec for AdaptiveCodec {
    fn encode_into(&self, bits: &BitArray, out: &mut Vec<u8>) {
        let lit = LiteralCodec.encode(bits);
        let rle = RleCodec.encode(bits);
        let wah = WahCodec.encode(bits);
        let best = [&lit, &rle, &wah]
            .into_iter()
            .min_by_key(|b| b.len())
            .expect("the candidate list is non-empty");
        out.extend_from_slice(best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &dyn Codec, bits: &BitArray) {
        let enc = codec.encode(bits);
        let (dec, used) = decode(&enc).expect("decodes");
        assert_eq!(used, enc.len(), "whole buffer consumed");
        assert_eq!(&dec, bits);
    }

    fn cases() -> Vec<BitArray> {
        let mut v = vec![
            BitArray::zeros(0),
            BitArray::zeros(1),
            BitArray::from_bits([true]),
            BitArray::from_bits([true, false]),
            BitArray::zeros(31),
            BitArray::zeros(32),
            BitArray::zeros(1000),
        ];
        let mut dense = BitArray::zeros(500);
        for i in 0..500 {
            dense.set(i, true);
        }
        v.push(dense);
        let mut sparse = BitArray::zeros(2048);
        for i in [0usize, 100, 1023, 2047] {
            sparse.set(i, true);
        }
        v.push(sparse);
        let mut alt = BitArray::zeros(97);
        for i in (0..97).step_by(2) {
            alt.set(i, true);
        }
        v.push(alt);
        let mut runs = BitArray::zeros(300);
        for i in 50..200 {
            runs.set(i, true);
        }
        v.push(runs);
        v
    }

    #[test]
    fn literal_roundtrips() {
        for b in cases() {
            roundtrip(&LiteralCodec, &b);
        }
    }

    #[test]
    fn rle_roundtrips() {
        for b in cases() {
            roundtrip(&RleCodec, &b);
        }
    }

    #[test]
    fn wah_roundtrips() {
        for b in cases() {
            roundtrip(&WahCodec, &b);
        }
    }

    #[test]
    fn adaptive_roundtrips_and_never_beats_best() {
        for b in cases() {
            roundtrip(&AdaptiveCodec, &b);
            let a = AdaptiveCodec.encode(&b).len();
            let best = [
                LiteralCodec.encode(&b).len(),
                RleCodec.encode(&b).len(),
                WahCodec.encode(&b).len(),
            ]
            .into_iter()
            .min()
            .unwrap();
            assert_eq!(a, best);
        }
    }

    #[test]
    fn sparse_arrays_compress_well() {
        let mut sparse = BitArray::zeros(4096);
        sparse.set(17, true);
        let lit = LiteralCodec.encode(&sparse).len();
        let ad = AdaptiveCodec.encode(&sparse).len();
        assert!(ad * 10 < lit, "adaptive {ad} should be far smaller than literal {lit}");
    }

    #[test]
    fn wah_long_fill_runs_use_one_word() {
        let zeros = BitArray::zeros(31 * 1000);
        // tag + varint(len) + 1 fill word
        let enc = WahCodec.encode(&zeros);
        assert!(enc.len() <= 1 + 3 + 4, "got {}", enc.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(&[]).is_none());
        assert!(decode(&[9, 1]).is_none()); // unknown tag
        let mut enc = LiteralCodec.encode(&BitArray::from_bits([true; 64]));
        enc.truncate(enc.len() - 1);
        assert!(decode(&enc).is_none());
    }

    #[test]
    fn decode_reports_bytes_consumed_with_trailing_data() {
        let b = BitArray::from_bits([true, false, true]);
        let mut enc = RleCodec.encode(&b);
        let used_expected = enc.len();
        enc.extend_from_slice(&[0xAA, 0xBB]);
        let (dec, used) = decode(&enc).unwrap();
        assert_eq!(dec, b);
        assert_eq!(used, used_expected);
    }
}
