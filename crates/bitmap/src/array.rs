//! Fixed-length bit arrays.

/// A fixed-length array of bits backed by `u64` words.
///
/// This is the per-node building block of a signature: bit `i` of a node's
/// array says whether child `i` of the corresponding R-tree node contains any
/// tuple of the cell the signature summarizes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitArray {
    len: usize,
    words: Vec<u64>,
}

impl BitArray {
    /// Creates an all-zero array of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitArray { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Creates an array from an iterator of bit values; the length is the
    /// number of items yielded.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let mut out = BitArray::zeros(0);
        for (i, b) in bits.into_iter().enumerate() {
            out.len = i + 1;
            if out.words.len() * 64 < out.len {
                out.words.push(0);
            }
            if b {
                out.words[i / 64] |= 1 << (i % 64);
            }
        }
        out
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the array has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        if value {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Number of one-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the positions of the one-bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let tz = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + tz)
            })
        })
    }

    /// In-place bitwise OR (the signature *union* operator on one node).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &BitArray) {
        assert_eq!(self.len, other.len, "bit-or of mismatched lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place bitwise AND (the signature *intersection* operator on one
    /// node, before the recursive empty-child fix-up).
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &BitArray) {
        assert_eq!(self.len, other.len, "bit-and of mismatched lengths");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// Raw little-endian words backing the array (trailing bits beyond `len`
    /// are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds an array from raw words; bits past `len` in the final word
    /// are cleared.
    ///
    /// # Panics
    /// Panics if `words` is shorter than `len` requires.
    pub fn from_words(len: usize, mut words: Vec<u64>) -> Self {
        assert!(words.len() >= len.div_ceil(64), "not enough words for {len} bits");
        words.truncate(len.div_ceil(64));
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
        BitArray { len, words }
    }

    /// Grows the array to `new_len` bits, padding with zeros. No-op if the
    /// array is already at least that long.
    pub fn grow(&mut self, new_len: usize) {
        if new_len <= self.len {
            return;
        }
        self.len = new_len;
        self.words.resize(new_len.div_ceil(64), 0);
    }
}

impl std::fmt::Debug for BitArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitArray[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut b = BitArray::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(b.all_zero());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(63) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_paper_example() {
        // The (A=a1) root array in Fig 2.a is "10": child 1 occupied, child 2 not.
        let b = BitArray::from_bits([true, false]);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0]);
        let c = BitArray::from_bits([false, true, true, false, true]);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn or_and_assign() {
        let mut a = BitArray::from_bits([true, false, true, false]);
        let b = BitArray::from_bits([false, false, true, true]);
        let mut u = a.clone();
        u.or_assign(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3]);
        a.and_assign(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn from_words_masks_trailing_bits() {
        let b = BitArray::from_words(3, vec![0xFF]);
        assert_eq!(b.count_ones(), 3);
        assert_eq!(b.words(), &[0b111]);
    }

    #[test]
    fn grow_preserves_bits() {
        let mut b = BitArray::from_bits([true, true]);
        b.grow(200);
        assert_eq!(b.len(), 200);
        assert_eq!(b.count_ones(), 2);
        assert!(b.get(0) && b.get(1) && !b.get(199));
        b.grow(10); // shrinking is a no-op
        assert_eq!(b.len(), 200);
    }

    #[test]
    fn debug_formatting_shows_bits() {
        let b = BitArray::from_bits([true, false, true]);
        assert_eq!(format!("{b:?}"), "BitArray[101]");
    }

    #[test]
    #[should_panic]
    fn mismatched_or_panics() {
        let mut a = BitArray::zeros(3);
        a.or_assign(&BitArray::zeros(4));
    }
}
