//! Property tests for bit arrays, codecs and the Bloom filter.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use pcube_bitmap::{
    decode, read_varint, write_varint, AdaptiveCodec, BitArray, BloomFilter, Codec, LiteralCodec,
    RleCodec, WahCodec,
};
use proptest::prelude::*;

fn arb_bits() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..600)
}

/// Clustered bit patterns (runs), the shape real signatures have.
fn arb_runs() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec((any::<bool>(), 1usize..60), 0..20).prop_map(|runs| {
        runs.into_iter().flat_map(|(v, n)| std::iter::repeat_n(v, n)).collect()
    })
}

proptest! {
    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        write_varint(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(read_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn all_codecs_roundtrip_random(bits in arb_bits()) {
        let arr = BitArray::from_bits(bits.iter().copied());
        for codec in [&LiteralCodec as &dyn Codec, &RleCodec, &WahCodec, &AdaptiveCodec] {
            let enc = codec.encode(&arr);
            let (dec, used) = decode(&enc).expect("decodes");
            prop_assert_eq!(used, enc.len());
            prop_assert_eq!(&dec, &arr);
        }
    }

    #[test]
    fn all_codecs_roundtrip_runs(bits in arb_runs()) {
        let arr = BitArray::from_bits(bits.iter().copied());
        for codec in [&LiteralCodec as &dyn Codec, &RleCodec, &WahCodec, &AdaptiveCodec] {
            let enc = codec.encode(&arr);
            let (dec, _) = decode(&enc).expect("decodes");
            prop_assert_eq!(&dec, &arr);
        }
    }

    #[test]
    fn adaptive_is_minimal(bits in arb_bits()) {
        let arr = BitArray::from_bits(bits.iter().copied());
        let adaptive = AdaptiveCodec.encode(&arr).len();
        let best = [LiteralCodec.encode(&arr).len(), RleCodec.encode(&arr).len(), WahCodec.encode(&arr).len()]
            .into_iter().min().unwrap();
        prop_assert_eq!(adaptive, best);
    }

    #[test]
    fn or_and_match_boolean_semantics(a in arb_bits(), b in arb_bits()) {
        let n = a.len().min(b.len());
        let x = BitArray::from_bits(a[..n].iter().copied());
        let y = BitArray::from_bits(b[..n].iter().copied());
        let mut or = x.clone();
        or.or_assign(&y);
        let mut and = x.clone();
        and.and_assign(&y);
        for i in 0..n {
            prop_assert_eq!(or.get(i), a[i] || b[i]);
            prop_assert_eq!(and.get(i), a[i] && b[i]);
        }
    }

    #[test]
    fn iter_ones_matches_gets(bits in arb_bits()) {
        let arr = BitArray::from_bits(bits.iter().copied());
        let from_iter: Vec<usize> = arr.iter_ones().collect();
        let from_get: Vec<usize> = (0..bits.len()).filter(|&i| arr.get(i)).collect();
        prop_assert_eq!(from_iter, from_get);
        prop_assert_eq!(arr.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    fn bloom_has_no_false_negatives(keys in prop::collection::hash_set(any::<u64>(), 0..300)) {
        let mut bf = BloomFilter::with_rate(keys.len().max(1), 0.05);
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Must return None or a valid array, never panic.
        let _ = decode(&bytes);
    }
}
