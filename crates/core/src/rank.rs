//! Ranking functions for top-k queries.
//!
//! The paper's requirement (§III): "Given a function f(N1…Nj) and the domain
//! region Ω on its variables, the lower bound of f over Ω can be derived."
//! [`RankingFunction::lower_bound`] is exactly that: a value no greater than
//! `f` anywhere inside an MBR, used to order nodes best-first and to prune.

use pcube_rtree::Mbr;

/// A ranking function over the preference dimensions (smaller is better).
pub trait RankingFunction {
    /// Score of a concrete point.
    fn score(&self, point: &[f64]) -> f64;

    /// A lower bound of the score over the rectangle (must satisfy
    /// `lower_bound(mbr) <= score(p)` for every `p` in `mbr`).
    fn lower_bound(&self, mbr: &Mbr) -> f64;
}

impl<F: RankingFunction + ?Sized> RankingFunction for &F {
    fn score(&self, point: &[f64]) -> f64 {
        (**self).score(point)
    }

    fn lower_bound(&self, mbr: &Mbr) -> f64 {
        (**self).lower_bound(mbr)
    }
}

/// `f = Σ wᵢ·xᵢ` with arbitrary-sign weights (Fig 13 uses random positive
/// coefficients `aX + bY + cZ`). The lower bound picks, per dimension, the
/// corner that minimizes the term.
#[derive(Debug, Clone)]
pub struct LinearFn {
    weights: Vec<f64>,
}

impl LinearFn {
    /// Creates the function `Σ weights[i] · x[i]`.
    ///
    /// # Panics
    /// Panics if any weight is non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(weights.iter().all(|w| w.is_finite()), "weights must be finite");
        LinearFn { weights }
    }
}

impl RankingFunction for LinearFn {
    fn score(&self, point: &[f64]) -> f64 {
        self.weights.iter().zip(point).map(|(w, x)| w * x).sum()
    }

    fn lower_bound(&self, mbr: &Mbr) -> f64 {
        self.weights
            .iter()
            .enumerate()
            .map(|(d, &w)| if w >= 0.0 { w * mbr.min[d] } else { w * mbr.max[d] })
            .sum()
    }
}

/// `f = Σ wᵢ·(xᵢ − tᵢ)²` — Example 1's "(price − 15k)² + α(mileage − 30k)²".
/// The lower bound clamps the target into the rectangle per dimension
/// (distance to the nearest face), the standard MINDIST bound.
#[derive(Debug, Clone)]
pub struct WeightedDistanceFn {
    target: Vec<f64>,
    weights: Vec<f64>,
}

impl WeightedDistanceFn {
    /// Creates `Σ weights[i]·(x[i] − target[i])²`.
    ///
    /// # Panics
    /// Panics on arity mismatch or negative/non-finite weights (negative
    /// quadratic terms have no box lower bound of this form).
    pub fn new(target: Vec<f64>, weights: Vec<f64>) -> Self {
        assert_eq!(target.len(), weights.len(), "target/weight arity mismatch");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative"
        );
        WeightedDistanceFn { target, weights }
    }

    /// Unweighted squared Euclidean distance to `target`.
    pub fn euclidean(target: Vec<f64>) -> Self {
        let w = vec![1.0; target.len()];
        Self::new(target, w)
    }
}

impl RankingFunction for WeightedDistanceFn {
    fn score(&self, point: &[f64]) -> f64 {
        self.target
            .iter()
            .zip(&self.weights)
            .zip(point)
            .map(|((t, w), x)| w * (x - t) * (x - t))
            .sum()
    }

    fn lower_bound(&self, mbr: &Mbr) -> f64 {
        (0..self.target.len())
            .map(|d| {
                let c = self.target[d].clamp(mbr.min[d], mbr.max[d]);
                self.weights[d] * (c - self.target[d]) * (c - self.target[d])
            })
            .sum()
    }
}

/// `f = Σ xᵢ` over a subset of dimensions — the BBS ordering key `d(n)` used
/// for skyline processing (§V-A). Dimensions are indexes into the full
/// preference coordinate vector.
#[derive(Debug, Clone)]
pub struct MinCoordSum {
    dims: Vec<usize>,
}

impl MinCoordSum {
    /// Sum over the given preference dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        MinCoordSum { dims }
    }

    /// Sum over all of the first `n` dimensions.
    pub fn all(n: usize) -> Self {
        Self::new((0..n).collect())
    }
}

impl RankingFunction for MinCoordSum {
    fn score(&self, point: &[f64]) -> f64 {
        self.dims.iter().map(|&d| point[d]).sum()
    }

    fn lower_bound(&self, mbr: &Mbr) -> f64 {
        self.dims.iter().map(|&d| mbr.min[d]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(min: &[f64], max: &[f64]) -> Mbr {
        Mbr { min: min.to_vec(), max: max.to_vec() }
    }

    #[test]
    fn linear_scores_and_bounds() {
        let f = LinearFn::new(vec![2.0, -1.0]);
        assert_eq!(f.score(&[3.0, 4.0]), 2.0);
        let b = mbr(&[0.0, 0.0], &[1.0, 2.0]);
        // min of 2x - y over the box: x=0, y=2 → -2.
        assert_eq!(f.lower_bound(&b), -2.0);
    }

    #[test]
    fn weighted_distance_scores_and_bounds() {
        let f = WeightedDistanceFn::new(vec![0.5, 0.5], vec![1.0, 2.0]);
        assert_eq!(f.score(&[0.5, 0.5]), 0.0);
        assert!((f.score(&[1.5, 0.5]) - 1.0).abs() < 1e-12);
        // Target inside the box → bound 0.
        assert_eq!(f.lower_bound(&mbr(&[0.0, 0.0], &[1.0, 1.0])), 0.0);
        // Box to the right of target in x only.
        let b = mbr(&[1.5, 0.0], &[2.0, 1.0]);
        assert!((f.lower_bound(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_coord_sum_subset() {
        let f = MinCoordSum::new(vec![0, 2]);
        assert_eq!(f.score(&[1.0, 99.0, 2.0]), 3.0);
        let b = mbr(&[0.1, 0.0, 0.2], &[1.0, 1.0, 1.0]);
        assert!((f.lower_bound(&b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_never_exceeds_any_contained_point() {
        // Grid-check the bound property for all three functions.
        let b = mbr(&[0.2, 0.4], &[0.8, 0.9]);
        let fns: Vec<Box<dyn RankingFunction>> = vec![
            Box::new(LinearFn::new(vec![1.3, -0.7])),
            Box::new(WeightedDistanceFn::new(vec![0.5, 0.1], vec![2.0, 3.0])),
            Box::new(MinCoordSum::all(2)),
        ];
        for f in &fns {
            let lb = f.lower_bound(&b);
            for i in 0..=10 {
                for j in 0..=10 {
                    let p = [
                        b.min[0] + (b.max[0] - b.min[0]) * i as f64 / 10.0,
                        b.min[1] + (b.max[1] - b.min[1]) * j as f64 / 10.0,
                    ];
                    assert!(
                        f.score(&p) >= lb - 1e-12,
                        "bound {lb} exceeds score {} at {p:?}",
                        f.score(&p)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn negative_distance_weight_rejected() {
        let _ = WeightedDistanceFn::new(vec![0.0], vec![-1.0]);
    }
}
