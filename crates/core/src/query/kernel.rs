//! The generic Algorithm 1 execution kernel (§V).
//!
//! Every preference engine in this crate — serial and parallel; top-k,
//! skyline, dynamic skyline and convex hull — is the same loop: pop the
//! best candidate from the [`CandidateHeap`], apply *preference* pruning,
//! apply *boolean* pruning, then either accept a tuple (after lossy-probe
//! verification against the base table) or expand an R-tree node and
//! classify its children the same way. [`run_kernel`] implements that loop
//! exactly once; the engines differ only in the two trait objects they pass
//! in:
//!
//! * a [`BooleanPruner`] — the signature probe, a Bloom probe, or
//!   [`NoPruner`] (Algorithm 1 with boolean pruning switched off), and
//! * a [`PreferenceLogic`] — scoring, preference pruning, halting, and
//!   result accumulation: top-k bound-and-cut ([`TopKLogic`]), the skyline
//!   dominance window with an optional coordinate transform for dynamic
//!   skylines ([`SkylineLogic`]), or convex-hull geometry ([`HullLogic`]).
//!
//! The kernel preserves the decision sequence of the original per-engine
//! loops — pop order, prune order (preference before boolean, Algorithm 1
//! lines 10–19), the `seq = 0` convention for children saved to
//! `b_list`/`d_list`, and the frontier drain on early termination — so
//! results are bit-identical to the pre-kernel implementations. The
//! parallel workers are the very same kernel instantiated with shared
//! pruning state ([`SharedBound`], [`SharedWindow`]) injected through the
//! logic, which is why serial and parallel answers match bit-for-bit at
//! any worker count.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use pcube_cube::Selection;
use pcube_rtree::{DecodedEntry, Mbr, Path};

use crate::pcube::PCubeDb;
use crate::query::budget::{Governor, StopReason};
use crate::query::class::PriorityGraph;
use crate::query::hull::{monotone_chain, strictly_inside_hull};
use crate::query::{dominates, Candidate, CandidateHeap, HeapEntry, ResultEntry};
use crate::rank::{MinCoordSum, RankingFunction};
use crate::store::BooleanProbe;

/// Boolean pruning as Algorithm 1 sees it: a yes/no membership test per
/// candidate path, plus enough metadata to drive lossy-probe verification
/// and the `SSig` statistics.
pub trait BooleanPruner {
    /// `true` if the subtree/tuple at `path` may contain qualifying tuples.
    fn contains(&mut self, path: &Path) -> bool;
    /// `true` if a positive answer may be wrong (Bloom probes, degraded
    /// cursors) — accepted tuples then require base-table verification.
    fn is_lossy(&self) -> bool;
    /// Partial signatures loaded so far (the `SSig` series of Fig 9).
    fn partials_loaded(&self) -> u64;
}

impl BooleanPruner for BooleanProbe<'_> {
    fn contains(&mut self, path: &Path) -> bool {
        BooleanProbe::contains(self, path)
    }
    fn is_lossy(&self) -> bool {
        BooleanProbe::is_lossy(self)
    }
    fn partials_loaded(&self) -> u64 {
        BooleanProbe::partials_loaded(self)
    }
}

/// A pruner that admits every candidate — Algorithm 1 with boolean pruning
/// switched off (the preference-only traversal of the domination-first
/// baseline family).
pub struct NoPruner;

impl BooleanPruner for NoPruner {
    fn contains(&mut self, _path: &Path) -> bool {
        true
    }
    fn is_lossy(&self) -> bool {
        false
    }
    fn partials_loaded(&self) -> u64 {
        0
    }
}

/// A pruner that admits every candidate but reports itself lossy, so the
/// kernel verifies each accepted tuple against the base table — the
/// minimal-probing discipline of the domination-first baseline family,
/// expressed as an Algorithm 1 instantiation. Used by the generic
/// [`QueryClass`](crate::query::class::QueryClass) planner dispatch as its
/// domination-first engine.
pub struct VerifyAllPruner;

impl BooleanPruner for VerifyAllPruner {
    fn contains(&mut self, _path: &Path) -> bool {
        true
    }
    fn is_lossy(&self) -> bool {
        true
    }
    fn partials_loaded(&self) -> u64 {
        0
    }
}

/// What the [`PreferenceLogic`] decided about a popped candidate, *before*
/// boolean pruning runs.
pub enum PopVerdict {
    /// Process the candidate: probe it, then accept (tuple) or expand
    /// (node).
    Continue,
    /// Preference-pruned (dominated / inside the hull): route the entry to
    /// the `d_list` and move on.
    Prune,
    /// Terminate the search; the entry and the drained frontier go to the
    /// `d_list` (the top-k early exit of §V-B).
    Halt,
}

/// The preference side of Algorithm 1: candidate scoring, preference
/// pruning, halting, and result accumulation. One implementation per query
/// class; the same implementation serves the serial engine and each
/// parallel worker (with shared pruning state injected at construction).
pub trait PreferenceLogic {
    /// Preference decision for a popped entry (Algorithm 1 lines 14–16 for
    /// skylines, the k-th-result cut of §V-B for top-k).
    fn on_pop(&mut self, entry: &HeapEntry) -> PopVerdict;
    /// Ordering key of a tuple (`f(t)` for top-k, `d(t)` for skylines).
    fn score_tuple(&self, coords: &[f64]) -> f64;
    /// Ordering key (lower bound) of a node's MBR.
    fn score_node(&self, mbr: &Mbr, path: &Path) -> f64;
    /// Preference check before a freshly scored child is inserted
    /// (Algorithm 1 lines 10–12); `true` prunes it to the `d_list`.
    fn prune_child(&self, score: f64, cand: &Candidate) -> bool;
    /// A verified qualifying tuple joins the result.
    fn accept(&mut self, score: f64, tid: u64, path: Path, coords: Vec<f64>);
}

/// The `b_list`/`d_list` pair Algorithm 1 maintains for incremental
/// drill-down and roll-up (§V-C). Serial engines pass one in (possibly
/// pre-seeded by a previous query's state); parallel workers and the
/// stateless engines pass `None` and pruned entries are dropped.
#[derive(Default)]
pub struct SavedLists {
    /// Entries pruned by boolean predicates (kept for roll-up).
    pub b_list: Vec<HeapEntry>,
    /// Entries pruned by preference (kept for drill-down), including the
    /// drained frontier after an early halt.
    pub d_list: Vec<HeapEntry>,
}

/// What one [`run_kernel`] call did: work counters plus, for governed
/// runs, whether (and why) the governor cut the search short.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelRun {
    /// R-tree nodes expanded.
    pub nodes_expanded: u64,
    /// Heap entries popped (including the pop on which a governor tripped).
    pub pops: u64,
    /// `Some(reason)` when the governor stopped the loop before the heap
    /// emptied or the logic halted; `None` for a complete run.
    pub stop: Option<StopReason>,
    /// Heap entries abandoned on a governed stop (the popped entry plus
    /// the drained frontier); 0 for a complete run.
    pub frontier: u64,
    /// Seconds past the deadline when a deadline trip was observed.
    pub overshoot_seconds: f64,
    /// Longest observed gap between two governance checks.
    pub max_pop_seconds: f64,
    /// Wall time split by pipeline stage (page reads vs preference work);
    /// the engines fill in the pin and merge stages they own.
    pub stages: crate::query::StageTimes,
}

/// Runs Algorithm 1 over an already-seeded candidate heap until the heap is
/// empty, the logic halts, or the governor (if any) trips. Returns the work
/// counters; every other statistic (peak heap, partials, I/O, wall clock)
/// is read by the caller from the heap/probe/ledger it owns.
///
/// The top of the pop loop is the cancellation point: the governor is
/// consulted once per pop, before any preference or boolean work, so a
/// deadline can overshoot by at most one pop's worth of work. On a trip the
/// popped entry and the drained frontier are routed to the `d_list`
/// exactly like a logic-initiated halt — a later drill-down can resume the
/// abandoned search.
pub fn run_kernel(
    db: &PCubeDb,
    selection: &Selection,
    probe: &mut dyn BooleanPruner,
    heap: &mut CandidateHeap,
    logic: &mut dyn PreferenceLogic,
    mut lists: Option<&mut SavedLists>,
    mut gov: Option<&mut Governor>,
) -> KernelRun {
    let mut run = KernelRun::default();
    while let Some(entry) = heap.pop() {
        run.pops += 1;
        if let Some(g) = gov.as_deref_mut() {
            if let Some(reason) = g.check(heap.len()) {
                run.stop = Some(reason);
                run.frontier = 1 + heap.len() as u64;
                if let Some(lists) = lists.as_deref_mut() {
                    lists.d_list.push(entry);
                    lists.d_list.extend(heap.drain());
                }
                break;
            }
        }
        // Stage attribution: preference work (on_pop, scoring, pruning)
        // counts as `score`; anything that can touch a page — boolean
        // probes, node reads, verify fetches — counts as `page_read`. The
        // clock is read once per transition, so instrumentation costs two
        // `Instant::now` calls per pop plus one per probed child.
        let t_pop = Instant::now();
        let verdict = logic.on_pop(&entry);
        let t_probed = Instant::now();
        run.stages.score_seconds += (t_probed - t_pop).as_secs_f64();
        match verdict {
            PopVerdict::Halt => {
                if let Some(lists) = lists.as_deref_mut() {
                    lists.d_list.push(entry);
                    lists.d_list.extend(heap.drain());
                }
                break;
            }
            PopVerdict::Prune => {
                if let Some(lists) = lists.as_deref_mut() {
                    lists.d_list.push(entry);
                }
                continue;
            }
            PopVerdict::Continue => {}
        }
        let keep = probe.contains(entry.cand.path());
        run.stages.page_read_seconds += t_probed.elapsed().as_secs_f64();
        if !keep {
            if let Some(lists) = lists.as_deref_mut() {
                lists.b_list.push(entry);
            }
            continue;
        }
        let (e_score, e_seq) = (entry.score, entry.seq);
        match entry.cand {
            Candidate::Tuple { tid, path, coords } => {
                // Lossy probes (Bloom, §VII, or a degraded cursor) may pass
                // non-qualifying tuples; verify against the base table (one
                // counted random access, as in minimal probing) before the
                // tuple may join the result and prune others.
                if probe.is_lossy() && !selection.is_empty() {
                    let t_fetch = Instant::now();
                    let codes = db.relation().fetch(tid);
                    run.stages.page_read_seconds += t_fetch.elapsed().as_secs_f64();
                    if !selection.iter().all(|p| codes[p.dim] == p.value) {
                        if let Some(lists) = lists.as_deref_mut() {
                            lists.b_list.push(HeapEntry {
                                score: e_score,
                                seq: e_seq,
                                cand: Candidate::Tuple { tid, path, coords },
                            });
                        }
                        continue;
                    }
                }
                logic.accept(e_score, tid, path, coords);
            }
            Candidate::Node { pid, path, .. } => {
                let t_read = Instant::now();
                let node = db.rtree().read_node(pid);
                let mut t_mark = Instant::now();
                run.stages.page_read_seconds += (t_mark - t_read).as_secs_f64();
                run.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    let (score, cand) = match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let s = logic.score_tuple(&coords);
                            (s, Candidate::Tuple { tid, path: child_path, coords })
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let s = logic.score_node(&mbr, &child_path);
                            (s, Candidate::Node { pid: child, path: child_path, mbr })
                        }
                    };
                    if logic.prune_child(score, &cand) {
                        if let Some(lists) = lists.as_deref_mut() {
                            lists.d_list.push(HeapEntry { score, seq: 0, cand });
                        }
                        continue;
                    }
                    let t_child_probe = Instant::now();
                    run.stages.score_seconds += (t_child_probe - t_mark).as_secs_f64();
                    let keep = probe.contains(cand.path());
                    t_mark = Instant::now();
                    run.stages.page_read_seconds += (t_mark - t_child_probe).as_secs_f64();
                    if !keep {
                        if let Some(lists) = lists.as_deref_mut() {
                            lists.b_list.push(HeapEntry { score, seq: 0, cand });
                        }
                        continue;
                    }
                    heap.push(score, cand);
                }
                run.stages.score_seconds += t_mark.elapsed().as_secs_f64();
            }
        }
    }
    if let Some(g) = gov {
        run.overshoot_seconds = g.overshoot_seconds();
        run.max_pop_seconds = g.max_pop_seconds();
    }
    run
}

// ---------------------------------------------------------------------------
// Shared pruning state (used by the parallel workers' logic instances)
// ---------------------------------------------------------------------------

/// Monotone f64 → u64 mapping: preserves `<` across the full range
/// (including negatives), so an atomic `fetch_min` on the mapped bits is an
/// atomic min on the floats.
#[inline]
pub(crate) fn f64_to_ordered(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

#[inline]
pub(crate) fn ordered_to_f64(k: u64) -> f64 {
    if k >> 63 == 1 {
        f64::from_bits(k & !(1 << 63))
    } else {
        f64::from_bits(!k)
    }
}

/// The shared top-k pruning bound: an upper bound on the global k-th best
/// score, stored as order-preserving f64 bits so workers update it with a
/// lock-free `fetch_min`. The bound only ever decreases and stays ≥ the
/// true k-th score (each worker publishes its *local* k-th best, and any
/// local k-th ≥ the global k-th), so pruning `score > bound` is sound;
/// ties at the bound are kept and resolved by the deterministic merge.
///
/// `pub` so the interleaving model checks in `tests/interleave_model.rs`
/// can drive it step by step.
pub struct SharedBound(AtomicU64);

impl Default for SharedBound {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl SharedBound {
    /// A bound that prunes nothing yet (`+∞`).
    pub fn unbounded() -> Self {
        SharedBound(AtomicU64::new(f64_to_ordered(f64::INFINITY)))
    }

    /// The current bound. Monotone non-increasing over the life of a query.
    #[inline]
    pub fn get(&self) -> f64 {
        ordered_to_f64(self.0.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `candidate` if it improves it — an atomic
    /// `fetch_min` on the order-preserving bits, so concurrent updates can
    /// never lose the smallest value.
    #[inline]
    pub fn lower_to(&self, candidate: f64) {
        self.0.fetch_min(f64_to_ordered(candidate), Ordering::Relaxed);
    }
}

/// Number of spine segments in a [`SharedWindow`]; segment `k` holds
/// `WINDOW_SEG0 << k` slots, so 32 segments cover ~2^37 points.
const WINDOW_SEGMENTS: usize = 32;
/// Capacity of the first spine segment.
const WINDOW_SEG0: usize = 32;
/// One lazily-allocated spine segment: a fixed run of once-writable slots.
type WindowSegment = Box<[OnceLock<Vec<f64>>]>;

/// The shared skyline window: points accepted so far by *any* worker, in
/// domination space. Pruning with any entry is sound even if the entry is
/// later found dominated itself (domination is transitive and every entry
/// is a qualifying data point), so workers may read arbitrary consistent
/// snapshots.
///
/// Lock-free: a grow-only list over a segmented spine. [`Self::reserve`]
/// claims a slot with one `fetch_add`; [`Self::publish`] fills it through a
/// [`OnceLock`] (the release store other readers synchronize with).
/// Segments never move once allocated, so readers hold no lock and copy no
/// tail: [`Self::refresh`] walks slots from its last high-water mark and
/// stops at the first slot not yet published, which keeps the visible
/// prefix gap-free (a reader never sees point `i+1` without point `i`).
/// The old implementation was a `Mutex<Vec<…>>` — the one lock left on the
/// parallel kernel's pop path.
///
/// `pub` (with the reserve/publish steps exposed) so the interleaving model
/// checks in `tests/interleave_model.rs` can enumerate schedules around the
/// two linearization points.
pub struct SharedWindow {
    /// Spine of lazily-allocated slot segments; segment `k` holds
    /// `WINDOW_SEG0 << k` slots starting at flat index
    /// `WINDOW_SEG0·(2^k − 1)`.
    segments: [OnceLock<WindowSegment>; WINDOW_SEGMENTS],
    /// Next flat slot index to hand out.
    next: AtomicUsize,
}

impl Default for SharedWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedWindow {
    /// An empty window.
    pub fn new() -> Self {
        SharedWindow { segments: [const { OnceLock::new() }; WINDOW_SEGMENTS], next: AtomicUsize::new(0) }
    }

    /// Flat slot index → `(segment, offset)`.
    #[inline]
    fn locate(index: usize) -> (usize, usize) {
        let n = index / WINDOW_SEG0 + 1;
        let seg = (usize::BITS - 1 - n.leading_zeros()) as usize;
        (seg, index - WINDOW_SEG0 * ((1 << seg) - 1))
    }

    /// The slot at flat `index`, allocating its segment on first touch.
    fn slot(&self, index: usize) -> &OnceLock<Vec<f64>> {
        let (seg, off) = Self::locate(index);
        assert!(seg < WINDOW_SEGMENTS, "shared window exhausted");
        let segment = self.segments[seg].get_or_init(|| {
            (0..WINDOW_SEG0 << seg).map(|_| OnceLock::new()).collect()
        });
        &segment[off]
    }

    /// The slot at flat `index` if its segment exists, without allocating.
    fn peek(&self, index: usize) -> Option<&OnceLock<Vec<f64>>> {
        let (seg, off) = Self::locate(index);
        self.segments.get(seg)?.get().map(|s| &s[off])
    }

    /// Step 1 of a push: claims a slot index. Exposed (doc-hidden) for the
    /// interleaving model checks; engines use [`Self::push`].
    #[doc(hidden)]
    pub fn reserve(&self) -> usize {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Step 2 of a push: publishes `coords` into a reserved slot. The
    /// `OnceLock` set is the release store readers synchronize with; a slot
    /// is never written twice.
    ///
    /// # Panics
    /// Panics if `index` was never reserved-and-unpublished (double
    /// publish).
    #[doc(hidden)]
    pub fn publish(&self, index: usize, coords: Vec<f64>) {
        self.slot(index)
            .set(coords)
            .unwrap_or_else(|_| panic!("window slot {index} published twice"));
    }

    /// Appends a point: reserve a slot, publish into it. Lock-free on both
    /// steps.
    pub fn push(&self, coords: Vec<f64>) {
        let index = self.reserve();
        self.publish(index, coords);
    }

    /// Appends entries `[from..]` to `into`, stopping at the first slot not
    /// yet published; returns the new high-water mark, making each periodic
    /// refresh an incremental copy rather than a full clone. A reserved but
    /// unpublished slot pauses the mark (never skips), so the mark is
    /// monotone and no point is lost or duplicated across refreshes.
    pub fn refresh(&self, from: usize, into: &mut Vec<Vec<f64>>) -> usize {
        let mut mark = from;
        while let Some(point) = self.peek(mark).and_then(OnceLock::get) {
            into.push(point.clone());
            mark += 1;
        }
        mark
    }
}

/// Heap pops between shared-window refreshes. Purely a performance knob:
/// staleness only costs extra traversal, never correctness (the merge
/// cross-filters every local result against every other).
pub(crate) const WINDOW_REFRESH_INTERVAL: u64 = 32;

// ---------------------------------------------------------------------------
// Top-k logic (§V-B): bound-and-cut
// ---------------------------------------------------------------------------

/// Top-k accumulation. Serial mode halts once `k` results exist (the
/// frontier is then saved as `d_list` by the kernel); shared mode keeps a
/// local k-best and halts once the smallest outstanding lower bound exceeds
/// the shared global bound.
pub struct TopKLogic<'a> {
    k: usize,
    f: &'a dyn RankingFunction,
    bound: Option<&'a SharedBound>,
    result: Vec<ResultEntry>,
}

impl<'a> TopKLogic<'a> {
    /// The serial engine's logic: exhaustive until `k` results.
    pub(crate) fn serial(k: usize, f: &'a dyn RankingFunction) -> Self {
        TopKLogic { k, f, bound: None, result: Vec::new() }
    }

    /// A parallel worker's logic: prune and halt against the shared bound.
    pub(crate) fn shared(k: usize, f: &'a dyn RankingFunction, bound: &'a SharedBound) -> Self {
        TopKLogic { k, f, bound: Some(bound), result: Vec::with_capacity(k + 1) }
    }

    pub(crate) fn into_result(self) -> Vec<ResultEntry> {
        self.result
    }
}

impl PreferenceLogic for TopKLogic<'_> {
    fn on_pop(&mut self, entry: &HeapEntry) -> PopVerdict {
        match self.bound {
            // Serial: everything still queued has a lower bound no better
            // than the k-th result — stop and save the frontier.
            None if self.result.len() >= self.k => PopVerdict::Halt,
            // Shared: the heap pops ascending scores, so once the smallest
            // outstanding lower bound exceeds the shared threshold nothing
            // left can enter the global top-k. Strictly greater — ties at
            // the bound are kept for the deterministic merge.
            Some(b) if entry.score > b.get() => PopVerdict::Halt,
            _ => PopVerdict::Continue,
        }
    }

    fn score_tuple(&self, coords: &[f64]) -> f64 {
        self.f.score(coords)
    }

    fn score_node(&self, mbr: &Mbr, _path: &Path) -> f64 {
        self.f.lower_bound(mbr)
    }

    fn prune_child(&self, score: f64, _cand: &Candidate) -> bool {
        self.bound.is_some_and(|b| score > b.get())
    }

    fn accept(&mut self, score: f64, tid: u64, path: Path, coords: Vec<f64>) {
        match self.bound {
            None => self.result.push(ResultEntry { tid, coords, path, score }),
            Some(b) => {
                let at = self
                    .result
                    .binary_search_by(|r| r.score.total_cmp(&score).then(r.tid.cmp(&tid)))
                    .unwrap_or_else(|i| i);
                if at < self.k {
                    self.result.insert(at, ResultEntry { tid, coords, path, score });
                    self.result.truncate(self.k);
                    if self.result.len() == self.k {
                        b.lower_to(self.result[self.k - 1].score);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Skyline logic (§V-A, §VII dynamic): dominance window
// ---------------------------------------------------------------------------

/// A coordinate transform into domination space at full dimensionality
/// (`x ↦ |x − q|` for dynamic skylines); `None` means identity (static).
pub(crate) type TransformFn<'a> = &'a (dyn Fn(&[f64]) -> Vec<f64> + Sync);
/// The attainable per-dimension lower corner of an MBR in domination space;
/// `None` means `mbr.min` (static).
pub(crate) type CornerFn<'a> = &'a (dyn Fn(&Mbr) -> Vec<f64> + Sync);

/// (Dynamic) skyline accumulation: BBS dominance pruning against the
/// accepted result, plus — in parallel workers — a periodically refreshed
/// mirror of the shared window.
pub struct SkylineLogic<'a> {
    f: MinCoordSum,
    pref_dims: &'a [usize],
    transform: Option<TransformFn<'a>>,
    corner: Option<CornerFn<'a>>,
    window: Option<&'a SharedWindow>,
    result: Vec<ResultEntry>,
    /// Domination-space coordinates, aligned with `result`.
    dom: Vec<Vec<f64>>,
    /// Local mirror of the shared window (other workers' accepted points).
    seen: Vec<Vec<f64>>,
    seen_mark: usize,
    pops: u64,
    /// Domination point computed by `on_pop`, reused by the following
    /// `accept` (bitwise the same value the serial engines recompute).
    pending_dom: Vec<f64>,
}

impl<'a> SkylineLogic<'a> {
    pub(crate) fn new(
        pref_dims: &'a [usize],
        transform: Option<TransformFn<'a>>,
        corner: Option<CornerFn<'a>>,
        window: Option<&'a SharedWindow>,
    ) -> Self {
        SkylineLogic {
            f: MinCoordSum::new(pref_dims.to_vec()),
            pref_dims,
            transform,
            corner,
            window,
            result: Vec::new(),
            dom: Vec::new(),
            seen: Vec::new(),
            seen_mark: 0,
            pops: 0,
            pending_dom: Vec::new(),
        }
    }

    fn dom_point(&self, cand: &Candidate) -> Vec<f64> {
        match cand {
            Candidate::Tuple { coords, .. } => match self.transform {
                Some(t) => t(coords),
                None => coords.clone(),
            },
            Candidate::Node { mbr, .. } => match self.corner {
                Some(c) => {
                    if mbr.min.first().is_some_and(|v| v.is_infinite()) {
                        // The seeded root: its corner transform may index a
                        // short query point, and it is never dominated.
                        vec![0.0; mbr.dims()]
                    } else {
                        c(mbr)
                    }
                }
                None => mbr.min.clone(),
            },
        }
    }

    /// Domination pruning: a candidate is pruned if some accepted point
    /// dominates its domination-space point — a tuple's transform, or a
    /// node's attainable lower corner (then the point dominates everything
    /// inside, the BBS rule).
    fn dominated(&self, p: &[f64]) -> bool {
        self.dom.iter().any(|r| dominates(r, p, self.pref_dims))
            || self.seen.iter().any(|r| dominates(r, p, self.pref_dims))
    }

    pub(crate) fn into_result(self) -> Vec<ResultEntry> {
        self.result
    }

    /// `(score, tid, domination coords, original coords)` — the parallel
    /// merge's working representation.
    pub(crate) fn into_points(self) -> Vec<(f64, u64, Vec<f64>, Vec<f64>)> {
        self.result
            .into_iter()
            .zip(self.dom)
            .map(|(r, dom)| (r.score, r.tid, dom, r.coords))
            .collect()
    }
}

impl PreferenceLogic for SkylineLogic<'_> {
    fn on_pop(&mut self, entry: &HeapEntry) -> PopVerdict {
        self.pops += 1;
        if let Some(w) = self.window {
            if self.pops.is_multiple_of(WINDOW_REFRESH_INTERVAL) {
                self.seen_mark = w.refresh(self.seen_mark, &mut self.seen);
            }
        }
        let dom = self.dom_point(&entry.cand);
        if self.dominated(&dom) {
            return PopVerdict::Prune;
        }
        self.pending_dom = dom;
        PopVerdict::Continue
    }

    fn score_tuple(&self, coords: &[f64]) -> f64 {
        match self.transform {
            Some(t) => self.f.score(&t(coords)),
            None => self.f.score(coords),
        }
    }

    fn score_node(&self, mbr: &Mbr, _path: &Path) -> f64 {
        match self.corner {
            Some(c) => self.f.score(&c(mbr)),
            None => self.f.lower_bound(mbr),
        }
    }

    fn prune_child(&self, _score: f64, cand: &Candidate) -> bool {
        self.dominated(&self.dom_point(cand))
    }

    fn accept(&mut self, score: f64, tid: u64, path: Path, coords: Vec<f64>) {
        let dom = std::mem::take(&mut self.pending_dom);
        if let Some(w) = self.window {
            w.push(dom.clone());
        }
        self.dom.push(dom);
        self.result.push(ResultEntry { tid, coords, path, score });
    }
}

// ---------------------------------------------------------------------------
// Prioritized skyline logic (Mindolin & Chomicki winnow semantics)
// ---------------------------------------------------------------------------

/// Prioritized-skyline accumulation: BBS-style pruning where dominance is
/// the p-skyline relation `≻_Γ` induced by a priority DAG over dimensions
/// ([`PriorityGraph`]). The sum-of-coordinates heap score is *not* order
/// compatible with `≻_Γ`, so accepts are tentative: members of the true
/// p-skyline are never pruned (pruning only ever removes `≻_Γ`-dominated
/// candidates, and `≻_Γ` is transitive), and the class's merge step winnows
/// the accepted superset down to the exact maximal set.
pub struct PSkylineLogic<'a> {
    f: MinCoordSum,
    graph: &'a PriorityGraph,
    window: Option<&'a SharedWindow>,
    result: Vec<ResultEntry>,
    /// Local mirror of the shared window (other workers' accepted points).
    seen: Vec<Vec<f64>>,
    seen_mark: usize,
    pops: u64,
}

impl<'a> PSkylineLogic<'a> {
    pub(crate) fn new(graph: &'a PriorityGraph, window: Option<&'a SharedWindow>) -> Self {
        PSkylineLogic {
            f: MinCoordSum::new(graph.dims().to_vec()),
            graph,
            window,
            result: Vec::new(),
            seen: Vec::new(),
            seen_mark: 0,
            pops: 0,
        }
    }

    /// A candidate is pruned if some accepted point `≻_Γ`-dominates its
    /// attainable lower corner. Monotonicity makes the node rule sound:
    /// `p ≻_Γ mbr.min` implies `p ≻_Γ t` for every tuple `t` inside the
    /// node, because moving `t` up coordinate-wise only grows `W(p, t)`
    /// and shrinks `W(t, p)`.
    fn dominated(&self, p: &[f64]) -> bool {
        self.result.iter().any(|r| self.graph.dominates(&r.coords, p))
            || self.seen.iter().any(|r| self.graph.dominates(r, p))
    }

    fn corner(cand: &Candidate) -> &[f64] {
        match cand {
            Candidate::Tuple { coords, .. } => coords,
            // The seeded root's `-∞` corner is never dominated (no point is
            // strictly smaller than `-∞` anywhere), so no special guard.
            Candidate::Node { mbr, .. } => &mbr.min,
        }
    }

    /// `(score, tid, domination coords, original coords)` — the merge's
    /// working representation; for p-skylines domination space is the
    /// original space.
    pub(crate) fn into_points(self) -> Vec<(f64, u64, Vec<f64>, Vec<f64>)> {
        self.result
            .into_iter()
            .map(|r| (r.score, r.tid, r.coords.clone(), r.coords))
            .collect()
    }
}

impl PreferenceLogic for PSkylineLogic<'_> {
    fn on_pop(&mut self, entry: &HeapEntry) -> PopVerdict {
        self.pops += 1;
        if let Some(w) = self.window {
            if self.pops.is_multiple_of(WINDOW_REFRESH_INTERVAL) {
                self.seen_mark = w.refresh(self.seen_mark, &mut self.seen);
            }
        }
        if self.dominated(Self::corner(&entry.cand)) {
            return PopVerdict::Prune;
        }
        PopVerdict::Continue
    }

    fn score_tuple(&self, coords: &[f64]) -> f64 {
        self.f.score(coords)
    }

    fn score_node(&self, mbr: &Mbr, _path: &Path) -> f64 {
        self.f.lower_bound(mbr)
    }

    fn prune_child(&self, _score: f64, cand: &Candidate) -> bool {
        self.dominated(Self::corner(cand))
    }

    fn accept(&mut self, score: f64, tid: u64, path: Path, coords: Vec<f64>) {
        if let Some(w) = self.window {
            w.push(coords.clone());
        }
        self.result.push(ResultEntry { tid, coords, path, score });
    }
}

// ---------------------------------------------------------------------------
// Convex hull logic (§VII): geometric pruning
// ---------------------------------------------------------------------------

/// Convex-hull accumulation: collects qualifying points and prunes any
/// candidate strictly inside the running hull (it cannot contribute a
/// vertex of the final hull, because the running hull only ever grows).
/// Scores send tuples first (`-∞`) and nodes deepest-first, so points
/// surface early and keep the inside-test sharp — the heap-driven analogue
/// of the original DFS.
pub struct HullLogic {
    dims: (usize, usize),
    points: Vec<(u64, [f64; 2])>,
    hull: Vec<(u64, [f64; 2])>,
}

impl HullLogic {
    pub(crate) fn new(dims: (usize, usize)) -> Self {
        HullLogic { dims, points: Vec::new(), hull: Vec::new() }
    }

    fn inside(&self, cand: &Candidate) -> bool {
        match cand {
            Candidate::Tuple { coords, .. } => {
                strictly_inside_hull(&self.hull, [coords[self.dims.0], coords[self.dims.1]])
            }
            Candidate::Node { mbr, .. } => {
                let corners = [
                    [mbr.min[self.dims.0], mbr.min[self.dims.1]],
                    [mbr.min[self.dims.0], mbr.max[self.dims.1]],
                    [mbr.max[self.dims.0], mbr.min[self.dims.1]],
                    [mbr.max[self.dims.0], mbr.max[self.dims.1]],
                ];
                corners.iter().all(|&c| strictly_inside_hull(&self.hull, c))
            }
        }
    }

    /// The collected qualifying points; the caller chains them into the
    /// final hull.
    pub(crate) fn into_points(self) -> Vec<(u64, [f64; 2])> {
        self.points
    }
}

impl PreferenceLogic for HullLogic {
    fn on_pop(&mut self, entry: &HeapEntry) -> PopVerdict {
        if self.inside(&entry.cand) {
            PopVerdict::Prune
        } else {
            PopVerdict::Continue
        }
    }

    fn score_tuple(&self, _coords: &[f64]) -> f64 {
        f64::NEG_INFINITY
    }

    fn score_node(&self, _mbr: &Mbr, path: &Path) -> f64 {
        -(path.depth() as f64)
    }

    fn prune_child(&self, _score: f64, cand: &Candidate) -> bool {
        self.inside(cand)
    }

    fn accept(&mut self, _score: f64, tid: u64, _path: Path, coords: Vec<f64>) {
        self.points.push((tid, [coords[self.dims.0], coords[self.dims.1]]));
        // Rebuild the running hull occasionally to keep the inside-test
        // sharp without paying O(n log n) per point.
        if self.points.len().is_power_of_two() {
            self.hull = monotone_chain(&self.points);
        }
    }
}
