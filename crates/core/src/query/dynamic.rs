//! Dynamic skyline queries — the §VII extension ("Algorithm 1 can also be
//! easily extended to support other preference queries, such as dynamic
//! skyline queries [9]").
//!
//! Given a query point `q`, tuple `p` *dynamically dominates* `p'` iff
//! `|p_d − q_d| ≤ |p'_d − q_d|` on every chosen dimension and strictly on at
//! least one: the skyline of the data after the coordinate transform
//! `x ↦ |x − q|`. The same branch-and-bound framework applies because the
//! transform of a box has an attainable per-dimension lower corner
//! (`min_{x∈[lo,hi]} |x − q_d|` is reached independently per dimension), so
//! both the BBS ordering key and the dominance prune carry over.

use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Mbr};

use crate::pcube::PCubeDb;
use crate::query::{dominates, seed_root, Candidate, CandidateHeap, QueryStats};

/// A completed dynamic skyline query.
pub struct DynamicSkylineOutcome {
    /// Dynamic skyline tuples as `(tid, original coordinates)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics.
    pub stats: QueryStats,
}

/// Answers a dynamic skyline query around `q` under a boolean selection,
/// using signature-based boolean pruning exactly as the static variant.
///
/// `pref_dims` selects the dimensions compared; `q` is indexed by the full
/// coordinate space (like the tuples' coordinates).
///
/// # Panics
/// Panics if `pref_dims` is empty or `q` is shorter than the coordinate
/// space.
pub fn dynamic_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
) -> DynamicSkylineOutcome {
    assert!(!pref_dims.is_empty(), "need at least one preference dimension");
    assert!(
        pref_dims.iter().all(|&d| d < q.len()),
        "query point must cover every preference dimension"
    );
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    let mut probe = db.pcube().probe(&selection, false);

    // Transform helpers. `t_point` keeps the full dimensionality so that
    // `dominates(_, _, pref_dims)` indexes it directly.
    let t_point = |coords: &[f64]| -> Vec<f64> {
        coords.iter().enumerate().map(|(d, &x)| (x - q.get(d).copied().unwrap_or(0.0)).abs()).collect()
    };
    let t_corner = |mbr: &Mbr| -> Vec<f64> {
        (0..mbr.dims())
            .map(|d| {
                let qd = q[d];
                if qd < mbr.min[d] {
                    mbr.min[d] - qd
                } else if qd > mbr.max[d] {
                    qd - mbr.max[d]
                } else {
                    0.0
                }
            })
            .collect()
    };
    let key = |t: &[f64]| -> f64 { pref_dims.iter().map(|&d| t[d]).sum() };

    let mut heap = CandidateHeap::new();
    let dims = db.rtree().dims();
    seed_root(db, &mut heap);

    // result holds (tid, original coords, transformed coords).
    let mut result: Vec<(u64, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut stats = QueryStats::default();

    while let Some(entry) = heap.pop() {
        let t_probe: Vec<f64> = match &entry.cand {
            Candidate::Tuple { coords, .. } => t_point(coords),
            Candidate::Node { mbr, .. } => {
                if mbr.min[0].is_infinite() {
                    vec![0.0; dims] // the seeded root: never dominated
                } else {
                    t_corner(mbr)
                }
            }
        };
        if result.iter().any(|(_, _, s)| dominates(s, &t_probe, pref_dims)) {
            continue;
        }
        if !probe.contains(entry.cand.path()) {
            continue;
        }
        match entry.cand {
            Candidate::Tuple { tid, coords, .. } => {
                // A lossy probe (Bloom §VII, or a cursor degraded by a
                // storage failure) may pass non-qualifying tuples; verify
                // against the base table before the tuple can join the
                // result and prune others.
                if probe.is_lossy() && !selection.is_empty() {
                    let codes = db.relation().fetch(tid);
                    if !selection.iter().all(|p| codes[p.dim] == p.value) {
                        continue;
                    }
                }
                let t = t_point(&coords);
                result.push((tid, coords, t));
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let t = t_point(&coords);
                            if result.iter().any(|(_, _, s)| dominates(s, &t, pref_dims)) {
                                continue;
                            }
                            if !probe.contains(&child_path) {
                                continue;
                            }
                            let score = key(&t);
                            heap.push(score, Candidate::Tuple { tid, path: child_path, coords });
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let corner = t_corner(&mbr);
                            if result.iter().any(|(_, _, s)| dominates(s, &corner, pref_dims)) {
                                continue;
                            }
                            if !probe.contains(&child_path) {
                                continue;
                            }
                            let score = key(&corner);
                            heap.push(score, Candidate::Node { pid: child, path: child_path, mbr });
                        }
                    }
                }
            }
        }
    }

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    // Canonical result order: ascending `(transformed key, tid)` — the same
    // key the parallel engine merges by.
    result.sort_by(|a, b| key(&a.2).total_cmp(&key(&b.2)).then(a.0.cmp(&b.0)));
    DynamicSkylineOutcome {
        skyline: result.into_iter().map(|(tid, coords, _)| (tid, coords)).collect(),
        stats,
    }
}
