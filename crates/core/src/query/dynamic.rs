//! Dynamic skyline queries — the §VII extension ("Algorithm 1 can also be
//! easily extended to support other preference queries, such as dynamic
//! skyline queries [9]").
//!
//! Given a query point `q`, tuple `p` *dynamically dominates* `p'` iff
//! `|p_d − q_d| ≤ |p'_d − q_d|` on every chosen dimension and strictly on at
//! least one: the skyline of the data after the coordinate transform
//! `x ↦ |x − q|`. The same branch-and-bound framework applies because the
//! transform of a box has an attainable per-dimension lower corner
//! (`min_{x∈[lo,hi]} |x − q_d|` is reached independently per dimension), so
//! both the BBS ordering key and the dominance prune carry over — the query
//! is the [`kernel`](crate::query::kernel) skyline logic with the transform
//! and corner functions plugged in.

use pcube_cube::{normalize, Selection};
use pcube_rtree::Mbr;

use crate::pcube::PCubeDb;
use crate::query::budget::{CancelToken, QueryBudget};
use crate::query::kernel::{run_kernel, SkylineLogic};
use crate::query::topk::{apply_kernel_outcome, make_governor};
use crate::query::{seed_root, CandidateHeap, QueryStats};

/// A completed dynamic skyline query.
pub struct DynamicSkylineOutcome {
    /// Dynamic skyline tuples as `(tid, original coordinates)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics.
    pub stats: QueryStats,
}

/// Answers a dynamic skyline query around `q` under a boolean selection,
/// using signature-based boolean pruning exactly as the static variant.
///
/// `pref_dims` selects the dimensions compared; `q` is indexed by the full
/// coordinate space (like the tuples' coordinates).
///
/// # Panics
/// Panics if `pref_dims` is empty or `q` is shorter than the coordinate
/// space.
pub fn dynamic_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
) -> DynamicSkylineOutcome {
    dynamic_skyline_query_governed(db, selection, q, pref_dims, &QueryBudget::unlimited(), None)
}

/// [`dynamic_skyline_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]: accepted points are true dynamic-skyline members, so a
/// partial answer is a sound subset.
///
/// # Panics
/// Panics if `pref_dims` is empty or `q` is shorter than the coordinate
/// space.
pub fn dynamic_skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> DynamicSkylineOutcome {
    assert!(!pref_dims.is_empty(), "need at least one preference dimension");
    assert!(
        pref_dims.iter().all(|&d| d < q.len()),
        "query point must cover every preference dimension"
    );
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let selection = normalize(selection);
    let mut probe = db.pcube().probe(&selection, false);

    // Transform helpers. `t_point` keeps the full dimensionality so that
    // `dominates(_, _, pref_dims)` indexes it directly.
    let t_point = |coords: &[f64]| -> Vec<f64> {
        coords.iter().enumerate().map(|(d, &x)| (x - q.get(d).copied().unwrap_or(0.0)).abs()).collect()
    };
    let t_corner = |mbr: &Mbr| -> Vec<f64> {
        (0..mbr.dims())
            .map(|d| {
                let qd = q[d];
                if qd < mbr.min[d] {
                    mbr.min[d] - qd
                } else if qd > mbr.max[d] {
                    qd - mbr.max[d]
                } else {
                    0.0
                }
            })
            .collect()
    };

    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);

    let mut stats = QueryStats::default();
    let mut logic = SkylineLogic::new(pref_dims, Some(&t_point), Some(&t_corner), None);
    let pin_seconds = started.elapsed().as_secs_f64();
    let kernel_run =
        run_kernel(db, &selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    stats.stages = kernel_run.stages;
    stats.stages.pin_seconds += pin_seconds;
    stats.nodes_expanded = kernel_run.nodes_expanded;
    let mut result = logic.into_result();

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    apply_kernel_outcome(&mut stats, &kernel_run, result.len());
    // Canonical result order: ascending `(transformed key, tid)` — the same
    // key the parallel engine merges by.
    let t_merge = std::time::Instant::now();
    result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    DynamicSkylineOutcome {
        skyline: result.into_iter().map(|r| (r.tid, r.coords)).collect(),
        stats,
    }
}
