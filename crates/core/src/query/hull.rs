//! Convex hull queries — the §VII extension ("Algorithm 1 can also be
//! easily extended to support … convex hull queries [21]").
//!
//! Given a boolean selection, returns the convex hull of the qualifying
//! tuples in two chosen preference dimensions. The search walks the R-tree
//! with signature-based boolean pruning plus a geometric prune: a node whose
//! MBR lies strictly inside the convex hull of the points found so far can
//! contribute no hull vertex and is skipped. The traversal runs on the
//! shared [`kernel`](crate::query::kernel) with scores that surface tuples
//! immediately and expand nodes deepest-first, which grows the running hull
//! quickly and makes the inside-test prune effective early. The final hull
//! is traversal-order independent: a vertex of the final hull is never
//! strictly inside any running hull (running hulls only grow toward the
//! final one), so every vertex is collected no matter the visit order.

use pcube_cube::{normalize, Selection};

use crate::pcube::PCubeDb;
use crate::query::budget::{CancelToken, QueryBudget};
use crate::query::kernel::{run_kernel, HullLogic};
use crate::query::topk::{apply_kernel_outcome, make_governor};
use crate::query::{seed_root, CandidateHeap, QueryStats};

/// A completed convex hull query.
pub struct HullOutcome {
    /// Hull vertices as `(tid, [x, y])` in counter-clockwise order starting
    /// from the lowest-then-leftmost point.
    pub hull: Vec<(u64, [f64; 2])>,
    /// Execution metrics.
    pub stats: QueryStats,
}

/// Computes the convex hull of the tuples satisfying `selection`, projected
/// on preference dimensions `dims = (x, y)`.
///
/// # Panics
/// Panics if the two dimensions coincide or exceed the schema.
pub fn convex_hull_query(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
) -> HullOutcome {
    convex_hull_query_governed(db, selection, dims, &QueryBudget::unlimited(), None)
}

/// [`convex_hull_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]. A partial hull is the hull of the points *visited* so
/// far — unlike top-k/skyline partials it carries no membership guarantee
/// about the full answer, only the progress accounting.
///
/// # Panics
/// Panics if the two dimensions coincide or exceed the schema.
pub fn convex_hull_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> HullOutcome {
    let n_pref = db.relation().schema().n_pref();
    assert!(dims.0 < n_pref && dims.1 < n_pref, "hull dimensions out of range");
    assert_ne!(dims.0, dims.1, "hull needs two distinct dimensions");
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let selection = normalize(selection);
    let mut probe = db.pcube().probe(&selection, false);
    let mut stats = QueryStats::default();

    // Collect qualifying points by the signature-pruned kernel search,
    // skipping any subtree whose MBR projection is already strictly inside
    // the running hull (it cannot contain a vertex of the final hull).
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut logic = HullLogic::new(dims);
    let pin_seconds = started.elapsed().as_secs_f64();
    let kernel_run =
        run_kernel(db, &selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    stats.stages = kernel_run.stages;
    stats.stages.pin_seconds += pin_seconds;
    stats.nodes_expanded = kernel_run.nodes_expanded;
    let points = logic.into_points();
    let t_merge = std::time::Instant::now();
    let hull = monotone_chain(&points);
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    apply_kernel_outcome(&mut stats, &kernel_run, points.len());
    HullOutcome { hull, stats }
}

fn cross(o: [f64; 2], a: [f64; 2], b: [f64; 2]) -> f64 {
    (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])
}

/// `true` if `p` lies strictly inside the (counter-clockwise) hull — on the
/// boundary counts as outside so boundary duplicates are still collected.
pub(crate) fn strictly_inside_hull(hull: &[(u64, [f64; 2])], p: [f64; 2]) -> bool {
    if hull.len() < 3 {
        return false;
    }
    hull.iter().zip(hull.iter().cycle().skip(1)).all(|(&(_, a), &(_, b))| cross(a, b, p) > 1e-12)
}

/// Andrew's monotone chain; returns the hull counter-clockwise, collinear
/// boundary points dropped. Stable for fewer than three points.
pub(crate) fn monotone_chain(points: &[(u64, [f64; 2])]) -> Vec<(u64, [f64; 2])> {
    let mut pts: Vec<(u64, [f64; 2])> = points.to_vec();
    pts.sort_by(|a, b| {
        a.1[0].total_cmp(&b.1[0]).then(a.1[1].total_cmp(&b.1[1])).then(a.0.cmp(&b.0))
    });
    pts.dedup_by(|a, b| a.1 == b.1);
    let n = pts.len();
    if n < 3 {
        return pts;
    }
    let chain = |iter: &mut dyn Iterator<Item = &(u64, [f64; 2])>| {
        let mut half: Vec<(u64, [f64; 2])> = Vec::new();
        for &p in iter {
            while half.len() >= 2
                && cross(half[half.len() - 2].1, half[half.len() - 1].1, p.1) <= 1e-12
            {
                half.pop();
            }
            half.push(p);
        }
        half
    };
    let mut lower = chain(&mut pts.iter());
    let mut upper = chain(&mut pts.iter().rev());
    // Drop each chain's final point — it is the first point of the other.
    lower.pop();
    upper.pop();
    lower.extend(upper);
    lower
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(raw: &[(f64, f64)]) -> Vec<(u64, [f64; 2])> {
        raw.iter().enumerate().map(|(i, &(x, y))| (i as u64, [x, y])).collect()
    }

    #[test]
    fn chain_finds_square_hull() {
        let points = pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (0.5, 0.5),
            (0.2, 0.8),
        ]);
        let hull = monotone_chain(&points);
        let ids: Vec<u64> = hull.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "ccw from lowest-leftmost");
    }

    #[test]
    fn chain_handles_degenerate_inputs() {
        assert!(monotone_chain(&[]).is_empty());
        assert_eq!(monotone_chain(&pts(&[(0.3, 0.4)])).len(), 1);
        assert_eq!(monotone_chain(&pts(&[(0.0, 0.0), (1.0, 1.0)])).len(), 2);
        // Collinear points collapse to the two extremes.
        let hull = monotone_chain(&pts(&[(0.0, 0.0), (0.5, 0.5), (1.0, 1.0)]));
        assert_eq!(hull.len(), 2);
        // All-identical points collapse to one.
        let hull = monotone_chain(&pts(&[(0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]));
        assert_eq!(hull.len(), 1);
    }

    #[test]
    fn inside_test_is_strict() {
        let hull = monotone_chain(&pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]));
        assert!(strictly_inside_hull(&hull, [0.5, 0.5]));
        assert!(!strictly_inside_hull(&hull, [0.0, 0.5]), "boundary is not inside");
        assert!(!strictly_inside_hull(&hull, [1.5, 0.5]));
        assert!(!strictly_inside_hull(&[], [0.5, 0.5]));
    }
}
