//! Query processing using the P-Cube (§V): the progressive, signature-guided
//! branch-and-bound framework of Algorithm 1, instantiated for skyline and
//! top-k queries, plus the incremental drill-down/roll-up execution of §V-C.

pub mod budget;
pub mod class;
mod dynamic;
mod hull;
pub mod kernel;
mod parallel;
mod skyline;
mod topk;

pub use budget::{CancelToken, Governor, Progress, QueryBudget, QueryOutcome, StopReason};
pub use class::{
    ClassOutcome, DynamicSkylineClass, HullClass, PSkylineClass, PriorityGraph,
    PriorityGraphError, QueryClass, SkyPoint, SkylineClass, SubspaceSkylineClass, TopKClass,
};
pub use dynamic::{
    dynamic_skyline_query, dynamic_skyline_query_governed, DynamicSkylineOutcome,
};
pub use kernel::{
    run_kernel, BooleanPruner, KernelRun, NoPruner, PopVerdict, PreferenceLogic, SavedLists,
    SharedBound, SharedWindow, VerifyAllPruner,
};
pub use parallel::{
    par_convex_hull_query, par_convex_hull_query_governed, par_dynamic_skyline_query,
    par_dynamic_skyline_query_governed, par_skyline_query, par_skyline_query_governed,
    par_topk_query, par_topk_query_governed, ParDynamicSkylineOutcome, ParHullOutcome,
    ParSkylineOutcome, ParTopKOutcome, ParallelOptions,
};
pub(crate) use parallel::par_run_class;
pub use hull::{convex_hull_query, convex_hull_query_governed, HullOutcome};
pub use skyline::{
    skyline_drill_down, skyline_query, skyline_query_governed, skyline_query_probed,
    skyline_roll_up, SkylineOutcome, SkylineState,
};
pub use topk::{
    topk_drill_down, topk_query, topk_query_governed, topk_query_probed, topk_roll_up,
    TopKOutcome, TopKState,
};

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use pcube_rtree::{Mbr, Path};
use pcube_storage::{IoSnapshot, PageId};

/// Wall-clock seconds of one query split by pipeline stage. Sums across
/// parallel workers, so under concurrency the stage totals may exceed the
/// query's elapsed wall time — they measure *where the work went*, not the
/// critical path. `serve_bench` aggregates these per thread count to show
/// which stage stops scaling first.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimes {
    /// Probe construction and snapshot pinning before the kernel loop runs.
    pub pin_seconds: f64,
    /// Page-touching work: boolean probes, R-tree node reads, base-table
    /// verify fetches — everything that pays counted (and, under
    /// `Pager::set_read_delay`, wall-clock) I/O.
    pub page_read_seconds: f64,
    /// Preference work: scoring, dominance/bound pruning, accumulation.
    pub score_seconds: f64,
    /// Result canonicalization and (for parallel engines) the cross-worker
    /// merge.
    pub merge_seconds: f64,
}

impl StageTimes {
    /// Accumulates `other` into `self` (used to sum worker stages).
    pub fn add(&mut self, other: &StageTimes) {
        self.pin_seconds += other.pin_seconds;
        self.page_read_seconds += other.page_read_seconds;
        self.score_seconds += other.score_seconds;
        self.merge_seconds += other.merge_seconds;
    }

    /// Total seconds across all stages.
    pub fn total_seconds(&self) -> f64 {
        self.pin_seconds + self.page_read_seconds + self.score_seconds + self.merge_seconds
    }
}

/// Per-query execution metrics, matching the measurements in §VI.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// R-tree nodes expanded (each one a counted block retrieval).
    pub nodes_expanded: u64,
    /// Maximum candidate-heap size (Fig 10's memory metric).
    pub peak_heap: usize,
    /// Partial signatures loaded (the `SSig` series of Fig 9).
    pub partials_loaded: u64,
    /// Counted I/O performed by the query (all categories).
    pub io: IoSnapshot,
    /// Wall-clock seconds of CPU work (the in-memory part).
    pub cpu_seconds: f64,
    /// Wall time split by stage (pin / page-read / score / merge); worker
    /// stages are summed for parallel queries.
    pub stages: StageTimes,
    /// The planner's decision and per-engine cost estimates, when the query
    /// was dispatched through [`crate::plan::Planner`] (`None` for direct
    /// engine calls).
    pub plan: Option<crate::plan::PlanDecision>,
    /// Whether the query ran to completion or was cut short by its
    /// [`QueryBudget`] / a [`CancelToken`] (always
    /// [`QueryOutcome::Complete`] for ungoverned queries).
    pub outcome: QueryOutcome,
}

/// One accepted result of a branch-and-bound search — shared by every
/// engine's accumulation logic ([`kernel::PreferenceLogic`] implementors).
#[derive(Debug, Clone)]
pub(crate) struct ResultEntry {
    pub(crate) tid: u64,
    pub(crate) coords: Vec<f64>,
    pub(crate) path: Path,
    pub(crate) score: f64,
}

/// A candidate in the branch-and-bound search: an R-tree node or a tuple.
#[derive(Debug, Clone)]
pub enum Candidate {
    /// An R-tree node (internal or leaf) awaiting expansion.
    Node {
        /// Page of the node.
        pid: PageId,
        /// Path of the node from the root.
        path: Path,
        /// The node's bounding rectangle.
        mbr: Mbr,
    },
    /// A data tuple awaiting result/prune classification.
    Tuple {
        /// Tuple id.
        tid: u64,
        /// Full tuple path (leaf path + slot).
        path: Path,
        /// Preference coordinates.
        coords: Vec<f64>,
    },
}

impl Candidate {
    /// The candidate's path (used for signature probes).
    pub fn path(&self) -> &Path {
        match self {
            Candidate::Node { path, .. } | Candidate::Tuple { path, .. } => path,
        }
    }
}

/// A scored heap entry. Lower scores pop first; ties break by a
/// traversal-independent key so pop order — and therefore result order at
/// score ties — is reproducible and identical between the serial and the
/// parallel engines.
///
/// The tie-break is: **nodes before tuples** (a node whose lower bound
/// equals a tuple's score may still contain an equal-scored tuple with a
/// smaller tid, so it must be expanded first for the canonical choice),
/// then ascending tid (tuples) / page id (nodes), then insertion sequence
/// as a final fallback. Parallel workers merge their local results by the
/// same `(score, tid)` key, which is why ties at the k-th top-k score
/// resolve identically no matter how the search was partitioned.
#[derive(Debug, Clone)]
pub struct HeapEntry {
    /// The ordering key (`d(n)` for skylines, `f(n)` for top-k).
    pub score: f64,
    /// Monotone fallback tie-breaker.
    pub seq: u64,
    /// The node or tuple itself.
    pub cand: Candidate,
}

impl HeapEntry {
    /// The deterministic tie-break key: `(kind, id, seq)` with nodes (kind 0)
    /// ahead of tuples (kind 1) and ids ascending.
    fn tie_key(&self) -> (u8, u64, u64) {
        match &self.cand {
            Candidate::Node { pid, .. } => (0, u64::from(pid.0), self.seq),
            Candidate::Tuple { tid, .. } => (1, *tid, self.seq),
        }
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.tie_key() == other.tie_key()
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the min score (then
        // the min tie key) on top.
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores must not be NaN")
            .then_with(|| other.tie_key().cmp(&self.tie_key()))
    }
}

/// The candidate heap with peak-size tracking (Fig 10).
#[derive(Debug, Default)]
pub struct CandidateHeap {
    heap: BinaryHeap<HeapEntry>,
    peak: usize,
    seq: u64,
}

impl CandidateHeap {
    /// An empty heap.
    pub fn new() -> Self {
        CandidateHeap::default()
    }

    /// Pushes a candidate with the given score.
    pub fn push(&mut self, score: f64, cand: Candidate) {
        self.seq += 1;
        self.heap.push(HeapEntry { score, seq: self.seq, cand });
        self.peak = self.peak.max(self.heap.len());
    }

    /// Re-inserts an existing entry (keeps its original sequence number).
    pub fn push_entry(&mut self, entry: HeapEntry) {
        self.heap.push(entry);
        self.peak = self.peak.max(self.heap.len());
    }

    /// Pops the minimum-score entry.
    pub fn pop(&mut self) -> Option<HeapEntry> {
        self.heap.pop()
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Largest number of entries the heap ever held at once — the memory
    /// metric of Fig 10 (`peak_heap` in [`QueryStats`]). This is a
    /// high-water mark over the whole search, not the current [`len`].
    ///
    /// [`len`]: CandidateHeap::len
    pub fn peak_size(&self) -> usize {
        self.peak
    }

    /// Drains the remaining entries (used to save the frontier as `d_list`
    /// when a top-k query terminates early).
    pub fn drain(&mut self) -> Vec<HeapEntry> {
        std::mem::take(&mut self.heap).into_vec()
    }
}

/// Seeds a candidate heap with the R-tree root: an un-dominatable MBR and
/// the smallest possible score, so it always pops first and is never pruned.
pub(crate) fn seed_root(db: &crate::pcube::PCubeDb, heap: &mut CandidateHeap) {
    let dims = db.rtree().dims();
    let mbr = Mbr { min: vec![f64::NEG_INFINITY; dims], max: vec![f64::INFINITY; dims] };
    heap.push(
        f64::NEG_INFINITY,
        Candidate::Node { pid: db.rtree().root_pid(), path: Path::root(), mbr },
    );
}

/// `true` if `a` dominates `b` on the given dimensions: `a ≤ b` everywhere
/// and `a < b` somewhere (§I's definition, restricted to `dims`).
pub fn dominates(a: &[f64], b: &[f64], dims: &[usize]) -> bool {
    let mut strict = false;
    for &d in dims {
        if a[d] > b[d] {
            return false;
        }
        if a[d] < b[d] {
            strict = true;
        }
    }
    strict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(score_seq: (f64, u64)) -> HeapEntry {
        HeapEntry {
            score: score_seq.0,
            seq: score_seq.1,
            cand: Candidate::Tuple { tid: 0, path: Path::root(), coords: vec![] },
        }
    }

    #[test]
    fn heap_pops_minimum_score_first() {
        let mut h = CandidateHeap::new();
        for s in [0.5, 0.1, 0.9, 0.3] {
            h.push(s, Candidate::Tuple { tid: 0, path: Path::root(), coords: vec![] });
        }
        let order: Vec<f64> = std::iter::from_fn(|| h.pop().map(|e| e.score)).collect();
        assert_eq!(order, vec![0.1, 0.3, 0.5, 0.9]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut h = CandidateHeap::new();
        h.push_entry(tuple((1.0, 2)));
        h.push_entry(tuple((1.0, 1)));
        h.push_entry(tuple((1.0, 3)));
        let seqs: Vec<u64> = std::iter::from_fn(|| h.pop().map(|e| e.seq)).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }

    #[test]
    fn peak_tracks_maximum_occupancy() {
        let mut h = CandidateHeap::new();
        for s in 0..5 {
            h.push(s as f64, Candidate::Tuple { tid: 0, path: Path::root(), coords: vec![] });
        }
        h.pop();
        h.pop();
        assert_eq!(h.len(), 3);
        assert_eq!(h.peak_size(), 5);
    }

    #[test]
    fn dominance_definition() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0], &[0, 1]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0], &[0, 1]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0], &[0, 1]), "equal points do not dominate");
        assert!(!dominates(&[0.0, 3.0], &[1.0, 2.0], &[0, 1]), "incomparable");
        // Subset dimensions change the verdict.
        assert!(dominates(&[0.0, 9.0], &[1.0, 2.0], &[0]));
    }
}
