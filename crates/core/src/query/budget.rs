//! Query-lifecycle governance: budgets, cooperative cancellation and
//! partial-result accounting.
//!
//! The branch-and-bound kernel is a pop loop over a candidate heap, which
//! makes the top of that loop a natural *cancellation point*: between two
//! pops no storage handle is held and every data structure is consistent,
//! so stopping there can always surface whatever has been accepted so far
//! as a best-effort partial result. A [`Governor`] is consulted once per
//! pop and trips on the first exhausted resource:
//!
//! * **wall-clock deadline** — checked against `Instant::now()`; because
//!   the check runs every pop, the overshoot past the deadline is bounded
//!   by the duration of a single pop (measured and reported, see
//!   [`Progress::overshoot_seconds`] / [`Progress::max_pop_seconds`]);
//! * **block-I/O budget** — measured in the same §VI units the planner
//!   estimates with, as a delta on the shared [`IoStats`] ledger since the
//!   query began (under concurrency the delta may include neighbours'
//!   reads, so the budget trips conservatively early, never late);
//! * **candidate-heap cap** — bounds the frontier memory; checked at pop
//!   granularity, so it can overshoot by at most one node's fan-out;
//! * **cancellation** — an external [`CancelToken`], plus a fleet-internal
//!   token that lets one parallel worker's trip drain the whole fleet.
//!
//! Queries that stop early report [`QueryOutcome::Partial`] with a typed
//! [`StopReason`] and internally consistent [`Progress`] counters; queries
//! that run to completion report [`QueryOutcome::Complete`] and are
//! bit-identical to an ungoverned run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pcube_storage::SharedStats;

/// Resource limits for one query. `Default` (and [`QueryBudget::unlimited`])
/// imposes no limits; builders add individual caps.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryBudget {
    deadline: Option<Duration>,
    max_blocks: Option<u64>,
    max_heap: Option<usize>,
}

impl QueryBudget {
    /// A budget with no limits: governed runs behave exactly like
    /// ungoverned ones.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// Caps wall-clock time from the moment the query starts executing.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps block reads (§VI units: R-tree blocks, signature pages,
    /// B+-tree pages, random tuple accesses, heap-scan pages), measured
    /// on the shared I/O ledger from query start.
    pub fn with_block_budget(mut self, max_blocks: u64) -> Self {
        self.max_blocks = Some(max_blocks);
        self
    }

    /// Caps the candidate-heap size (entries, checked per pop).
    pub fn with_heap_cap(mut self, max_heap: usize) -> Self {
        self.max_heap = Some(max_heap);
        self
    }

    /// The wall-clock allowance, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The block-read allowance, if any.
    pub fn max_blocks(&self) -> Option<u64> {
        self.max_blocks
    }

    /// The candidate-heap cap, if any.
    pub fn max_heap(&self) -> Option<usize> {
        self.max_heap
    }

    /// True when no limit is set — governed paths can skip building a
    /// [`Governor`] entirely (absent a cancel token).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_blocks.is_none() && self.max_heap.is_none()
    }
}

/// A shared cancellation flag. Cloning yields another handle to the same
/// flag, so a server thread can keep one handle and hand the other to the
/// query; `cancel()` is observed at the next kernel pop.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any handle has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Lowers the flag so the token can be reused for the next statement
    /// (the SQL session does this after a cancel has been observed).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }
}

/// Why a governed query stopped before exhausting its search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The block-read budget was spent.
    BlockBudgetExceeded,
    /// The candidate heap reached its cap.
    HeapCapExceeded,
    /// A [`CancelToken`] (external or fleet-internal) was raised.
    Cancelled,
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StopReason::DeadlineExceeded => "deadline exceeded",
            StopReason::BlockBudgetExceeded => "block budget exceeded",
            StopReason::HeapCapExceeded => "heap cap exceeded",
            StopReason::Cancelled => "cancelled",
        };
        f.write_str(s)
    }
}

/// How far a query got before it stopped. All counters describe work the
/// query actually performed, so they are internally consistent with the
/// accompanying [`QueryStats`](crate::QueryStats) (the soak harness
/// asserts this).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Progress {
    /// Heap entries popped (across all workers, for parallel queries).
    pub pops: u64,
    /// R-tree nodes expanded.
    pub nodes_expanded: u64,
    /// Result rows accepted before the stop.
    pub results_so_far: usize,
    /// Block reads charged to the query on the shared ledger. Under
    /// concurrent load this delta may include neighbours' reads.
    pub blocks_used: u64,
    /// Heap entries abandoned at the stop (the unexplored frontier,
    /// including the entry popped when the governor tripped).
    pub frontier: u64,
    /// Wall-clock seconds past the deadline when the stop was observed
    /// (0 unless the reason is [`StopReason::DeadlineExceeded`]).
    pub overshoot_seconds: f64,
    /// The longest observed gap between two governance checks — one
    /// kernel pop's worth of work. The cooperative-checking contract is
    /// `overshoot_seconds <= max_pop_seconds` (asserted by the soak
    /// harness).
    pub max_pop_seconds: f64,
}

/// Whether a query ran to completion or stopped early under governance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum QueryOutcome {
    /// The search was exhausted; the result is exact and bit-identical to
    /// an ungoverned run.
    #[default]
    Complete,
    /// The query stopped early; the result is a best-effort prefix/subset
    /// (see DESIGN.md §9 for per-engine partial-result semantics).
    Partial {
        /// The resource that tripped.
        reason: StopReason,
        /// Work performed up to the stop.
        progress: Progress,
    },
}

impl QueryOutcome {
    /// True for [`QueryOutcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, QueryOutcome::Complete)
    }

    /// The stop reason, if the query was cut short.
    pub fn partial_reason(&self) -> Option<StopReason> {
        match self {
            QueryOutcome::Complete => None,
            QueryOutcome::Partial { reason, .. } => Some(*reason),
        }
    }

    /// The progress counters, if the query was cut short.
    pub fn progress(&self) -> Option<&Progress> {
        match self {
            QueryOutcome::Complete => None,
            QueryOutcome::Partial { progress, .. } => Some(progress),
        }
    }
}

/// The per-query enforcement state consulted by the kernel once per pop.
///
/// Built from a [`QueryBudget`] plus optional cancel tokens and a ledger
/// baseline; the check order is cancel → fleet → deadline → blocks →
/// heap, so an explicit cancel always wins the reported reason.
#[derive(Debug)]
pub struct Governor {
    deadline: Option<Instant>,
    max_blocks: Option<u64>,
    max_heap: Option<usize>,
    cancel: Option<CancelToken>,
    fleet: Option<CancelToken>,
    ledger: Option<(SharedStats, u64)>,
    started: Instant,
    last_check: Instant,
    max_pop_seconds: f64,
    overshoot_seconds: f64,
}

impl Governor {
    /// Starts the clock: the deadline (if any) is `budget.deadline()` from
    /// *now*. Attach tokens and a ledger with the `with_*` builders.
    pub fn new(budget: &QueryBudget) -> Self {
        let now = Instant::now();
        Governor {
            deadline: budget.deadline.map(|d| now + d),
            max_blocks: budget.max_blocks,
            max_heap: budget.max_heap,
            cancel: None,
            fleet: None,
            ledger: None,
            started: now,
            last_check: now,
            max_pop_seconds: 0.0,
            overshoot_seconds: 0.0,
        }
    }

    /// Attaches the external cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Attaches the fleet-internal token parallel workers share: when any
    /// worker trips, it raises this token and the rest drain.
    pub fn with_fleet(mut self, fleet: CancelToken) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Attaches the shared I/O ledger and the query's starting read count
    /// (`base`), enabling the block budget: spent = `total_reads − base`.
    pub fn with_ledger(mut self, stats: SharedStats, base: u64) -> Self {
        self.ledger = Some((stats, base));
        self
    }

    /// Overrides the absolute deadline — parallel fleets compute one
    /// instant up front so every worker races the same clock.
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// One governance check, called at the top of the kernel pop loop with
    /// the current heap length. Returns the first exhausted resource, or
    /// `None` to continue. Timing syscalls happen only when a deadline is
    /// set.
    pub fn check(&mut self, heap_len: usize) -> Option<StopReason> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(f) = &self.fleet {
            if f.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            let pop = now.saturating_duration_since(self.last_check).as_secs_f64();
            if pop > self.max_pop_seconds {
                self.max_pop_seconds = pop;
            }
            self.last_check = now;
            if now >= deadline {
                // Overshoot is measured from the later of (deadline,
                // query start): with `last_check` seeded at construction
                // and `max_pop_seconds` updated above, it is structurally
                // bounded by one pop's duration.
                let from = if deadline > self.started { deadline } else { self.started };
                self.overshoot_seconds = now.saturating_duration_since(from).as_secs_f64();
                return Some(StopReason::DeadlineExceeded);
            }
        }
        if let (Some((stats, base)), Some(max)) = (&self.ledger, self.max_blocks) {
            if stats.reads_since(*base) > max {
                return Some(StopReason::BlockBudgetExceeded);
            }
        }
        if let Some(cap) = self.max_heap {
            if heap_len >= cap {
                return Some(StopReason::HeapCapExceeded);
            }
        }
        None
    }

    /// Seconds past the deadline at the moment the deadline trip was
    /// observed (0 if no deadline tripped).
    pub fn overshoot_seconds(&self) -> f64 {
        self.overshoot_seconds
    }

    /// Longest observed gap between two checks — the work of one pop.
    pub fn max_pop_seconds(&self) -> f64 {
        self.max_pop_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_storage::{IoCategory, IoStats};

    #[test]
    fn unlimited_budget_never_trips() {
        let mut gov = Governor::new(&QueryBudget::unlimited());
        for len in [0usize, 10, 1_000_000] {
            assert_eq!(gov.check(len), None);
        }
    }

    #[test]
    fn cancel_token_wins_over_other_reasons() {
        let cancel = CancelToken::new();
        let mut gov =
            Governor::new(&QueryBudget::unlimited().with_heap_cap(1)).with_cancel(cancel.clone());
        assert_eq!(gov.check(5), Some(StopReason::HeapCapExceeded));
        cancel.cancel();
        assert_eq!(gov.check(5), Some(StopReason::Cancelled));
        cancel.reset();
        assert_eq!(gov.check(0), None);
    }

    #[test]
    fn fleet_token_drains_workers() {
        let fleet = CancelToken::new();
        let mut gov = Governor::new(&QueryBudget::unlimited()).with_fleet(fleet.clone());
        assert_eq!(gov.check(0), None);
        fleet.cancel();
        assert_eq!(gov.check(0), Some(StopReason::Cancelled));
    }

    #[test]
    fn block_budget_measures_ledger_delta_from_base() {
        let stats = IoStats::new_shared();
        stats.record_reads(IoCategory::RtreeBlock, 100); // pre-query noise
        let base = stats.total_reads();
        let mut gov = Governor::new(&QueryBudget::unlimited().with_block_budget(5))
            .with_ledger(stats.clone(), base);
        assert_eq!(gov.check(0), None);
        stats.record_reads(IoCategory::SignaturePage, 5);
        assert_eq!(gov.check(0), None, "exactly at budget is still within it");
        stats.record_reads(IoCategory::BptreePage, 1);
        assert_eq!(gov.check(0), Some(StopReason::BlockBudgetExceeded));
    }

    #[test]
    fn deadline_trips_with_bounded_overshoot() {
        let mut gov = Governor::new(&QueryBudget::unlimited().with_deadline(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(gov.check(0), Some(StopReason::DeadlineExceeded));
        assert!(gov.overshoot_seconds() > 0.0);
        assert!(
            gov.overshoot_seconds() <= gov.max_pop_seconds() + 1e-9,
            "overshoot {} must be bounded by one pop {}",
            gov.overshoot_seconds(),
            gov.max_pop_seconds()
        );
    }

    #[test]
    fn heap_cap_trips_at_cap() {
        let mut gov = Governor::new(&QueryBudget::unlimited().with_heap_cap(8));
        assert_eq!(gov.check(7), None);
        assert_eq!(gov.check(8), Some(StopReason::HeapCapExceeded));
    }

    #[test]
    fn outcome_accessors() {
        assert!(QueryOutcome::Complete.is_complete());
        let p = QueryOutcome::Partial {
            reason: StopReason::Cancelled,
            progress: Progress { pops: 3, ..Progress::default() },
        };
        assert!(!p.is_complete());
        assert_eq!(p.partial_reason(), Some(StopReason::Cancelled));
        assert_eq!(p.progress().map(|pr| pr.pops), Some(3));
    }
}
