//! Parallel branch-and-bound execution (§V at scale).
//!
//! The paper's Algorithm 1 explores one R-tree; once the read path is
//! `Send + Sync` (atomic [`pcube_storage::IoStats`] counters, lock-guarded
//! pager reads, per-worker signature cursors), the search parallelizes
//! across root-level subtrees. The fan-out is *generic over the query
//! class* ([`par_run_class`]): for any [`QueryClass`] it
//!
//! 1. expands the root once on the calling thread, scoring children with
//!    the class's own logic,
//! 2. deals the root's children round-robin to a fixed pool of **scoped**
//!    worker threads (no runtime dependency),
//! 3. runs the *same* [`kernel`](crate::query::kernel) loop the serial
//!    engines use per worker, with the class's shared pruning state
//!    ([`QueryClass::Shared`]) injected through the worker's logic — an
//!    atomic f64-bit threshold for top-k, a lock-free window of accepted
//!    points for the skyline family,
//! 4. merges local results with the class's own [`QueryClass::merge`].
//!
//! Results are **identical to the serial engines** — same tuples, same
//! order — for any worker count, because shared bounds are only ever
//! conservative (a stale bound admits extra work, never wrong answers) and
//! every class's merge is traversal-order independent with a canonical
//! output order. The oracle differential suite
//! (`tests/differential_oracle.rs`) and the concurrency stress test
//! (`tests/concurrent_queries.rs`) hold both engines to that contract.
//! The per-class `par_*` functions below are thin wrappers over
//! [`par_run_class`] kept for API compatibility; adding a query class
//! needs no edits here.
//!
//! The parallel engines do not produce `b_list`/`d_list` state: incremental
//! drill-down and roll-up (§V-C) remain a serial-engine feature.

use std::time::Instant;

use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Path};

use crate::pcube::PCubeDb;
use crate::query::budget::{
    CancelToken, Governor, Progress, QueryBudget, QueryOutcome, StopReason,
};
use crate::query::class::{
    run_class, ClassOutcome, DynamicSkylineClass, HullClass, QueryClass, SkylineClass,
    TopKClass,
};
use crate::query::kernel::{run_kernel, PreferenceLogic};
use crate::query::{Candidate, CandidateHeap, QueryStats};
use crate::rank::RankingFunction;

/// How a parallel query fans out.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads for the subtree fan-out. `0` or `1` runs the serial
    /// engine on the calling thread; larger values are capped by the number
    /// of root-level subtrees.
    pub workers: usize,
    /// Multi-predicate probes: eagerly assemble the intersected signature
    /// (tightest pruning, higher up-front cost) instead of lazy per-cursor
    /// intersection. Mirrors the serial `eager_assembly` flag.
    pub eager_assembly: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions { workers: 1, eager_assembly: false }
    }
}

impl ParallelOptions {
    /// Options for `workers` threads with lazy probe assembly.
    pub fn with_workers(workers: usize) -> Self {
        ParallelOptions { workers, ..ParallelOptions::default() }
    }
}

/// A completed parallel top-k query.
pub struct ParTopKOutcome {
    /// `(tid, coordinates, score)` ascending by `(score, tid)`, at most `k`.
    pub topk: Vec<(u64, Vec<f64>, f64)>,
    /// Execution metrics, aggregated across workers (see
    /// [`merge_worker_stats`] for the conventions).
    pub stats: QueryStats,
}

/// A completed parallel skyline query.
pub struct ParSkylineOutcome {
    /// Skyline tuples as `(tid, coordinates)` ascending by
    /// `(coordinate sum, tid)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// A completed parallel dynamic skyline query.
pub struct ParDynamicSkylineOutcome {
    /// Dynamic skyline tuples as `(tid, original coordinates)` ascending by
    /// `(transformed key, tid)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// A completed parallel convex hull query.
pub struct ParHullOutcome {
    /// Hull vertices in counter-clockwise order from the
    /// lowest-then-leftmost point.
    pub hull: Vec<(u64, [f64; 2])>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// Per-worker execution tallies folded into one [`QueryStats`].
#[derive(Default, Clone, Copy)]
struct WorkerStats {
    nodes_expanded: u64,
    peak_heap: usize,
    partials_loaded: u64,
    pops: u64,
    frontier: u64,
    stop: Option<StopReason>,
    overshoot_seconds: f64,
    max_pop_seconds: f64,
    stages: crate::query::StageTimes,
}

/// Aggregation conventions: node expansions and partial-signature loads add
/// up (every one is real work the shared I/O ledger also counted, and each
/// worker loads its own probe's partials); `peak_heap` is the *maximum*
/// over workers and the root fan-out — the per-thread memory high water a
/// capacity planner would provision.
fn merge_worker_stats(root_children: usize, locals: &[WorkerStats]) -> QueryStats {
    // Stage times add up across workers: they measure where the work went,
    // not the critical path (the caller's `cpu_seconds` is the wall clock).
    let mut stages = crate::query::StageTimes::default();
    for l in locals {
        stages.add(&l.stages);
    }
    QueryStats {
        nodes_expanded: 1 + locals.iter().map(|l| l.nodes_expanded).sum::<u64>(),
        peak_heap: root_children.max(locals.iter().map(|l| l.peak_heap).max().unwrap_or(0)),
        partials_loaded: locals.iter().map(|l| l.partials_loaded).sum(),
        io: Default::default(),
        cpu_seconds: 0.0,
        stages,
        plan: None,
        outcome: QueryOutcome::Complete,
    }
}

/// Folds the workers' stop states into the merged outcome. The reported
/// reason is the first *originating* trip in worker order (fleet-drained
/// workers report `Cancelled`, which only wins when the whole fleet was
/// externally cancelled). Pops and frontier add up across workers;
/// overshoot and max-pop take the worst worker. Call after `stats.io` and
/// `stats.nodes_expanded` are final.
fn merge_fleet_outcome(stats: &mut QueryStats, locals: &[WorkerStats], results_so_far: usize) {
    let originating =
        locals.iter().filter_map(|l| l.stop).find(|r| *r != StopReason::Cancelled);
    let Some(reason) = originating.or_else(|| locals.iter().find_map(|l| l.stop)) else {
        return;
    };
    stats.outcome = QueryOutcome::Partial {
        reason,
        progress: Progress {
            pops: locals.iter().map(|l| l.pops).sum(),
            nodes_expanded: stats.nodes_expanded,
            results_so_far,
            blocks_used: stats.io.total_reads(),
            frontier: locals.iter().map(|l| l.frontier).sum(),
            overshoot_seconds: locals.iter().map(|l| l.overshoot_seconds).fold(0.0, f64::max),
            max_pop_seconds: locals.iter().map(|l| l.max_pop_seconds).fold(0.0, f64::max),
        },
    };
}

/// The governance context one parallel query shares across its fleet: the
/// budget, one absolute deadline every worker races, the caller's cancel
/// token, the fleet-internal drain token, and the ledger baseline (the
/// block budget is fleet-wide — all workers charge one pool).
struct FleetGovernance {
    budget: QueryBudget,
    deadline_at: Option<Instant>,
    cancel: Option<CancelToken>,
    fleet: CancelToken,
    base: u64,
}

/// `None` when governance would be a no-op — the ungoverned fast path runs
/// zero per-pop checks and stays bit-identical to the pre-governance
/// engine by construction.
fn fleet_governance(
    db: &PCubeDb,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Option<FleetGovernance> {
    if budget.is_unlimited() && cancel.is_none() {
        return None;
    }
    Some(FleetGovernance {
        budget: *budget,
        deadline_at: budget.deadline().map(|d| Instant::now() + d),
        cancel: cancel.cloned(),
        fleet: CancelToken::new(),
        base: db.stats().total_reads(),
    })
}

/// Builds one worker's governor from the fleet context.
fn worker_governor(db: &PCubeDb, fg: Option<&FleetGovernance>) -> Option<Governor> {
    fg.map(|g| {
        let mut gov = Governor::new(&g.budget)
            .with_fleet(g.fleet.clone())
            .with_ledger(db.stats().clone(), g.base);
        if let Some(c) = &g.cancel {
            gov = gov.with_cancel(c.clone());
        }
        if let Some(d) = g.deadline_at {
            gov = gov.with_deadline_at(d);
        }
        gov
    })
}

/// A root-level seed: `(score, candidate)` as the serial engine would have
/// pushed it after expanding the root.
type Seed = (f64, Candidate);

/// Expands the root node into per-child seeds (one counted block read —
/// the `1 +` in [`merge_worker_stats`]), scored by the class's own logic
/// so seeds carry exactly the scores the serial engine would compute.
fn root_seeds_for(db: &PCubeDb, logic: &dyn PreferenceLogic) -> Vec<Seed> {
    let node = db.rtree().read_node(db.rtree().root_pid());
    let mut seeds = Vec::with_capacity(node.entries.len());
    for (slot, child) in node.entries {
        let child_path = Path::root().child(slot as u16 + 1);
        let seed = match child {
            DecodedEntry::Tuple { tid, coords } => {
                let s = logic.score_tuple(&coords);
                (s, Candidate::Tuple { tid, path: child_path, coords })
            }
            DecodedEntry::Child { child, mbr } => {
                let s = logic.score_node(&mbr, &child_path);
                (s, Candidate::Node { pid: child, path: child_path, mbr })
            }
        };
        seeds.push(seed);
    }
    seeds
}

/// Deals seeds round-robin across at most `workers` groups (never more
/// groups than seeds, always at least one group so `thread::scope` has a
/// worker to join even on an empty root).
fn deal(seeds: Vec<Seed>, workers: usize) -> Vec<Vec<Seed>> {
    let n = workers.min(seeds.len()).max(1);
    let mut groups: Vec<Vec<Seed>> = (0..n).map(|_| Vec::new()).collect();
    for (i, seed) in seeds.into_iter().enumerate() {
        groups[i % n].push(seed);
    }
    groups
}

// ---------------------------------------------------------------------------
// The generic fan-out
// ---------------------------------------------------------------------------

/// Parallel Algorithm 1 over any [`QueryClass`]: root fan-out, scoped
/// workers running the shared kernel with the class's shared pruning state,
/// then the class's own merge. Falls back to the serial
/// [`run_class`] at `workers <= 1`.
pub(crate) fn par_run_class<C: QueryClass + Sync>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ClassOutcome<C::Row> {
    let started = Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    if opts.workers <= 1 {
        return run_class(db, &selection, class, opts.eager_assembly, budget, cancel);
    }
    let fleet = fleet_governance(db, budget, cancel);
    let seeds = {
        // A throwaway serial-mode logic: scoring is identical between the
        // serial and shared modes of every class, so seeds carry exactly
        // the scores the serial engine would compute.
        let seed_logic = class.logic(None);
        root_seeds_for(db, &seed_logic)
    };
    let root_children = seeds.len();
    let groups = deal(seeds, opts.workers);

    let shared = class.new_shared();
    let locals: Vec<(C::Local, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                let (shared, selection, fleet) = (&shared, &selection, fleet.as_ref());
                scope.spawn(move || {
                    class_worker(db, selection, class, opts.eager_assembly, group, shared, fleet)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
    });

    let worker_stats: Vec<WorkerStats> = locals.iter().map(|(_, s)| *s).collect();
    let t_merge = Instant::now();
    let rows = class.merge(locals.into_iter().map(|(local, _)| local).collect());
    let merge_seconds = t_merge.elapsed().as_secs_f64();

    let mut stats = merge_worker_stats(root_children, &worker_stats);
    stats.stages.merge_seconds += merge_seconds;
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    merge_fleet_outcome(&mut stats, &worker_stats, rows.len());
    ClassOutcome { rows, stats }
}

/// One worker: the shared kernel over its seed subtrees with the class's
/// logic in shared mode, returning the class's local result. A governor
/// trip raises the fleet token so every sibling drains at its next pop.
fn class_worker<C: QueryClass>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
    eager: bool,
    seeds: Vec<Seed>,
    shared: &C::Shared,
    fg: Option<&FleetGovernance>,
) -> (C::Local, WorkerStats) {
    let t_pin = Instant::now();
    let mut probe = db.pcube().probe(selection, eager);
    let mut heap = CandidateHeap::new();
    for (score, cand) in seeds {
        heap.push(score, cand);
    }
    let mut logic = class.logic(Some(shared));
    let mut gov = worker_governor(db, fg);
    let pin_seconds = t_pin.elapsed().as_secs_f64();
    let mut run =
        run_kernel(db, selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    run.stages.pin_seconds += pin_seconds;
    if run.stop.is_some() {
        if let Some(g) = fg {
            g.fleet.cancel();
        }
    }
    let mut stats = WorkerStats {
        nodes_expanded: run.nodes_expanded,
        peak_heap: heap.peak_size(),
        partials_loaded: probe.partials_loaded(),
        pops: run.pops,
        frontier: run.frontier,
        stop: run.stop,
        overshoot_seconds: run.overshoot_seconds,
        max_pop_seconds: run.max_pop_seconds,
        stages: run.stages,
    };
    // Local finishing work (e.g. the hull class chains its local vertices
    // here) is merge-stage time, measured on the worker.
    let t_finish = Instant::now();
    let local = class.finish(logic);
    stats.stages.merge_seconds += t_finish.elapsed().as_secs_f64();
    (local, stats)
}

// ---------------------------------------------------------------------------
// Per-class wrappers (API compatibility)
// ---------------------------------------------------------------------------

/// Parallel [`topk_query`](crate::query::topk_query): fans root subtrees out
/// to `opts.workers` scoped threads sharing an atomic score threshold, and
/// returns exactly the serial result (same tuples, same order).
pub fn par_topk_query(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &(dyn RankingFunction + Sync),
    opts: ParallelOptions,
) -> ParTopKOutcome {
    par_topk_query_governed(db, selection, k, f, opts, &QueryBudget::unlimited(), None)
}

/// [`par_topk_query`] under a [`QueryBudget`] and optional [`CancelToken`].
/// One worker's trip (or an external cancel) raises the fleet token and
/// drains every other worker at its next pop. A parallel partial top-k is
/// a set of qualifying tuples but — unlike the serial engine's partials —
/// not necessarily a prefix of the true top-k, because workers stop at
/// different points of their subtree searches.
pub fn par_topk_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &(dyn RankingFunction + Sync),
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParTopKOutcome {
    // `k == 0` must not fan out: workers would never lower the shared
    // bound and the fleet would traverse everything for an empty answer.
    if opts.workers <= 1 || k == 0 {
        let out = crate::query::topk_query_governed(
            db,
            selection,
            k,
            f,
            opts.eager_assembly,
            budget,
            cancel,
        );
        return ParTopKOutcome { topk: out.topk, stats: out.stats };
    }
    let class = TopKClass::new(k, f);
    let out = par_run_class(db, selection, &class, opts, budget, cancel);
    ParTopKOutcome { topk: out.rows, stats: out.stats }
}

/// Parallel [`skyline_query`](crate::query::skyline_query): per-subtree BBS
/// with a shared window of accepted points, then a cross-filter merge.
/// Returns exactly the serial skyline in canonical order.
pub fn par_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    opts: ParallelOptions,
) -> ParSkylineOutcome {
    par_skyline_query_governed(db, selection, pref_dims, opts, &QueryBudget::unlimited(), None)
}

/// [`par_skyline_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]. A parallel partial skyline is a set of qualifying
/// tuples mutually undominated among *visited* points; unlike the serial
/// engine's partials it is not guaranteed to be a subset of the full
/// skyline, because an unvisited subtree may hold a dominator.
pub fn par_skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParSkylineOutcome {
    if opts.workers <= 1 {
        let out = crate::query::skyline_query_governed(
            db,
            selection,
            pref_dims,
            opts.eager_assembly,
            budget,
            cancel,
        );
        return ParSkylineOutcome { skyline: out.skyline, stats: out.stats };
    }
    let class = SkylineClass::new(pref_dims.to_vec());
    let out = par_run_class(db, selection, &class, opts, budget, cancel);
    ParSkylineOutcome { skyline: out.rows, stats: out.stats }
}

/// Parallel [`dynamic_skyline_query`](crate::query::dynamic_skyline_query):
/// the skyline engine run in the `x ↦ |x − q|` transformed space.
pub fn par_dynamic_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
    opts: ParallelOptions,
) -> ParDynamicSkylineOutcome {
    par_dynamic_skyline_query_governed(
        db,
        selection,
        q,
        pref_dims,
        opts,
        &QueryBudget::unlimited(),
        None,
    )
}

/// [`par_dynamic_skyline_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]; partial-result semantics match
/// [`par_skyline_query_governed`].
///
/// # Panics
/// Panics if `pref_dims` is empty or `q` is shorter than the coordinate
/// space.
pub fn par_dynamic_skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParDynamicSkylineOutcome {
    assert!(!pref_dims.is_empty(), "need at least one preference dimension");
    assert!(
        pref_dims.iter().all(|&d| d < q.len()),
        "query point must cover every preference dimension"
    );
    if opts.workers <= 1 {
        let out = crate::query::dynamic_skyline_query_governed(
            db,
            selection,
            q,
            pref_dims,
            budget,
            cancel,
        );
        return ParDynamicSkylineOutcome { skyline: out.skyline, stats: out.stats };
    }
    let class = DynamicSkylineClass::new(q, pref_dims.to_vec());
    let out = par_run_class(db, selection, &class, opts, budget, cancel);
    ParDynamicSkylineOutcome { skyline: out.rows, stats: out.stats }
}

/// Parallel [`convex_hull_query`](crate::query::convex_hull_query): each
/// worker computes its subtrees' local hull (a point interior to a subset's
/// hull is interior to the full hull, so local pruning never discards a
/// global vertex), and the merge chains the union of local hull vertices.
pub fn par_convex_hull_query(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    opts: ParallelOptions,
) -> ParHullOutcome {
    par_convex_hull_query_governed(db, selection, dims, opts, &QueryBudget::unlimited(), None)
}

/// [`par_convex_hull_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]. A partial hull is the hull of the points visited before
/// the trip — progress accounting only, no membership guarantee.
///
/// # Panics
/// Panics if the two dimensions coincide or exceed the schema.
pub fn par_convex_hull_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParHullOutcome {
    let n_pref = db.relation().schema().n_pref();
    assert!(dims.0 < n_pref && dims.1 < n_pref, "hull dimensions out of range");
    assert_ne!(dims.0, dims.1, "hull needs two distinct dimensions");
    if opts.workers <= 1 {
        let out = crate::query::convex_hull_query_governed(db, selection, dims, budget, cancel);
        return ParHullOutcome { hull: out.hull, stats: out.stats };
    }
    let class = HullClass::new(dims);
    let out = par_run_class(db, selection, &class, opts, budget, cancel);
    ParHullOutcome { hull: out.rows, stats: out.stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::kernel::{f64_to_ordered, ordered_to_f64, SharedBound, SharedWindow};

    #[test]
    fn ordered_f64_mapping_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(f64_to_ordered(w[0]) <= f64_to_ordered(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &x in &samples {
            assert_eq!(ordered_to_f64(f64_to_ordered(x)), x);
        }
    }

    #[test]
    fn shared_bound_is_a_running_min() {
        let b = SharedBound::unbounded();
        assert_eq!(b.get(), f64::INFINITY);
        b.lower_to(3.5);
        b.lower_to(7.0); // no effect: higher than the current bound
        assert_eq!(b.get(), 3.5);
        b.lower_to(-2.0);
        assert_eq!(b.get(), -2.0);
    }

    #[test]
    fn deal_round_robins_without_losing_seeds() {
        let seeds: Vec<Seed> = (0..7)
            .map(|i| (i as f64, Candidate::Tuple { tid: i, path: Path::root(), coords: vec![] }))
            .collect();
        let groups = deal(seeds, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 7);
        let groups = deal(Vec::new(), 3);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn shared_window_refresh_is_incremental() {
        let w = SharedWindow::new();
        w.push(vec![1.0]);
        w.push(vec![2.0]);
        let mut local = Vec::new();
        let mark = w.refresh(0, &mut local);
        assert_eq!(mark, 2);
        assert_eq!(local.len(), 2);
        w.push(vec![3.0]);
        let mark = w.refresh(mark, &mut local);
        assert_eq!(mark, 3);
        assert_eq!(local, vec![vec![1.0], vec![2.0], vec![3.0]]);
    }
}
