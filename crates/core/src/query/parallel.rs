//! Parallel branch-and-bound execution (§V at scale).
//!
//! The paper's Algorithm 1 explores one R-tree; once the read path is
//! `Send + Sync` (atomic [`pcube_storage::IoStats`] counters, lock-guarded
//! pager reads, per-worker signature cursors), the search parallelizes
//! across root-level subtrees. Each engine here:
//!
//! 1. expands the root once on the calling thread,
//! 2. deals the root's children round-robin to a fixed pool of **scoped**
//!    worker threads (no runtime dependency),
//! 3. runs the *same* [`kernel`](crate::query::kernel) loop the serial
//!    engines use per worker, with a *shared pruning bound* injected
//!    through the worker's [`kernel::PreferenceLogic`] — an atomic f64-bit
//!    threshold for top-k, a mutex-guarded window of accepted points for
//!    (dynamic) skylines,
//! 4. merges local results by the canonical `(score, tid)` key.
//!
//! Results are **identical to the serial engines** — same tuples, same
//! order — for any worker count, because shared bounds are only ever
//! conservative (a stale bound admits extra work, never wrong answers) and
//! the merge key matches the serial heap's deterministic tie-break plus the
//! serial engines' canonical result sort. The oracle differential suite
//! (`tests/differential_oracle.rs`) and the concurrency stress test
//! (`tests/concurrent_queries.rs`) hold both engines to that contract.
//!
//! The parallel engines do not produce `b_list`/`d_list` state: incremental
//! drill-down and roll-up (§V-C) remain a serial-engine feature.

use std::time::Instant;

use pcube_cube::{normalize, Selection};
use pcube_rtree::{DecodedEntry, Mbr, Path};

use crate::pcube::PCubeDb;
use crate::query::budget::{
    CancelToken, Governor, Progress, QueryBudget, QueryOutcome, StopReason,
};
use crate::query::hull::monotone_chain;
use crate::query::kernel::{
    run_kernel, HullLogic, SharedBound, SharedWindow, SkylineLogic, TopKLogic,
};
use crate::query::{dominates, Candidate, CandidateHeap, QueryStats, ResultEntry};
use crate::rank::{MinCoordSum, RankingFunction};

/// How a parallel query fans out.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOptions {
    /// Worker threads for the subtree fan-out. `0` or `1` runs the serial
    /// engine on the calling thread; larger values are capped by the number
    /// of root-level subtrees.
    pub workers: usize,
    /// Multi-predicate probes: eagerly assemble the intersected signature
    /// (tightest pruning, higher up-front cost) instead of lazy per-cursor
    /// intersection. Mirrors the serial `eager_assembly` flag.
    pub eager_assembly: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions { workers: 1, eager_assembly: false }
    }
}

impl ParallelOptions {
    /// Options for `workers` threads with lazy probe assembly.
    pub fn with_workers(workers: usize) -> Self {
        ParallelOptions { workers, ..ParallelOptions::default() }
    }
}

/// A completed parallel top-k query.
pub struct ParTopKOutcome {
    /// `(tid, coordinates, score)` ascending by `(score, tid)`, at most `k`.
    pub topk: Vec<(u64, Vec<f64>, f64)>,
    /// Execution metrics, aggregated across workers (see
    /// [`merge_worker_stats`] for the conventions).
    pub stats: QueryStats,
}

/// A completed parallel skyline query.
pub struct ParSkylineOutcome {
    /// Skyline tuples as `(tid, coordinates)` ascending by
    /// `(coordinate sum, tid)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// A completed parallel dynamic skyline query.
pub struct ParDynamicSkylineOutcome {
    /// Dynamic skyline tuples as `(tid, original coordinates)` ascending by
    /// `(transformed key, tid)`.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// A completed parallel convex hull query.
pub struct ParHullOutcome {
    /// Hull vertices in counter-clockwise order from the
    /// lowest-then-leftmost point.
    pub hull: Vec<(u64, [f64; 2])>,
    /// Execution metrics, aggregated across workers.
    pub stats: QueryStats,
}

/// Per-worker execution tallies folded into one [`QueryStats`].
#[derive(Default, Clone, Copy)]
struct WorkerStats {
    nodes_expanded: u64,
    peak_heap: usize,
    partials_loaded: u64,
    pops: u64,
    frontier: u64,
    stop: Option<StopReason>,
    overshoot_seconds: f64,
    max_pop_seconds: f64,
    stages: crate::query::StageTimes,
}

/// Aggregation conventions: node expansions and partial-signature loads add
/// up (every one is real work the shared I/O ledger also counted, and each
/// worker loads its own probe's partials); `peak_heap` is the *maximum*
/// over workers and the root fan-out — the per-thread memory high water a
/// capacity planner would provision.
fn merge_worker_stats(root_children: usize, locals: &[WorkerStats]) -> QueryStats {
    // Stage times add up across workers: they measure where the work went,
    // not the critical path (the caller's `cpu_seconds` is the wall clock).
    let mut stages = crate::query::StageTimes::default();
    for l in locals {
        stages.add(&l.stages);
    }
    QueryStats {
        nodes_expanded: 1 + locals.iter().map(|l| l.nodes_expanded).sum::<u64>(),
        peak_heap: root_children.max(locals.iter().map(|l| l.peak_heap).max().unwrap_or(0)),
        partials_loaded: locals.iter().map(|l| l.partials_loaded).sum(),
        io: Default::default(),
        cpu_seconds: 0.0,
        stages,
        plan: None,
        outcome: QueryOutcome::Complete,
    }
}

/// Folds the workers' stop states into the merged outcome. The reported
/// reason is the first *originating* trip in worker order (fleet-drained
/// workers report `Cancelled`, which only wins when the whole fleet was
/// externally cancelled). Pops and frontier add up across workers;
/// overshoot and max-pop take the worst worker. Call after `stats.io` and
/// `stats.nodes_expanded` are final.
fn merge_fleet_outcome(stats: &mut QueryStats, locals: &[WorkerStats], results_so_far: usize) {
    let originating =
        locals.iter().filter_map(|l| l.stop).find(|r| *r != StopReason::Cancelled);
    let Some(reason) = originating.or_else(|| locals.iter().find_map(|l| l.stop)) else {
        return;
    };
    stats.outcome = QueryOutcome::Partial {
        reason,
        progress: Progress {
            pops: locals.iter().map(|l| l.pops).sum(),
            nodes_expanded: stats.nodes_expanded,
            results_so_far,
            blocks_used: stats.io.total_reads(),
            frontier: locals.iter().map(|l| l.frontier).sum(),
            overshoot_seconds: locals.iter().map(|l| l.overshoot_seconds).fold(0.0, f64::max),
            max_pop_seconds: locals.iter().map(|l| l.max_pop_seconds).fold(0.0, f64::max),
        },
    };
}

/// The governance context one parallel query shares across its fleet: the
/// budget, one absolute deadline every worker races, the caller's cancel
/// token, the fleet-internal drain token, and the ledger baseline (the
/// block budget is fleet-wide — all workers charge one pool).
struct FleetGovernance {
    budget: QueryBudget,
    deadline_at: Option<Instant>,
    cancel: Option<CancelToken>,
    fleet: CancelToken,
    base: u64,
}

/// `None` when governance would be a no-op — the ungoverned fast path runs
/// zero per-pop checks and stays bit-identical to the pre-governance
/// engine by construction.
fn fleet_governance(
    db: &PCubeDb,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Option<FleetGovernance> {
    if budget.is_unlimited() && cancel.is_none() {
        return None;
    }
    Some(FleetGovernance {
        budget: *budget,
        deadline_at: budget.deadline().map(|d| Instant::now() + d),
        cancel: cancel.cloned(),
        fleet: CancelToken::new(),
        base: db.stats().total_reads(),
    })
}

/// Builds one worker's governor from the fleet context.
fn worker_governor(db: &PCubeDb, fg: Option<&FleetGovernance>) -> Option<Governor> {
    fg.map(|g| {
        let mut gov = Governor::new(&g.budget)
            .with_fleet(g.fleet.clone())
            .with_ledger(db.stats().clone(), g.base);
        if let Some(c) = &g.cancel {
            gov = gov.with_cancel(c.clone());
        }
        if let Some(d) = g.deadline_at {
            gov = gov.with_deadline_at(d);
        }
        gov
    })
}

/// A root-level seed: `(score, candidate)` as the serial engine would have
/// pushed it after expanding the root.
type Seed = (f64, Candidate);

/// Expands the root node into per-child seeds (one counted block read —
/// the `1 +` in [`merge_worker_stats`]).
fn root_seeds(
    db: &PCubeDb,
    score_tuple: &dyn Fn(&[f64]) -> f64,
    score_node: &dyn Fn(&Mbr) -> f64,
) -> Vec<Seed> {
    let node = db.rtree().read_node(db.rtree().root_pid());
    let mut seeds = Vec::with_capacity(node.entries.len());
    for (slot, child) in node.entries {
        let child_path = Path::root().child(slot as u16 + 1);
        let seed = match child {
            DecodedEntry::Tuple { tid, coords } => {
                let s = score_tuple(&coords);
                (s, Candidate::Tuple { tid, path: child_path, coords })
            }
            DecodedEntry::Child { child, mbr } => {
                let s = score_node(&mbr);
                (s, Candidate::Node { pid: child, path: child_path, mbr })
            }
        };
        seeds.push(seed);
    }
    seeds
}

/// Deals seeds round-robin across at most `workers` groups (never more
/// groups than seeds, always at least one group so `thread::scope` has a
/// worker to join even on an empty root).
fn deal(seeds: Vec<Seed>, workers: usize) -> Vec<Vec<Seed>> {
    let n = workers.min(seeds.len()).max(1);
    let mut groups: Vec<Vec<Seed>> = (0..n).map(|_| Vec::new()).collect();
    for (i, seed) in seeds.into_iter().enumerate() {
        groups[i % n].push(seed);
    }
    groups
}

// ---------------------------------------------------------------------------
// Top-k
// ---------------------------------------------------------------------------

/// Parallel [`topk_query`](crate::query::topk_query): fans root subtrees out
/// to `opts.workers` scoped threads sharing an atomic score threshold, and
/// returns exactly the serial result (same tuples, same order).
pub fn par_topk_query(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &(dyn RankingFunction + Sync),
    opts: ParallelOptions,
) -> ParTopKOutcome {
    par_topk_query_governed(db, selection, k, f, opts, &QueryBudget::unlimited(), None)
}

/// [`par_topk_query`] under a [`QueryBudget`] and optional [`CancelToken`].
/// One worker's trip (or an external cancel) raises the fleet token and
/// drains every other worker at its next pop. A parallel partial top-k is
/// a set of qualifying tuples but — unlike the serial engine's partials —
/// not necessarily a prefix of the true top-k, because workers stop at
/// different points of their subtree searches.
pub fn par_topk_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &(dyn RankingFunction + Sync),
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParTopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    if opts.workers <= 1 || k == 0 {
        let out = crate::query::topk_query_governed(
            db,
            &selection,
            k,
            f,
            opts.eager_assembly,
            budget,
            cancel,
        );
        return ParTopKOutcome { topk: out.topk, stats: out.stats };
    }
    let fleet = fleet_governance(db, budget, cancel);
    let seeds = root_seeds(db, &|c| f.score(c), &|m| f.lower_bound(m));
    let root_children = seeds.len();
    let groups = deal(seeds, opts.workers);

    let bound = SharedBound::unbounded();
    type Local = (Vec<ResultEntry>, WorkerStats);
    let locals: Vec<Local> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                let (bound, selection, fleet) = (&bound, &selection, fleet.as_ref());
                scope.spawn(move || {
                    topk_worker(db, selection, k, f, opts.eager_assembly, group, bound, fleet)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("top-k worker panicked")).collect()
    });

    // Merge by the canonical (score, tid) key — exactly the serial heap's
    // tuple tie-break — and keep the k best.
    let t_merge = std::time::Instant::now();
    let mut merged: Vec<ResultEntry> = locals.iter().flat_map(|(res, _)| res.to_vec()).collect();
    merged.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    merged.truncate(k);
    let merge_seconds = t_merge.elapsed().as_secs_f64();

    let worker_stats: Vec<WorkerStats> = locals.iter().map(|(_, s)| *s).collect();
    let mut stats = merge_worker_stats(root_children, &worker_stats);
    stats.stages.merge_seconds += merge_seconds;
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    merge_fleet_outcome(&mut stats, &worker_stats, merged.len());
    ParTopKOutcome {
        topk: merged.into_iter().map(|r| (r.tid, r.coords, r.score)).collect(),
        stats,
    }
}

/// One top-k worker: the shared kernel over its seed subtrees, keeping the
/// k best `(score, tid)` tuples seen and pruning against the shared bound.
#[allow(clippy::too_many_arguments)]
fn topk_worker(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &(dyn RankingFunction + Sync),
    eager: bool,
    seeds: Vec<Seed>,
    bound: &SharedBound,
    fg: Option<&FleetGovernance>,
) -> (Vec<ResultEntry>, WorkerStats) {
    let t_pin = std::time::Instant::now();
    let mut probe = db.pcube().probe(selection, eager);
    let mut heap = CandidateHeap::new();
    for (score, cand) in seeds {
        heap.push(score, cand);
    }
    let mut logic = TopKLogic::shared(k, f, bound);
    let mut gov = worker_governor(db, fg);
    let pin_seconds = t_pin.elapsed().as_secs_f64();
    let mut run =
        run_kernel(db, selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    run.stages.pin_seconds += pin_seconds;
    if run.stop.is_some() {
        if let Some(g) = fg {
            g.fleet.cancel();
        }
    }
    let stats = WorkerStats {
        nodes_expanded: run.nodes_expanded,
        peak_heap: heap.peak_size(),
        partials_loaded: probe.partials_loaded(),
        pops: run.pops,
        frontier: run.frontier,
        stop: run.stop,
        overshoot_seconds: run.overshoot_seconds,
        max_pop_seconds: run.max_pop_seconds,
        stages: run.stages,
    };
    (logic.into_result(), stats)
}

// ---------------------------------------------------------------------------
// Skyline (static and dynamic share one worker)
// ---------------------------------------------------------------------------

/// A skyline worker's accepted tuple:
/// `(score, tid, domination coords, original coords)`.
type SkyPoint = (f64, u64, Vec<f64>, Vec<f64>);

/// The domination space a skyline worker prunes in: `transform` maps
/// original coordinates into it at full dimensionality (identity for
/// static skylines, `x ↦ |x − q|` for dynamic ones); `corner` gives the
/// attainable per-dimension lower corner of an MBR there (`mbr.min` resp.
/// the clamped distance corner) — the exact functions the serial engines
/// prune with.
struct DomSpace<'a> {
    transform: &'a (dyn Fn(&[f64]) -> Vec<f64> + Sync),
    corner: &'a (dyn Fn(&Mbr) -> Vec<f64> + Sync),
}

/// One (dynamic) skyline worker: the shared kernel over its seed subtrees
/// with local + shared-window domination pruning in `space`.
#[allow(clippy::too_many_arguments)]
fn skyline_worker(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    eager: bool,
    seeds: Vec<Seed>,
    window: &SharedWindow,
    space: DomSpace<'_>,
    fg: Option<&FleetGovernance>,
) -> (Vec<SkyPoint>, WorkerStats) {
    let t_pin = std::time::Instant::now();
    let mut probe = db.pcube().probe(selection, eager);
    let mut heap = CandidateHeap::new();
    for (score, cand) in seeds {
        heap.push(score, cand);
    }
    let mut logic =
        SkylineLogic::new(pref_dims, Some(space.transform), Some(space.corner), Some(window));
    let mut gov = worker_governor(db, fg);
    let pin_seconds = t_pin.elapsed().as_secs_f64();
    let mut run =
        run_kernel(db, selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    run.stages.pin_seconds += pin_seconds;
    if run.stop.is_some() {
        if let Some(g) = fg {
            g.fleet.cancel();
        }
    }
    let stats = WorkerStats {
        nodes_expanded: run.nodes_expanded,
        peak_heap: heap.peak_size(),
        partials_loaded: probe.partials_loaded(),
        pops: run.pops,
        frontier: run.frontier,
        stop: run.stop,
        overshoot_seconds: run.overshoot_seconds,
        max_pop_seconds: run.max_pop_seconds,
        stages: run.stages,
    };
    (logic.into_points(), stats)
}

/// Cross-filters worker-local skylines against each other and sorts by the
/// canonical `(score, tid)` key, yielding `(tid, original coords)`.
///
/// A local point survives iff no point from any worker dominates it — which
/// is exactly global skyline membership, because each local list is a
/// superset of its subtree's global skyline points (a worker only drops
/// points dominated by qualifying data points, and a dominated point is
/// never in the global skyline).
fn finish_skylines(
    locals: Vec<(Vec<SkyPoint>, WorkerStats)>,
    pref_dims: &[usize],
) -> (Vec<(u64, Vec<f64>)>, Vec<WorkerStats>) {
    let worker_stats: Vec<WorkerStats> = locals.iter().map(|(_, s)| *s).collect();
    let all: Vec<SkyPoint> = locals.into_iter().flat_map(|(res, _)| res).collect();
    let mut skyline: Vec<&SkyPoint> = all
        .iter()
        .filter(|(_, tid, dom, _)| {
            !all.iter().any(|(_, o_tid, o_dom, _)| o_tid != tid && dominates(o_dom, dom, pref_dims))
        })
        .collect();
    skyline.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    (skyline.into_iter().map(|(_, tid, _, orig)| (*tid, orig.clone())).collect(), worker_stats)
}

/// Parallel [`skyline_query`](crate::query::skyline_query): per-subtree BBS
/// with a shared window of accepted points, then a cross-filter merge.
/// Returns exactly the serial skyline in canonical order.
pub fn par_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    opts: ParallelOptions,
) -> ParSkylineOutcome {
    par_skyline_query_governed(db, selection, pref_dims, opts, &QueryBudget::unlimited(), None)
}

/// [`par_skyline_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]. A parallel partial skyline is a set of qualifying
/// tuples mutually undominated among *visited* points; unlike the serial
/// engine's partials it is not guaranteed to be a subset of the full
/// skyline, because an unvisited subtree may hold a dominator.
pub fn par_skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParSkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    if opts.workers <= 1 {
        let out = crate::query::skyline_query_governed(
            db,
            &selection,
            pref_dims,
            opts.eager_assembly,
            budget,
            cancel,
        );
        return ParSkylineOutcome { skyline: out.skyline, stats: out.stats };
    }
    let fleet = fleet_governance(db, budget, cancel);
    let f = MinCoordSum::new(pref_dims.to_vec());
    let transform = |coords: &[f64]| coords.to_vec();
    let corner = |mbr: &Mbr| mbr.min.clone();
    let seeds = root_seeds(db, &|c| f.score(c), &|m| f.lower_bound(m));
    let root_children = seeds.len();
    let groups = deal(seeds, opts.workers);

    let window = SharedWindow::new();
    let locals: Vec<(Vec<SkyPoint>, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                let (window, selection, fleet) = (&window, &selection, fleet.as_ref());
                let space = DomSpace { transform: &transform, corner: &corner };
                scope.spawn(move || {
                    skyline_worker(
                        db,
                        selection,
                        pref_dims,
                        opts.eager_assembly,
                        group,
                        window,
                        space,
                        fleet,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("skyline worker panicked")).collect()
    });

    let t_merge = std::time::Instant::now();
    let (skyline, worker_stats) = finish_skylines(locals, pref_dims);
    let merge_seconds = t_merge.elapsed().as_secs_f64();
    let mut stats = merge_worker_stats(root_children, &worker_stats);
    stats.stages.merge_seconds += merge_seconds;
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    merge_fleet_outcome(&mut stats, &worker_stats, skyline.len());
    ParSkylineOutcome { skyline, stats }
}

/// Parallel [`dynamic_skyline_query`](crate::query::dynamic_skyline_query):
/// the skyline engine run in the `x ↦ |x − q|` transformed space.
pub fn par_dynamic_skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
    opts: ParallelOptions,
) -> ParDynamicSkylineOutcome {
    par_dynamic_skyline_query_governed(
        db,
        selection,
        q,
        pref_dims,
        opts,
        &QueryBudget::unlimited(),
        None,
    )
}

/// [`par_dynamic_skyline_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]; partial-result semantics match
/// [`par_skyline_query_governed`].
///
/// # Panics
/// Panics if `pref_dims` is empty or `q` is shorter than the coordinate
/// space.
pub fn par_dynamic_skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    q: &[f64],
    pref_dims: &[usize],
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParDynamicSkylineOutcome {
    assert!(!pref_dims.is_empty(), "need at least one preference dimension");
    assert!(
        pref_dims.iter().all(|&d| d < q.len()),
        "query point must cover every preference dimension"
    );
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    if opts.workers <= 1 {
        let out = crate::query::dynamic_skyline_query_governed(
            db,
            &selection,
            q,
            pref_dims,
            budget,
            cancel,
        );
        return ParDynamicSkylineOutcome { skyline: out.skyline, stats: out.stats };
    }
    let fleet = fleet_governance(db, budget, cancel);

    // The same transform/corner pair the serial engine uses: full
    // dimensionality so `dominates(_, _, pref_dims)` indexes directly, and
    // the per-dimension attainable minimum distance for boxes.
    let transform = |coords: &[f64]| -> Vec<f64> {
        coords
            .iter()
            .enumerate()
            .map(|(d, &x)| (x - q.get(d).copied().unwrap_or(0.0)).abs())
            .collect()
    };
    let corner = |mbr: &Mbr| -> Vec<f64> {
        (0..mbr.dims())
            .map(|d| {
                let qd = q[d];
                if qd < mbr.min[d] {
                    mbr.min[d] - qd
                } else if qd > mbr.max[d] {
                    qd - mbr.max[d]
                } else {
                    0.0
                }
            })
            .collect()
    };
    let key = |t: &[f64]| -> f64 { pref_dims.iter().map(|&d| t[d]).sum() };

    let seeds = root_seeds(db, &|c| key(&transform(c)), &|m| key(&corner(m)));
    let root_children = seeds.len();
    let groups = deal(seeds, opts.workers);

    let window = SharedWindow::new();
    let locals: Vec<(Vec<SkyPoint>, WorkerStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                let (window, selection, fleet) = (&window, &selection, fleet.as_ref());
                let space = DomSpace { transform: &transform, corner: &corner };
                scope.spawn(move || {
                    skyline_worker(
                        db,
                        selection,
                        pref_dims,
                        opts.eager_assembly,
                        group,
                        window,
                        space,
                        fleet,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("dynamic worker panicked")).collect()
    });

    let t_merge = std::time::Instant::now();
    let (skyline, worker_stats) = finish_skylines(locals, pref_dims);
    let merge_seconds = t_merge.elapsed().as_secs_f64();
    let mut stats = merge_worker_stats(root_children, &worker_stats);
    stats.stages.merge_seconds += merge_seconds;
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    merge_fleet_outcome(&mut stats, &worker_stats, skyline.len());
    ParDynamicSkylineOutcome { skyline, stats }
}

// ---------------------------------------------------------------------------
// Convex hull
// ---------------------------------------------------------------------------

/// Parallel [`convex_hull_query`](crate::query::convex_hull_query): each
/// worker computes its subtrees' local hull (a point interior to a subset's
/// hull is interior to the full hull, so local pruning never discards a
/// global vertex), and the merge chains the union of local hull vertices.
pub fn par_convex_hull_query(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    opts: ParallelOptions,
) -> ParHullOutcome {
    par_convex_hull_query_governed(db, selection, dims, opts, &QueryBudget::unlimited(), None)
}

/// [`par_convex_hull_query`] under a [`QueryBudget`] and optional
/// [`CancelToken`]. A partial hull is the hull of the points visited before
/// the trip — progress accounting only, no membership guarantee.
///
/// # Panics
/// Panics if the two dimensions coincide or exceed the schema.
pub fn par_convex_hull_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    opts: ParallelOptions,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ParHullOutcome {
    let n_pref = db.relation().schema().n_pref();
    assert!(dims.0 < n_pref && dims.1 < n_pref, "hull dimensions out of range");
    assert_ne!(dims.0, dims.1, "hull needs two distinct dimensions");
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    if opts.workers <= 1 {
        let out = crate::query::convex_hull_query_governed(db, &selection, dims, budget, cancel);
        return ParHullOutcome { hull: out.hull, stats: out.stats };
    }
    let fleet = fleet_governance(db, budget, cancel);

    // The hull kernel's ordering: tuples surface immediately, nodes expand
    // deepest-first (every root child is at depth 1).
    let seeds = root_seeds(db, &|_| f64::NEG_INFINITY, &|_| -1.0);
    let root_children = seeds.len();
    let groups = deal(seeds, opts.workers);

    type Local = (Vec<(u64, [f64; 2])>, WorkerStats);
    let locals: Vec<Local> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                let (selection, fleet) = (&selection, fleet.as_ref());
                scope.spawn(move || {
                    hull_worker(db, selection, dims, opts.eager_assembly, group, fleet)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("hull worker panicked")).collect()
    });

    let worker_stats: Vec<WorkerStats> = locals.iter().map(|(_, s)| *s).collect();
    let t_merge = std::time::Instant::now();
    let all_vertices: Vec<(u64, [f64; 2])> =
        locals.into_iter().flat_map(|(res, _)| res).collect();
    let hull = monotone_chain(&all_vertices);
    let merge_seconds = t_merge.elapsed().as_secs_f64();
    let mut stats = merge_worker_stats(root_children, &worker_stats);
    stats.stages.merge_seconds += merge_seconds;
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    merge_fleet_outcome(&mut stats, &worker_stats, hull.len());
    ParHullOutcome { hull, stats }
}

/// One hull worker: the shared kernel with hull geometry over its
/// subtrees, returning the vertices of its local hull.
fn hull_worker(
    db: &PCubeDb,
    selection: &Selection,
    dims: (usize, usize),
    eager: bool,
    seeds: Vec<Seed>,
    fg: Option<&FleetGovernance>,
) -> (Vec<(u64, [f64; 2])>, WorkerStats) {
    let t_pin = std::time::Instant::now();
    let mut probe = db.pcube().probe(selection, eager);
    let mut heap = CandidateHeap::new();
    for (score, cand) in seeds {
        heap.push(score, cand);
    }
    let mut logic = HullLogic::new(dims);
    let mut gov = worker_governor(db, fg);
    let pin_seconds = t_pin.elapsed().as_secs_f64();
    let mut run =
        run_kernel(db, selection, &mut probe, &mut heap, &mut logic, None, gov.as_mut());
    run.stages.pin_seconds += pin_seconds;
    if run.stop.is_some() {
        if let Some(g) = fg {
            g.fleet.cancel();
        }
    }
    let stats = WorkerStats {
        nodes_expanded: run.nodes_expanded,
        peak_heap: heap.peak_size(),
        partials_loaded: probe.partials_loaded(),
        pops: run.pops,
        frontier: run.frontier,
        stop: run.stop,
        overshoot_seconds: run.overshoot_seconds,
        max_pop_seconds: run.max_pop_seconds,
        stages: run.stages,
    };
    let t_merge = std::time::Instant::now();
    let local_hull = monotone_chain(&logic.into_points());
    let mut stats = stats;
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    (local_hull, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::kernel::{f64_to_ordered, ordered_to_f64};

    #[test]
    fn ordered_f64_mapping_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-300,
            1.0,
            2.5,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(f64_to_ordered(w[0]) <= f64_to_ordered(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &x in &samples {
            assert_eq!(ordered_to_f64(f64_to_ordered(x)), x);
        }
    }

    #[test]
    fn shared_bound_is_a_running_min() {
        let b = SharedBound::unbounded();
        assert_eq!(b.get(), f64::INFINITY);
        b.lower_to(3.5);
        b.lower_to(7.0); // no effect: higher than the current bound
        assert_eq!(b.get(), 3.5);
        b.lower_to(-2.0);
        assert_eq!(b.get(), -2.0);
    }

    #[test]
    fn deal_round_robins_without_losing_seeds() {
        let seeds: Vec<Seed> = (0..7)
            .map(|i| (i as f64, Candidate::Tuple { tid: i, path: Path::root(), coords: vec![] }))
            .collect();
        let groups = deal(seeds, 3);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), 7);
        let groups = deal(Vec::new(), 3);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn shared_window_refresh_is_incremental() {
        let w = SharedWindow::new();
        w.push(vec![1.0]);
        w.push(vec![2.0]);
        let mut local = Vec::new();
        let mark = w.refresh(0, &mut local);
        assert_eq!(mark, 2);
        assert_eq!(local.len(), 2);
        w.push(vec![3.0]);
        let mark = w.refresh(mark, &mut local);
        assert_eq!(mark, 3);
        assert_eq!(local, vec![vec![1.0], vec![2.0], vec![3.0]]);
    }
}
