//! The query-class plugin seam (§V): one registration per preference
//! query class.
//!
//! The kernel answers every preference query with the same branch-and-bound
//! loop ([`run_kernel`]); what varies per class is (a) how candidates are
//! scored and pruned (a [`PreferenceLogic`]), (b) how parallel workers'
//! local results merge into the global answer, (c) how the planner should
//! estimate the answer's size, and (d) what the naive reference answer is.
//! [`QueryClass`] bundles exactly those four things, so adding a query
//! class is one `impl` — the facade ([`crate::PCubeDb::run`]), the parallel
//! fan-out, the planner dispatch ([`crate::plan::Planner::choose_class`])
//! and the SQL layer are all generic over it and need no edits.
//!
//! The first-party classes live here too: [`TopKClass`], [`SkylineClass`],
//! [`DynamicSkylineClass`], [`HullClass`], and the two classes that landed
//! with the seam — [`PSkylineClass`] (prioritized skylines per Mindolin &
//! Chomicki's winnow semantics, priorities expressed as a [`PriorityGraph`])
//! and [`SubspaceSkylineClass`] (skylines restricted to a dimension subset,
//! distinct-value semantics for projected duplicates).

use std::collections::HashSet;
use std::fmt;
use std::time::Instant;

use pcube_cube::{normalize, Selection};
use pcube_rtree::Mbr;
use pcube_storage::IoSnapshot;

use crate::pcube::PCubeDb;
use crate::plan::{EngineKind, Planner};
use crate::query::budget::{CancelToken, Governor, QueryBudget};
use crate::query::hull::monotone_chain;
use crate::query::kernel::{
    run_kernel, BooleanPruner, HullLogic, PSkylineLogic, PreferenceLogic, SharedBound,
    SharedWindow, SkylineLogic, TopKLogic, VerifyAllPruner,
};
use crate::query::topk::{apply_kernel_outcome, make_governor};
use crate::query::{dominates, seed_root, CandidateHeap, QueryStats};
use crate::rank::RankingFunction;

// ---------------------------------------------------------------------------
// The plugin trait
// ---------------------------------------------------------------------------

/// Everything the engine stack needs to know about one preference query
/// class. Implementing this trait *is* the registration: the serial runner,
/// the parallel fan-out, the planner and the SQL layer are generic over it.
///
/// The contract that makes serial == parallel bit-identical: `merge` must
/// be a pure function of the *set* of locals (traversal-order independent)
/// and must canonicalize its output order; and for a single local,
/// `merge(vec![finish(logic)])` must equal the serial answer.
pub trait QueryClass {
    /// One row of the final answer.
    type Row: Clone + Send;
    /// One worker's raw local result, before the cross-worker merge.
    type Local: Send;
    /// Pruning state shared across parallel workers (e.g. [`SharedBound`],
    /// [`SharedWindow`]); `()` if the class shares nothing.
    type Shared: Sync;
    /// The class's kernel logic.
    type Logic<'a>: PreferenceLogic
    where
        Self: 'a;

    /// Stable class name — used by `EXPLAIN`, [`crate::plan::PlanDecision`]
    /// and benchmarks.
    fn name(&self) -> &'static str;

    /// Fresh shared pruning state for one parallel query.
    fn new_shared(&self) -> Self::Shared;

    /// Builds the kernel logic; `shared` is `None` for the serial engine
    /// and `Some` inside parallel workers.
    fn logic<'a>(&'a self, shared: Option<&'a Self::Shared>) -> Self::Logic<'a>;

    /// Extracts a worker's local result from its finished logic.
    fn finish(&self, logic: Self::Logic<'_>) -> Self::Local;

    /// Merges local results into the canonical global answer. Must be
    /// deterministic and independent of how the search was partitioned.
    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row>;

    /// Expected answer size given an estimated `qualifying` tuple count —
    /// the planner's per-class cost hook (its `wanted` term).
    fn expected_results(&self, qualifying: f64) -> f64;

    /// Whether `kind` can answer this class. The default admits everything
    /// except index-merge, whose per-candidate B+-tree probes only pay off
    /// under top-k's early-exit.
    fn supports(&self, kind: EngineKind) -> bool {
        kind != EngineKind::IndexMerge
    }

    /// The naive reference answer over the qualifying tuples `(tid,
    /// preference coordinates)` — the boolean-first engine's preference
    /// step, and the differential-testing oracle. Must produce rows in the
    /// same canonical order as `merge`.
    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row>;
}

/// A completed run of a [`QueryClass`].
pub struct ClassOutcome<R> {
    /// The answer, in the class's canonical order.
    pub rows: Vec<R>,
    /// Execution metrics.
    pub stats: QueryStats,
}

/// Serial Algorithm 1 over one query class: signature probe, seeded root,
/// kernel loop, then the class's own finish + merge (with a single local,
/// so the merge is the canonicalization step).
pub(crate) fn run_class<C: QueryClass>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
    eager_assembly: bool,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ClassOutcome<C::Row> {
    let started = Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    let mut gov = make_governor(db, budget, cancel);
    let mut probe = db.pcube().probe(&selection, eager_assembly);
    run_class_with(db, &selection, class, &mut probe, started, before, gov.as_mut())
}

/// [`run_class`] with a caller-supplied boolean pruner — the seam the
/// planner dispatch uses to run the same class under the signature probe
/// (P-Cube) or under [`crate::query::kernel::VerifyAllPruner`]
/// (domination-first with minimal-probing verification).
pub(crate) fn run_class_with<C: QueryClass>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
    probe: &mut dyn BooleanPruner,
    started: Instant,
    before: IoSnapshot,
    gov: Option<&mut Governor>,
) -> ClassOutcome<C::Row> {
    let mut stats = QueryStats::default();
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut logic = class.logic(None);
    let pin_seconds = started.elapsed().as_secs_f64();
    let run = run_kernel(db, selection, probe, &mut heap, &mut logic, None, gov);
    stats.stages = run.stages;
    stats.stages.pin_seconds += pin_seconds;
    stats.nodes_expanded = run.nodes_expanded;
    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    let t_merge = Instant::now();
    let local = class.finish(logic);
    let rows = class.merge(vec![local]);
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    apply_kernel_outcome(&mut stats, &run, rows.len());
    ClassOutcome { rows, stats }
}

/// Domination-first engine for a query class: the Algorithm-1 traversal
/// with no boolean pruning at all — every accepted tuple was verified
/// against the base table by the kernel (the [`VerifyAllPruner`] is lossy,
/// so each tuple pop loads and re-checks the heap row).
pub(crate) fn run_class_verify_all<C: QueryClass>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> ClassOutcome<C::Row> {
    let started = Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    let mut gov = make_governor(db, budget, cancel);
    let mut pruner = VerifyAllPruner;
    run_class_with(db, &selection, class, &mut pruner, started, before, gov.as_mut())
}

/// Boolean-first engine for a query class: resolve the selection to the
/// full qualifying candidate list (the relation layer picks the index or
/// scan route), then run the class's reference preference step over it in
/// memory. `peak_heap` reports the materialised candidate count; the
/// in-memory preference step is not governed (see
/// [`crate::pcube::PCubeDb::plan_and_run_class`]).
pub(crate) fn run_class_scan<C: QueryClass>(
    db: &PCubeDb,
    selection: &Selection,
    class: &C,
) -> ClassOutcome<C::Row> {
    let started = Instant::now();
    let before = db.stats().snapshot();
    let selection = normalize(selection);
    let rel = db.relation();
    let candidates: Vec<(u64, Vec<f64>)> =
        rel.scan(&selection).map(|tid| (tid, rel.pref_coords(tid))).collect();
    let mut stats = QueryStats { peak_heap: candidates.len(), ..QueryStats::default() };
    let t_merge = Instant::now();
    let rows = class.oracle(&candidates);
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    ClassOutcome { rows, stats }
}

// ---------------------------------------------------------------------------
// Shared merge machinery for the skyline family
// ---------------------------------------------------------------------------

/// A tentatively accepted point in the skyline family's merge
/// representation: `(heap score, tid, domination-space coordinates,
/// original coordinates)`.
pub type SkyPoint = (f64, u64, Vec<f64>, Vec<f64>);

/// Cross-filters accepted points down to the maximal set under `dom`
/// (`dom(a, b)` = "a dominates b" in the class's dominance relation), then
/// canonicalizes to ascending `(score, tid)` order and keeps `(tid,
/// original coordinates)`. Traversal-order independent, which is the whole
/// serial == parallel argument for the skyline family.
pub(crate) fn winnow_points(
    points: &[SkyPoint],
    dom: impl Fn(&[f64], &[f64]) -> bool,
) -> Vec<(u64, Vec<f64>)> {
    let mut kept: Vec<&SkyPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|o| o.1 != p.1 && dom(&o.2, &p.2)))
        .collect();
    kept.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    kept.into_iter().map(|p| (p.1, p.3.clone())).collect()
}

// ---------------------------------------------------------------------------
// Top-k
// ---------------------------------------------------------------------------

/// The top-k query class: best-first under a [`RankingFunction`], halting
/// at `k` results (serial) or at the shared k-th-score bound (parallel).
pub struct TopKClass<'f, F: RankingFunction + ?Sized> {
    k: usize,
    f: &'f F,
}

impl<'f, F: RankingFunction + ?Sized> TopKClass<'f, F> {
    /// Top-`k` under ranking function `f` (smaller scores are better).
    pub fn new(k: usize, f: &'f F) -> Self {
        TopKClass { k, f }
    }
}

impl<F: RankingFunction + ?Sized + Sync> QueryClass for TopKClass<'_, F> {
    type Row = (u64, Vec<f64>, f64);
    type Local = Vec<(f64, u64, Vec<f64>)>;
    type Shared = SharedBound;
    type Logic<'a>
        = TopKLogic<'a>
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "topk"
    }

    fn new_shared(&self) -> SharedBound {
        SharedBound::unbounded()
    }

    fn logic<'a>(&'a self, shared: Option<&'a SharedBound>) -> TopKLogic<'a> {
        match shared {
            Some(b) => TopKLogic::shared(self.k, &self.f, b),
            None => TopKLogic::serial(self.k, &self.f),
        }
    }

    fn finish(&self, logic: TopKLogic<'_>) -> Self::Local {
        logic.into_result().into_iter().map(|r| (r.score, r.tid, r.coords)).collect()
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let mut all: Vec<(f64, u64, Vec<f64>)> = locals.into_iter().flatten().collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(self.k);
        all.into_iter().map(|(score, tid, coords)| (tid, coords, score)).collect()
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        (self.k as f64).min(qualifying.max(1.0))
    }

    fn supports(&self, _kind: EngineKind) -> bool {
        true
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let locals =
            rows.iter().map(|(tid, c)| (self.f.score(c), *tid, c.clone())).collect();
        self.merge(vec![locals])
    }
}

// ---------------------------------------------------------------------------
// Static skyline
// ---------------------------------------------------------------------------

/// The static skyline class: Pareto-maximal tuples over a set of
/// preference dimensions (§V-A), BBS-style.
pub struct SkylineClass {
    pref_dims: Vec<usize>,
}

impl SkylineClass {
    /// Skyline over `pref_dims` (smaller is better on every dimension).
    ///
    /// # Panics
    /// Panics if `pref_dims` is empty.
    pub fn new(pref_dims: Vec<usize>) -> Self {
        assert!(!pref_dims.is_empty(), "skyline needs at least one preference dimension");
        SkylineClass { pref_dims }
    }
}

impl QueryClass for SkylineClass {
    type Row = (u64, Vec<f64>);
    type Local = Vec<SkyPoint>;
    type Shared = SharedWindow;
    type Logic<'a>
        = SkylineLogic<'a>
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "skyline"
    }

    fn new_shared(&self) -> SharedWindow {
        SharedWindow::new()
    }

    fn logic<'a>(&'a self, shared: Option<&'a SharedWindow>) -> SkylineLogic<'a> {
        SkylineLogic::new(&self.pref_dims, None, None, shared)
    }

    fn finish(&self, logic: SkylineLogic<'_>) -> Self::Local {
        logic.into_points()
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = locals.into_iter().flatten().collect();
        winnow_points(&points, |a, b| dominates(a, b, &self.pref_dims))
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        Planner::skyline_size(qualifying, self.pref_dims.len())
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = rows
            .iter()
            .map(|(tid, c)| {
                let score: f64 = self.pref_dims.iter().map(|&d| c[d]).sum();
                (score, *tid, c.clone(), c.clone())
            })
            .collect();
        winnow_points(&points, |a, b| dominates(a, b, &self.pref_dims))
    }
}

// ---------------------------------------------------------------------------
// Dynamic skyline
// ---------------------------------------------------------------------------

/// Coordinate-transform closure type for [`DynamicSkylineClass`].
type DynFn = Box<dyn Fn(&[f64]) -> Vec<f64> + Send + Sync>;
/// MBR-corner closure type for [`DynamicSkylineClass`].
type DynCornerFn = Box<dyn Fn(&Mbr) -> Vec<f64> + Send + Sync>;

/// The dynamic skyline class (§VII): skyline in the transformed space
/// `x ↦ |x − q|` around a query point `q`, computed without materializing
/// the transform (the MBR corner bound is the per-dimension distance to the
/// nearest face).
pub struct DynamicSkylineClass {
    pref_dims: Vec<usize>,
    transform: DynFn,
    corner: DynCornerFn,
}

impl DynamicSkylineClass {
    /// Dynamic skyline around `query_point` over `pref_dims`.
    ///
    /// # Panics
    /// Panics if `pref_dims` is empty or indexes past `query_point`.
    pub fn new(query_point: &[f64], pref_dims: Vec<usize>) -> Self {
        assert!(
            !pref_dims.is_empty(),
            "dynamic skyline needs at least one preference dimension"
        );
        assert!(
            pref_dims.iter().all(|&d| d < query_point.len()),
            "preference dimension out of range of the query point"
        );
        let q1 = query_point.to_vec();
        let transform: DynFn = Box::new(move |coords: &[f64]| {
            coords
                .iter()
                .enumerate()
                .map(|(d, &x)| (x - q1.get(d).copied().unwrap_or(0.0)).abs())
                .collect()
        });
        let q2 = query_point.to_vec();
        let corner: DynCornerFn = Box::new(move |mbr: &Mbr| {
            (0..mbr.dims())
                .map(|d| {
                    let qd = q2[d];
                    if qd < mbr.min[d] {
                        mbr.min[d] - qd
                    } else if qd > mbr.max[d] {
                        qd - mbr.max[d]
                    } else {
                        0.0
                    }
                })
                .collect()
        });
        DynamicSkylineClass { pref_dims, transform, corner }
    }
}

impl QueryClass for DynamicSkylineClass {
    type Row = (u64, Vec<f64>);
    type Local = Vec<SkyPoint>;
    type Shared = SharedWindow;
    type Logic<'a>
        = SkylineLogic<'a>
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "dynamic-skyline"
    }

    fn new_shared(&self) -> SharedWindow {
        SharedWindow::new()
    }

    fn logic<'a>(&'a self, shared: Option<&'a SharedWindow>) -> SkylineLogic<'a> {
        let transform: &(dyn Fn(&[f64]) -> Vec<f64> + Sync) = &*self.transform;
        let corner: &(dyn Fn(&Mbr) -> Vec<f64> + Sync) = &*self.corner;
        SkylineLogic::new(&self.pref_dims, Some(transform), Some(corner), shared)
    }

    fn finish(&self, logic: SkylineLogic<'_>) -> Self::Local {
        logic.into_points()
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = locals.into_iter().flatten().collect();
        winnow_points(&points, |a, b| dominates(a, b, &self.pref_dims))
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        Planner::skyline_size(qualifying, self.pref_dims.len())
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = rows
            .iter()
            .map(|(tid, c)| {
                let dom = (self.transform)(c);
                let score: f64 = self.pref_dims.iter().map(|&d| dom[d]).sum();
                (score, *tid, dom, c.clone())
            })
            .collect();
        winnow_points(&points, |a, b| dominates(a, b, &self.pref_dims))
    }
}

// ---------------------------------------------------------------------------
// Convex hull
// ---------------------------------------------------------------------------

/// The 2-D convex hull class (§VII): hull vertices of the qualifying
/// tuples projected onto two preference dimensions.
pub struct HullClass {
    dims: (usize, usize),
}

impl HullClass {
    /// Convex hull over the projection onto `dims`.
    ///
    /// # Panics
    /// Panics if the two dimensions coincide.
    pub fn new(dims: (usize, usize)) -> Self {
        assert_ne!(dims.0, dims.1, "hull dimensions must be distinct");
        HullClass { dims }
    }
}

impl QueryClass for HullClass {
    type Row = (u64, [f64; 2]);
    type Local = Vec<(u64, [f64; 2])>;
    type Shared = ();
    type Logic<'a>
        = HullLogic
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "hull"
    }

    fn new_shared(&self) {}

    fn logic<'a>(&'a self, _shared: Option<&'a ()>) -> HullLogic {
        HullLogic::new(self.dims)
    }

    fn finish(&self, logic: HullLogic) -> Self::Local {
        // Chain locally so the merge unions small local hulls, not raw
        // point sets (the hull-of-hulls identity).
        monotone_chain(&logic.into_points())
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let all: Vec<(u64, [f64; 2])> = locals.into_iter().flatten().collect();
        monotone_chain(&all)
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        Planner::skyline_size(qualifying, 2)
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let pts: Vec<(u64, [f64; 2])> = rows
            .iter()
            .map(|(tid, c)| (*tid, [c[self.dims.0], c[self.dims.1]]))
            .collect();
        monotone_chain(&pts)
    }
}

// ---------------------------------------------------------------------------
// Prioritized skyline (p-skyline)
// ---------------------------------------------------------------------------

/// A strict partial order of dimension priorities for p-skyline queries
/// (Mindolin & Chomicki): edges `a OVER b` mean an advantage on `a` excuses
/// any disadvantage on `b`. Stored as the transitive closure over bitmasks;
/// construction rejects cycles, so the relation is a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PriorityGraph {
    dims: Vec<usize>,
    /// `over[i]` bit `j` set ⇔ `dims[i]` has priority over `dims[j]`
    /// (transitively closed).
    over: Vec<u64>,
    /// `covered_by[i]` bit `j` set ⇔ `dims[j]` has priority over `dims[i]`.
    covered_by: Vec<u64>,
}

/// Why a [`PriorityGraph`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PriorityGraphError {
    /// The dimension list was empty.
    Empty,
    /// More than 64 preference dimensions (the bitmask width).
    TooManyDims(usize),
    /// A dimension appeared twice in the dimension list.
    DuplicateDim(usize),
    /// A priority edge referenced a dimension outside the list.
    UnknownDim(usize),
    /// The priority edges form a cycle, so they are not a strict partial
    /// order.
    Cycle,
}

impl fmt::Display for PriorityGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityGraphError::Empty => write!(f, "priority graph needs at least one dimension"),
            PriorityGraphError::TooManyDims(n) => {
                write!(f, "priority graph supports at most 64 dimensions, got {n}")
            }
            PriorityGraphError::DuplicateDim(d) => {
                write!(f, "dimension {d} listed more than once")
            }
            PriorityGraphError::UnknownDim(d) => {
                write!(f, "priority edge references dimension {d}, which is not in the dimension list")
            }
            PriorityGraphError::Cycle => write!(f, "priority edges form a cycle"),
        }
    }
}

impl std::error::Error for PriorityGraphError {}

impl PriorityGraph {
    /// Builds the priority relation over `dims` from `edges` of the form
    /// `(dominant dim, dominated dim)`, taking the transitive closure and
    /// rejecting cycles. An empty edge list yields plain Pareto dominance.
    pub fn new(dims: Vec<usize>, edges: &[(usize, usize)]) -> Result<Self, PriorityGraphError> {
        if dims.is_empty() {
            return Err(PriorityGraphError::Empty);
        }
        if dims.len() > 64 {
            return Err(PriorityGraphError::TooManyDims(dims.len()));
        }
        let mut seen = HashSet::new();
        for &d in &dims {
            if !seen.insert(d) {
                return Err(PriorityGraphError::DuplicateDim(d));
            }
        }
        let pos = |d: usize| dims.iter().position(|&x| x == d);
        let n = dims.len();
        let mut over = vec![0u64; n];
        for &(a, b) in edges {
            let ia = pos(a).ok_or(PriorityGraphError::UnknownDim(a))?;
            let ib = pos(b).ok_or(PriorityGraphError::UnknownDim(b))?;
            over[ia] |= 1 << ib;
        }
        // Bitset Floyd–Warshall: after considering intermediate `k`,
        // `over[i]` holds every position reachable through nodes ≤ k.
        for k in 0..n {
            for i in 0..n {
                if over[i] & (1 << k) != 0 {
                    over[i] |= over[k];
                }
            }
        }
        if (0..n).any(|i| over[i] & (1 << i) != 0) {
            return Err(PriorityGraphError::Cycle);
        }
        let covered_by = (0..n)
            .map(|i| {
                (0..n).fold(0u64, |m, j| if over[j] & (1 << i) != 0 { m | (1 << j) } else { m })
            })
            .collect();
        Ok(PriorityGraph { dims, over, covered_by })
    }

    /// The preference dimensions, in declaration order.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// `true` if the relation has no priority edges (plain Pareto).
    pub fn is_pareto(&self) -> bool {
        self.over.iter().all(|&m| m == 0)
    }

    /// Number of *source* dimensions (not dominated by any other) — the
    /// relation's effective width, used for answer-size estimation.
    pub fn source_dims(&self) -> usize {
        self.covered_by.iter().filter(|&&m| m == 0).count()
    }

    /// The p-skyline dominance `a ≻_Γ b`: `a` is strictly better somewhere,
    /// and every dimension where `a` is worse is excused by some dimension
    /// where `a` is better that has priority over it. With no edges this
    /// is exactly Pareto dominance.
    pub fn dominates(&self, a: &[f64], b: &[f64]) -> bool {
        let mut better = 0u64;
        let mut worse = 0u64;
        for (i, &d) in self.dims.iter().enumerate() {
            if a[d] < b[d] {
                better |= 1 << i;
            } else if a[d] > b[d] {
                worse |= 1 << i;
            }
        }
        if better == 0 {
            return false;
        }
        let mut w = worse;
        while w != 0 {
            let i = w.trailing_zeros() as usize;
            if better & self.covered_by[i] == 0 {
                return false;
            }
            w &= w - 1;
        }
        true
    }
}

/// The prioritized skyline class: winnow under the p-skyline relation of a
/// [`PriorityGraph`]. The kernel's heap score is not order-compatible with
/// `≻_Γ`, so workers accept a superset and the merge winnows it exact —
/// sound because `≻_Γ` is transitive and pruning only ever removes
/// dominated candidates.
pub struct PSkylineClass {
    graph: PriorityGraph,
}

impl PSkylineClass {
    /// Prioritized skyline under `graph`.
    pub fn new(graph: PriorityGraph) -> Self {
        PSkylineClass { graph }
    }

    /// The priority relation this class winnows under.
    pub fn graph(&self) -> &PriorityGraph {
        &self.graph
    }
}

impl QueryClass for PSkylineClass {
    type Row = (u64, Vec<f64>);
    type Local = Vec<SkyPoint>;
    type Shared = SharedWindow;
    type Logic<'a>
        = PSkylineLogic<'a>
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "p-skyline"
    }

    fn new_shared(&self) -> SharedWindow {
        SharedWindow::new()
    }

    fn logic<'a>(&'a self, shared: Option<&'a SharedWindow>) -> PSkylineLogic<'a> {
        PSkylineLogic::new(&self.graph, shared)
    }

    fn finish(&self, logic: PSkylineLogic<'_>) -> Self::Local {
        logic.into_points()
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = locals.into_iter().flatten().collect();
        winnow_points(&points, |a, b| self.graph.dominates(a, b))
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        Planner::skyline_size(qualifying, self.graph.source_dims())
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = rows
            .iter()
            .map(|(tid, c)| {
                let score: f64 = self.graph.dims().iter().map(|&d| c[d]).sum();
                (score, *tid, c.clone(), c.clone())
            })
            .collect();
        winnow_points(&points, |a, b| self.graph.dominates(a, b))
    }
}

// ---------------------------------------------------------------------------
// Subspace skyline
// ---------------------------------------------------------------------------

/// The subspace skyline class: the skyline of the data projected onto a
/// dimension subset `U`, with *distinct-value* semantics — tuples that
/// collide on the projection collapse to one representative row (the
/// smallest tid), since they are indistinguishable in the subspace.
pub struct SubspaceSkylineClass {
    dims: Vec<usize>,
}

impl SubspaceSkylineClass {
    /// Skyline in the subspace spanned by `dims`.
    ///
    /// # Panics
    /// Panics if `dims` is empty or contains duplicates.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "subspace skyline needs at least one dimension");
        let mut sorted = dims.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), dims.len(), "subspace dimensions must be distinct");
        SubspaceSkylineClass { dims }
    }

    /// Projects, deduplicates (first occurrence in canonical order wins,
    /// i.e. the smallest tid among equal projections) and keeps the
    /// subspace coordinates.
    fn project(&self, kept: Vec<(u64, Vec<f64>)>) -> Vec<(u64, Vec<f64>)> {
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        kept.into_iter()
            .filter_map(|(tid, coords)| {
                let proj: Vec<f64> = self.dims.iter().map(|&d| coords[d]).collect();
                let key: Vec<u64> = proj.iter().map(|v| v.to_bits()).collect();
                seen.insert(key).then_some((tid, proj))
            })
            .collect()
    }
}

impl QueryClass for SubspaceSkylineClass {
    type Row = (u64, Vec<f64>);
    type Local = Vec<SkyPoint>;
    type Shared = SharedWindow;
    type Logic<'a>
        = SkylineLogic<'a>
    where
        Self: 'a;

    fn name(&self) -> &'static str {
        "subspace-skyline"
    }

    fn new_shared(&self) -> SharedWindow {
        SharedWindow::new()
    }

    fn logic<'a>(&'a self, shared: Option<&'a SharedWindow>) -> SkylineLogic<'a> {
        SkylineLogic::new(&self.dims, None, None, shared)
    }

    fn finish(&self, logic: SkylineLogic<'_>) -> Self::Local {
        logic.into_points()
    }

    fn merge(&self, locals: Vec<Self::Local>) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = locals.into_iter().flatten().collect();
        // Equal projections never strictly dominate each other, so every
        // duplicate survives the winnow; the projection step then collapses
        // them deterministically.
        let kept = winnow_points(&points, |a, b| dominates(a, b, &self.dims));
        self.project(kept)
    }

    fn expected_results(&self, qualifying: f64) -> f64 {
        Planner::skyline_size(qualifying, self.dims.len())
    }

    fn oracle(&self, rows: &[(u64, Vec<f64>)]) -> Vec<Self::Row> {
        let points: Vec<SkyPoint> = rows
            .iter()
            .map(|(tid, c)| {
                let score: f64 = self.dims.iter().map(|&d| c[d]).sum();
                (score, *tid, c.clone(), c.clone())
            })
            .collect();
        let kept = winnow_points(&points, |a, b| dominates(a, b, &self.dims));
        self.project(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_graph_rejects_bad_inputs() {
        assert_eq!(PriorityGraph::new(vec![], &[]), Err(PriorityGraphError::Empty));
        assert_eq!(
            PriorityGraph::new(vec![0, 0], &[]),
            Err(PriorityGraphError::DuplicateDim(0))
        );
        assert_eq!(
            PriorityGraph::new(vec![0, 1], &[(0, 2)]),
            Err(PriorityGraphError::UnknownDim(2))
        );
        assert_eq!(
            PriorityGraph::new(vec![0, 1], &[(0, 1), (1, 0)]),
            Err(PriorityGraphError::Cycle)
        );
        assert_eq!(PriorityGraph::new(vec![0], &[(0, 0)]), Err(PriorityGraphError::Cycle));
    }

    #[test]
    fn empty_graph_is_pareto() {
        let g = PriorityGraph::new(vec![0, 1, 2], &[]).expect("valid");
        assert!(g.is_pareto());
        assert_eq!(g.source_dims(), 3);
        let a = [1.0, 5.0, 2.0];
        let b = [2.0, 5.0, 3.0];
        assert_eq!(g.dominates(&a, &b), dominates(&a, &b, &[0, 1, 2]));
        assert_eq!(g.dominates(&b, &a), dominates(&b, &a, &[0, 1, 2]));
        assert!(!g.dominates(&a, &a), "equal points never dominate");
    }

    #[test]
    fn priority_excuses_dominated_dimensions() {
        // 0 OVER 1: an advantage on 0 excuses any disadvantage on 1.
        let g = PriorityGraph::new(vec![0, 1], &[(0, 1)]).expect("valid");
        assert!(g.dominates(&[1.0, 9.0], &[2.0, 1.0]));
        assert!(!g.dominates(&[2.0, 1.0], &[1.0, 9.0]), "worse on the prioritized dim");
        // Equal on 0, better on 1: still dominates (Pareto case).
        assert!(g.dominates(&[1.0, 0.5], &[1.0, 9.0]));
        assert_eq!(g.source_dims(), 1);
    }

    #[test]
    fn priority_closure_is_transitive() {
        // 0 OVER 1, 1 OVER 2 ⇒ 0 OVER 2.
        let g = PriorityGraph::new(vec![0, 1, 2], &[(0, 1), (1, 2)]).expect("valid");
        assert!(g.dominates(&[1.0, 5.0, 9.0], &[2.0, 5.0, 1.0]), "advantage on 0 excuses 2");
        // Cycle through the closure is rejected.
        assert_eq!(
            PriorityGraph::new(vec![0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
            Err(PriorityGraphError::Cycle)
        );
    }

    #[test]
    fn winnow_is_partition_independent() {
        let pts = [
            (3.0, 1, vec![1.0, 2.0], vec![1.0, 2.0]),
            (3.0, 2, vec![2.0, 1.0], vec![2.0, 1.0]),
            (6.0, 3, vec![2.0, 4.0], vec![2.0, 4.0]),
        ];
        let dims = [0usize, 1];
        let rows = winnow_points(&pts, |a, b| dominates(a, b, &dims));
        assert_eq!(rows, vec![(1, vec![1.0, 2.0]), (2, vec![2.0, 1.0])]);
    }

    #[test]
    fn subspace_dedup_keeps_smallest_tid() {
        let class = SubspaceSkylineClass::new(vec![0]);
        let local: Vec<SkyPoint> = vec![
            (1.0, 7, vec![1.0, 9.0], vec![1.0, 9.0]),
            (1.0, 3, vec![1.0, 4.0], vec![1.0, 4.0]),
            (2.0, 1, vec![2.0, 0.0], vec![2.0, 0.0]),
        ];
        let rows = class.merge(vec![local]);
        // tid 3 and 7 collide on the projection; 3 wins. tid 1 is dominated
        // in the subspace.
        assert_eq!(rows, vec![(3, vec![1.0])]);
    }
}
