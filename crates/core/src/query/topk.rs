//! Top-k processing using P-Cube (§V-B): best-first search ordered by the
//! ranking function's lower bound, with signature-based boolean pruning.

use pcube_cube::{normalize, Predicate, Selection};

use crate::pcube::PCubeDb;
use crate::query::budget::{CancelToken, Governor, Progress, QueryBudget, QueryOutcome};
use crate::query::kernel::{run_kernel, KernelRun, SavedLists, TopKLogic};
use crate::query::{seed_root, Candidate, CandidateHeap, HeapEntry, QueryStats, ResultEntry};
use crate::rank::RankingFunction;
use crate::store::BooleanProbe;

/// Builds the per-query governor, or `None` when the budget is unlimited
/// and no cancel token is attached (the ungoverned fast path: zero checks
/// per pop). The ledger baseline is `before` — taken ahead of probe
/// construction, so eager assembly's loads are charged to the budget too.
pub(crate) fn make_governor(
    db: &PCubeDb,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> Option<Governor> {
    if budget.is_unlimited() && cancel.is_none() {
        return None;
    }
    let mut gov = Governor::new(budget);
    if let Some(c) = cancel {
        gov = gov.with_cancel(c.clone());
    }
    Some(gov.with_ledger(db.stats().clone(), db.stats().total_reads()))
}

/// Folds a kernel run's stop (if any) into the stats' outcome. Call after
/// `stats.io` is final so `blocks_used` matches the reported I/O.
pub(crate) fn apply_kernel_outcome(
    stats: &mut QueryStats,
    run: &KernelRun,
    results_so_far: usize,
) {
    if let Some(reason) = run.stop {
        stats.outcome = QueryOutcome::Partial {
            reason,
            progress: Progress {
                pops: run.pops,
                nodes_expanded: run.nodes_expanded,
                results_so_far,
                blocks_used: stats.io.total_reads(),
                frontier: run.frontier,
                overshoot_seconds: run.overshoot_seconds,
                max_pop_seconds: run.max_pop_seconds,
            },
        };
    }
}

/// Saved lists for incremental drill-down/roll-up of a top-k query. The
/// `d_list` holds the remaining search frontier at the moment the k-th
/// result was found.
pub struct TopKState {
    selection: Selection,
    k: usize,
    result: Vec<ResultEntry>,
    b_list: Vec<HeapEntry>,
    d_list: Vec<HeapEntry>,
}

impl TopKState {
    /// The boolean selection this state answers.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }
}

/// A completed top-k query.
pub struct TopKOutcome {
    /// `(tid, coordinates, score)` in ascending score order, at most `k`
    /// entries (fewer if the selection matches fewer tuples).
    pub topk: Vec<(u64, Vec<f64>, f64)>,
    /// Execution metrics.
    pub stats: QueryStats,
    /// Saved lists for incremental follow-ups.
    pub state: TopKState,
}

/// Answers `SELECT top-k FROM R WHERE selection ORDER BY f` with the
/// signature-guided Algorithm 1.
///
/// Because candidates pop in ascending lower-bound order and tuples carry
/// exact scores, the first `k` qualifying tuples popped *are* the top-k —
/// the search stops there and saves the remaining frontier for drill-downs.
pub fn topk_query(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    eager_assembly: bool,
) -> TopKOutcome {
    topk_query_governed(db, selection, k, f, eager_assembly, &QueryBudget::unlimited(), None)
}

/// [`topk_query`] under a [`QueryBudget`] and optional [`CancelToken`]:
/// stops cooperatively at pop granularity and reports a
/// [`QueryOutcome::Partial`] when cut short. Because the serial engine
/// accepts tuples in ascending score order, a partial top-k is always a
/// prefix of the true top-k.
pub fn topk_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    eager_assembly: bool,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> TopKOutcome {
    // Ledger captured before probe construction: eager assembly's loads
    // count toward the query (and toward the block budget).
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let probe = db.pcube().probe(&normalize(selection), eager_assembly);
    topk_query_inner(db, selection, k, f, probe, started, before, gov.as_mut())
}

/// Like [`topk_query`] but with a caller-supplied boolean probe (see
/// [`crate::PCube::probe_bloom`]).
pub fn topk_query_probed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    probe: BooleanProbe<'_>,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    topk_query_inner(db, selection, k, f, probe, started, before, None)
}

#[allow(clippy::too_many_arguments)]
fn topk_query_inner(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    mut probe: BooleanProbe<'_>,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
    gov: Option<&mut Governor>,
) -> TopKOutcome {
    let selection = normalize(selection);
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut state = TopKState {
        selection,
        k,
        result: Vec::new(),
        b_list: Vec::new(),
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before, gov);
    finish(state, stats)
}

/// Strengthens the previous query with one more predicate; the candidate
/// heap restarts from `result ∪ d_list` (Lemma 2).
pub fn topk_drill_down(
    db: &PCubeDb,
    prev: TopKState,
    extra: Predicate,
    f: &dyn RankingFunction,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut selection = prev.selection.clone();
    selection.push(extra);
    let selection = normalize(&selection);
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.d_list {
        heap.push_entry(e);
    }
    let mut state = TopKState {
        selection,
        k: prev.k,
        result: Vec::new(),
        b_list: prev.b_list,
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before, None);
    finish(state, stats)
}

/// Relaxes the previous query by dropping predicates on `dim`; the heap
/// restarts from `result ∪ b_list` (Lemma 2).
pub fn topk_roll_up(
    db: &PCubeDb,
    prev: TopKState,
    dim: usize,
    f: &dyn RankingFunction,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection: Selection =
        prev.selection.iter().copied().filter(|p| p.dim != dim).collect();
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.b_list {
        heap.push_entry(e);
    }
    let mut state = TopKState {
        selection,
        k: prev.k,
        result: Vec::new(),
        b_list: Vec::new(),
        // The old frontier's lower bounds are no smaller than the old k-th
        // score, and the old results still qualify after relaxation, so the
        // frontier cannot produce a new top-k member (see Lemma 2); it is
        // kept so later drill-downs retain full coverage.
        d_list: prev.d_list,
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before, None);
    finish(state, stats)
}

fn finish(mut state: TopKState, mut stats: QueryStats) -> TopKOutcome {
    // Canonical result order: ascending `(score, tid)`. The heap's
    // deterministic tie-break already pops tuples this way, so the sort is
    // a no-op guard — but it is the contract the parallel engine's merge
    // relies on for byte-identical results.
    let t_merge = std::time::Instant::now();
    state.result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    let topk = state.result.iter().map(|r| (r.tid, r.coords.clone(), r.score)).collect();
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    TopKOutcome { topk, stats, state }
}

#[allow(clippy::too_many_arguments)]
fn run(
    db: &PCubeDb,
    probe: &mut BooleanProbe<'_>,
    heap: &mut CandidateHeap,
    state: &mut TopKState,
    f: &dyn RankingFunction,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
    gov: Option<&mut Governor>,
) -> QueryStats {
    let mut stats = QueryStats::default();
    let mut lists = SavedLists {
        b_list: std::mem::take(&mut state.b_list),
        d_list: std::mem::take(&mut state.d_list),
    };
    let mut logic = TopKLogic::serial(state.k, f);
    // Everything since `started` was setup: probe construction (+ eager
    // assembly), heap seeding, governor arming — the pin stage.
    let pin_seconds = started.elapsed().as_secs_f64();
    let kernel_run =
        run_kernel(db, &state.selection, probe, heap, &mut logic, Some(&mut lists), gov);
    stats.stages = kernel_run.stages;
    stats.stages.pin_seconds += pin_seconds;
    stats.nodes_expanded = kernel_run.nodes_expanded;
    state.result = logic.into_result();
    state.b_list = lists.b_list;
    state.d_list = lists.d_list;

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    apply_kernel_outcome(&mut stats, &kernel_run, state.result.len());
    stats
}
