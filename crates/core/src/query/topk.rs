//! Top-k processing using P-Cube (§V-B): best-first search ordered by the
//! ranking function's lower bound, with signature-based boolean pruning.

use pcube_cube::{normalize, Predicate, Selection};

use crate::pcube::PCubeDb;
use crate::query::kernel::{run_kernel, SavedLists, TopKLogic};
use crate::query::{seed_root, Candidate, CandidateHeap, HeapEntry, QueryStats, ResultEntry};
use crate::rank::RankingFunction;
use crate::store::BooleanProbe;

/// Saved lists for incremental drill-down/roll-up of a top-k query. The
/// `d_list` holds the remaining search frontier at the moment the k-th
/// result was found.
pub struct TopKState {
    selection: Selection,
    k: usize,
    result: Vec<ResultEntry>,
    b_list: Vec<HeapEntry>,
    d_list: Vec<HeapEntry>,
}

impl TopKState {
    /// The boolean selection this state answers.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }
}

/// A completed top-k query.
pub struct TopKOutcome {
    /// `(tid, coordinates, score)` in ascending score order, at most `k`
    /// entries (fewer if the selection matches fewer tuples).
    pub topk: Vec<(u64, Vec<f64>, f64)>,
    /// Execution metrics.
    pub stats: QueryStats,
    /// Saved lists for incremental follow-ups.
    pub state: TopKState,
}

/// Answers `SELECT top-k FROM R WHERE selection ORDER BY f` with the
/// signature-guided Algorithm 1.
///
/// Because candidates pop in ascending lower-bound order and tuples carry
/// exact scores, the first `k` qualifying tuples popped *are* the top-k —
/// the search stops there and saves the remaining frontier for drill-downs.
pub fn topk_query(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    eager_assembly: bool,
) -> TopKOutcome {
    // Ledger captured before probe construction: eager assembly's loads
    // count toward the query.
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let probe = db.pcube().probe(&normalize(selection), eager_assembly);
    topk_query_inner(db, selection, k, f, probe, started, before)
}

/// Like [`topk_query`] but with a caller-supplied boolean probe (see
/// [`crate::PCube::probe_bloom`]).
pub fn topk_query_probed(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    probe: BooleanProbe<'_>,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    topk_query_inner(db, selection, k, f, probe, started, before)
}

fn topk_query_inner(
    db: &PCubeDb,
    selection: &Selection,
    k: usize,
    f: &dyn RankingFunction,
    mut probe: BooleanProbe<'_>,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
) -> TopKOutcome {
    let selection = normalize(selection);
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut state = TopKState {
        selection,
        k,
        result: Vec::new(),
        b_list: Vec::new(),
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before);
    finish(state, stats)
}

/// Strengthens the previous query with one more predicate; the candidate
/// heap restarts from `result ∪ d_list` (Lemma 2).
pub fn topk_drill_down(
    db: &PCubeDb,
    prev: TopKState,
    extra: Predicate,
    f: &dyn RankingFunction,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut selection = prev.selection.clone();
    selection.push(extra);
    let selection = normalize(&selection);
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.d_list {
        heap.push_entry(e);
    }
    let mut state = TopKState {
        selection,
        k: prev.k,
        result: Vec::new(),
        b_list: prev.b_list,
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before);
    finish(state, stats)
}

/// Relaxes the previous query by dropping predicates on `dim`; the heap
/// restarts from `result ∪ b_list` (Lemma 2).
pub fn topk_roll_up(
    db: &PCubeDb,
    prev: TopKState,
    dim: usize,
    f: &dyn RankingFunction,
) -> TopKOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection: Selection =
        prev.selection.iter().copied().filter(|p| p.dim != dim).collect();
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.b_list {
        heap.push_entry(e);
    }
    let mut state = TopKState {
        selection,
        k: prev.k,
        result: Vec::new(),
        b_list: Vec::new(),
        // The old frontier's lower bounds are no smaller than the old k-th
        // score, and the old results still qualify after relaxation, so the
        // frontier cannot produce a new top-k member (see Lemma 2); it is
        // kept so later drill-downs retain full coverage.
        d_list: prev.d_list,
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, f, started, before);
    finish(state, stats)
}

fn finish(mut state: TopKState, stats: QueryStats) -> TopKOutcome {
    // Canonical result order: ascending `(score, tid)`. The heap's
    // deterministic tie-break already pops tuples this way, so the sort is
    // a no-op guard — but it is the contract the parallel engine's merge
    // relies on for byte-identical results.
    state.result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    let topk = state.result.iter().map(|r| (r.tid, r.coords.clone(), r.score)).collect();
    TopKOutcome { topk, stats, state }
}

fn run(
    db: &PCubeDb,
    probe: &mut BooleanProbe<'_>,
    heap: &mut CandidateHeap,
    state: &mut TopKState,
    f: &dyn RankingFunction,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
) -> QueryStats {
    let mut stats = QueryStats::default();
    let mut lists = SavedLists {
        b_list: std::mem::take(&mut state.b_list),
        d_list: std::mem::take(&mut state.d_list),
    };
    let mut logic = TopKLogic::serial(state.k, f);
    stats.nodes_expanded =
        run_kernel(db, &state.selection, probe, heap, &mut logic, Some(&mut lists));
    state.result = logic.into_result();
    state.b_list = lists.b_list;
    state.d_list = lists.d_list;

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    stats
}
