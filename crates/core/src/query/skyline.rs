//! Skyline processing using P-Cube (§V-A) with incremental drill-down and
//! roll-up (§V-C).

use pcube_cube::{normalize, Predicate, Selection};
use pcube_rtree::{DecodedEntry, Path};

use crate::pcube::PCubeDb;
use crate::query::{dominates, seed_root, Candidate, CandidateHeap, HeapEntry, QueryStats};
use crate::rank::{MinCoordSum, RankingFunction};
use crate::store::BooleanProbe;

/// One discovered skyline object.
#[derive(Debug, Clone)]
struct ResultEntry {
    tid: u64,
    coords: Vec<f64>,
    path: Path,
    score: f64,
}

/// The three lists Algorithm 1 maintains, kept after the query so that
/// drill-down and roll-up can rebuild the candidate heap without starting
/// from the root (Lemma 2).
pub struct SkylineState {
    selection: Selection,
    pref_dims: Vec<usize>,
    result: Vec<ResultEntry>,
    b_list: Vec<HeapEntry>,
    d_list: Vec<HeapEntry>,
}

impl SkylineState {
    /// The boolean selection this state answers.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Entries pruned by boolean predicates (kept for roll-up).
    pub fn b_list_len(&self) -> usize {
        self.b_list.len()
    }

    /// Entries pruned by domination (kept for drill-down).
    pub fn d_list_len(&self) -> usize {
        self.d_list.len()
    }
}

/// A completed skyline query: the result, execution metrics, and the saved
/// state for follow-up drill-down/roll-up queries.
pub struct SkylineOutcome {
    /// Skyline tuples as `(tid, preference coordinates)`, in ascending
    /// coordinate-sum order.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics.
    pub stats: QueryStats,
    /// Saved lists for incremental follow-ups.
    pub state: SkylineState,
}

/// Answers `SELECT skylines FROM R WHERE selection PREFERENCE BY pref_dims`
/// with the signature-guided Algorithm 1.
///
/// `eager_assembly` controls multi-predicate probes (see
/// [`crate::store::BooleanProbe`]).
pub fn skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    eager_assembly: bool,
) -> SkylineOutcome {
    // Capture the clock and ledger before probe construction so that eager
    // assembly's signature loads are part of the measured query cost.
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let probe = db.pcube().probe(&normalize(selection), eager_assembly);
    skyline_query_inner(db, selection, pref_dims, probe, started, before)
}

/// Like [`skyline_query`] but with a caller-supplied boolean probe —
/// used to run the search under alternative pruning structures (e.g. the
/// lossy Bloom probes of §VII via [`crate::PCube::probe_bloom`]).
pub fn skyline_query_probed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    probe: BooleanProbe<'_>,
) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    skyline_query_inner(db, selection, pref_dims, probe, started, before)
}

fn skyline_query_inner(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    mut probe: BooleanProbe<'_>,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
) -> SkylineOutcome {
    let selection = normalize(selection);
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut state = SkylineState {
        selection,
        pref_dims: pref_dims.to_vec(),
        result: Vec::new(),
        b_list: Vec::new(),
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before);
    finish(state, stats)
}

/// Strengthens the previous query with one more predicate, reconstructing
/// the candidate heap as `result ∪ d_list` (Lemma 2).
pub fn skyline_drill_down(db: &PCubeDb, prev: SkylineState, extra: Predicate) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut selection = prev.selection.clone();
    selection.push(extra);
    let selection = normalize(&selection);
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.d_list {
        heap.push_entry(e);
    }
    let mut state = SkylineState {
        selection,
        pref_dims: prev.pref_dims,
        result: Vec::new(),
        // Entries that failed the old (weaker) predicates still fail.
        b_list: prev.b_list,
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before);
    finish(state, stats)
}

/// Relaxes the previous query by dropping every predicate on `dim`,
/// reconstructing the candidate heap as `result ∪ b_list` (Lemma 2).
pub fn skyline_roll_up(db: &PCubeDb, prev: SkylineState, dim: usize) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection: Selection =
        prev.selection.iter().copied().filter(|p| p.dim != dim).collect();
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.b_list {
        heap.push_entry(e);
    }
    let mut state = SkylineState {
        selection,
        pref_dims: prev.pref_dims,
        result: Vec::new(),
        b_list: Vec::new(),
        // Old dominated entries stay dominated: their dominators satisfied
        // the stricter old predicates, hence also the relaxed ones.
        d_list: prev.d_list,
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before);
    finish(state, stats)
}

fn finish(mut state: SkylineState, stats: QueryStats) -> SkylineOutcome {
    // Canonical result order: ascending `(coordinate sum, tid)`, the same
    // key the parallel engine merges by (BBS already emits ascending
    // scores; the sort pins the order at ties).
    state.result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    let skyline = state.result.iter().map(|r| (r.tid, r.coords.clone())).collect();
    SkylineOutcome { skyline, stats, state }
}

/// The main loop of Algorithm 1, instantiated for skylines.
fn run(
    db: &PCubeDb,
    probe: &mut BooleanProbe<'_>,
    heap: &mut CandidateHeap,
    state: &mut SkylineState,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
) -> QueryStats {
    let f = MinCoordSum::new(state.pref_dims.clone());
    let mut stats = QueryStats::default();

    while let Some(entry) = heap.pop() {
        // prune(): domination first (lines 14–16), then boolean (17–19).
        if dominated_entry(&entry, state) {
            state.d_list.push(entry);
            continue;
        }
        if !probe.contains(entry.cand.path()) {
            state.b_list.push(entry);
            continue;
        }
        match entry.cand {
            Candidate::Tuple { tid, path, coords } => {
                // A lossy probe (Bloom, §VII) may pass non-qualifying
                // tuples; verify against the base table (one counted random
                // access, like minimal probing) before emitting.
                if probe.is_lossy() && !state.selection.is_empty() {
                    let codes = db.relation().fetch(tid);
                    if !state.selection.iter().all(|p| codes[p.dim] == p.value) {
                        state.b_list.push(HeapEntry {
                            score: entry.score,
                            seq: entry.seq,
                            cand: Candidate::Tuple { tid, path, coords },
                        });
                        continue;
                    }
                }
                let score = entry.score;
                state.result.push(ResultEntry { tid, coords, path, score });
            }
            Candidate::Node { pid, path, .. } => {
                let node = db.rtree().read_node(pid);
                stats.nodes_expanded += 1;
                for (slot, child) in node.entries {
                    let child_path = path.child(slot as u16 + 1);
                    let (cand, score) = match child {
                        DecodedEntry::Tuple { tid, coords } => {
                            let s = f.score(&coords);
                            (Candidate::Tuple { tid, path: child_path, coords }, s)
                        }
                        DecodedEntry::Child { child, mbr } => {
                            let s = f.lower_bound(&mbr);
                            (Candidate::Node { pid: child, path: child_path, mbr }, s)
                        }
                    };
                    // Lines 10–12: prune before inserting to keep the heap
                    // (and memory) small.
                    let e = HeapEntry { score, seq: 0, cand };
                    if dominated_entry(&e, state) {
                        state.d_list.push(e);
                    } else if !probe.contains(e.cand.path()) {
                        state.b_list.push(e);
                    } else {
                        heap.push(e.score, e.cand);
                    }
                }
            }
        }
    }

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    stats
}

/// Domination pruning: a tuple is pruned if some discovered skyline point
/// dominates it; a node is pruned if some skyline point dominates its lower
/// corner (then it dominates everything inside — the BBS rule).
fn dominated_entry(entry: &HeapEntry, state: &SkylineState) -> bool {
    let probe_point: &[f64] = match &entry.cand {
        Candidate::Tuple { coords, .. } => coords,
        Candidate::Node { mbr, .. } => &mbr.min,
    };
    state
        .result
        .iter()
        .any(|r| dominates(&r.coords, probe_point, &state.pref_dims))
}
