//! Skyline processing using P-Cube (§V-A) with incremental drill-down and
//! roll-up (§V-C).

use pcube_cube::{normalize, Predicate, Selection};

use crate::pcube::PCubeDb;
use crate::query::budget::{CancelToken, Governor, QueryBudget};
use crate::query::kernel::{run_kernel, SavedLists, SkylineLogic};
use crate::query::topk::{apply_kernel_outcome, make_governor};
use crate::query::{seed_root, Candidate, CandidateHeap, HeapEntry, QueryStats, ResultEntry};
use crate::store::BooleanProbe;

/// The three lists Algorithm 1 maintains, kept after the query so that
/// drill-down and roll-up can rebuild the candidate heap without starting
/// from the root (Lemma 2).
pub struct SkylineState {
    selection: Selection,
    pref_dims: Vec<usize>,
    result: Vec<ResultEntry>,
    b_list: Vec<HeapEntry>,
    d_list: Vec<HeapEntry>,
}

impl SkylineState {
    /// The boolean selection this state answers.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Entries pruned by boolean predicates (kept for roll-up).
    pub fn b_list_len(&self) -> usize {
        self.b_list.len()
    }

    /// Entries pruned by domination (kept for drill-down).
    pub fn d_list_len(&self) -> usize {
        self.d_list.len()
    }
}

/// A completed skyline query: the result, execution metrics, and the saved
/// state for follow-up drill-down/roll-up queries.
pub struct SkylineOutcome {
    /// Skyline tuples as `(tid, preference coordinates)`, in ascending
    /// coordinate-sum order.
    pub skyline: Vec<(u64, Vec<f64>)>,
    /// Execution metrics.
    pub stats: QueryStats,
    /// Saved lists for incremental follow-ups.
    pub state: SkylineState,
}

/// Answers `SELECT skylines FROM R WHERE selection PREFERENCE BY pref_dims`
/// with the signature-guided Algorithm 1.
///
/// `eager_assembly` controls multi-predicate probes (see
/// [`crate::store::BooleanProbe`]).
pub fn skyline_query(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    eager_assembly: bool,
) -> SkylineOutcome {
    skyline_query_governed(db, selection, pref_dims, eager_assembly, &QueryBudget::unlimited(), None)
}

/// [`skyline_query`] under a [`QueryBudget`] and optional [`CancelToken`].
/// When cut short, every accepted point is a true skyline member (BBS
/// accepts only never-dominated points), so a partial skyline is a sound
/// subset of the full answer.
pub fn skyline_query_governed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    eager_assembly: bool,
    budget: &QueryBudget,
    cancel: Option<&CancelToken>,
) -> SkylineOutcome {
    // Capture the clock and ledger before probe construction so that eager
    // assembly's signature loads are part of the measured query cost (and
    // of the block budget).
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut gov = make_governor(db, budget, cancel);
    let probe = db.pcube().probe(&normalize(selection), eager_assembly);
    skyline_query_inner(db, selection, pref_dims, probe, started, before, gov.as_mut())
}

/// Like [`skyline_query`] but with a caller-supplied boolean probe —
/// used to run the search under alternative pruning structures (e.g. the
/// lossy Bloom probes of §VII via [`crate::PCube::probe_bloom`]).
pub fn skyline_query_probed(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    probe: BooleanProbe<'_>,
) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    skyline_query_inner(db, selection, pref_dims, probe, started, before, None)
}

fn skyline_query_inner(
    db: &PCubeDb,
    selection: &Selection,
    pref_dims: &[usize],
    mut probe: BooleanProbe<'_>,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
    gov: Option<&mut Governor>,
) -> SkylineOutcome {
    let selection = normalize(selection);
    let mut heap = CandidateHeap::new();
    seed_root(db, &mut heap);
    let mut state = SkylineState {
        selection,
        pref_dims: pref_dims.to_vec(),
        result: Vec::new(),
        b_list: Vec::new(),
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before, gov);
    finish(state, stats)
}

/// Strengthens the previous query with one more predicate, reconstructing
/// the candidate heap as `result ∪ d_list` (Lemma 2).
pub fn skyline_drill_down(db: &PCubeDb, prev: SkylineState, extra: Predicate) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let mut selection = prev.selection.clone();
    selection.push(extra);
    let selection = normalize(&selection);
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.d_list {
        heap.push_entry(e);
    }
    let mut state = SkylineState {
        selection,
        pref_dims: prev.pref_dims,
        result: Vec::new(),
        // Entries that failed the old (weaker) predicates still fail.
        b_list: prev.b_list,
        d_list: Vec::new(),
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before, None);
    finish(state, stats)
}

/// Relaxes the previous query by dropping every predicate on `dim`,
/// reconstructing the candidate heap as `result ∪ b_list` (Lemma 2).
pub fn skyline_roll_up(db: &PCubeDb, prev: SkylineState, dim: usize) -> SkylineOutcome {
    let started = std::time::Instant::now();
    let before = db.stats().snapshot();
    let selection: Selection =
        prev.selection.iter().copied().filter(|p| p.dim != dim).collect();
    let mut probe = db.pcube().probe(&selection, false);
    let mut heap = CandidateHeap::new();
    for r in &prev.result {
        heap.push(
            r.score,
            Candidate::Tuple { tid: r.tid, path: r.path.clone(), coords: r.coords.clone() },
        );
    }
    for e in prev.b_list {
        heap.push_entry(e);
    }
    let mut state = SkylineState {
        selection,
        pref_dims: prev.pref_dims,
        result: Vec::new(),
        b_list: Vec::new(),
        // Old dominated entries stay dominated: their dominators satisfied
        // the stricter old predicates, hence also the relaxed ones.
        d_list: prev.d_list,
    };
    let stats = run(db, &mut probe, &mut heap, &mut state, started, before, None);
    finish(state, stats)
}

fn finish(mut state: SkylineState, mut stats: QueryStats) -> SkylineOutcome {
    // Canonical result order: ascending `(coordinate sum, tid)`, the same
    // key the parallel engine merges by (BBS already emits ascending
    // scores; the sort pins the order at ties).
    let t_merge = std::time::Instant::now();
    state.result.sort_by(|a, b| a.score.total_cmp(&b.score).then(a.tid.cmp(&b.tid)));
    let skyline = state.result.iter().map(|r| (r.tid, r.coords.clone())).collect();
    stats.stages.merge_seconds += t_merge.elapsed().as_secs_f64();
    SkylineOutcome { skyline, stats, state }
}

/// The main loop of Algorithm 1, instantiated for skylines.
fn run(
    db: &PCubeDb,
    probe: &mut BooleanProbe<'_>,
    heap: &mut CandidateHeap,
    state: &mut SkylineState,
    started: std::time::Instant,
    before: pcube_storage::IoSnapshot,
    gov: Option<&mut Governor>,
) -> QueryStats {
    let mut stats = QueryStats::default();
    let mut lists = SavedLists {
        b_list: std::mem::take(&mut state.b_list),
        d_list: std::mem::take(&mut state.d_list),
    };
    let mut logic = SkylineLogic::new(&state.pref_dims, None, None, None);
    // Everything since `started` was setup (probe construction, heap
    // seeding, governor arming) — the pin stage.
    let pin_seconds = started.elapsed().as_secs_f64();
    let kernel_run =
        run_kernel(db, &state.selection, probe, heap, &mut logic, Some(&mut lists), gov);
    stats.stages = kernel_run.stages;
    stats.stages.pin_seconds += pin_seconds;
    stats.nodes_expanded = kernel_run.nodes_expanded;
    state.result = logic.into_result();
    state.b_list = lists.b_list;
    state.d_list = lists.d_list;

    stats.peak_heap = heap.peak_size();
    stats.partials_loaded = probe.partials_loaded();
    stats.io = db.stats().snapshot().since(&before);
    stats.cpu_seconds = started.elapsed().as_secs_f64();
    apply_kernel_outcome(&mut stats, &kernel_run, state.result.len());
    stats
}
