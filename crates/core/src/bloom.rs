//! Lossy signature compression with Bloom filters (§VII).
//!
//! "We can build a bloom filter on all SID's whose corresponding entries are
//! 1 in the signature. During query execution, we can load the compressed
//! signature (i.e., a bloom filter), and test a SID upon that."
//!
//! A Bloom filter has no false negatives, so pruning stays *sound*: every
//! qualifying tuple is still found. False positives make the search visit
//! extra R-tree nodes *and* admit non-qualifying tuples as candidate
//! results, so the query processor verifies each candidate tuple against
//! the base table (a counted random access, exactly like minimal probing)
//! whenever the probe [`is lossy`](crate::store::BooleanProbe::is_lossy).
//! The `ablation bloom` runner in the bench crate measures the space-vs-I/O
//! trade.

use pcube_bitmap::BloomFilter;
use pcube_rtree::{Path, Sid};

use crate::signature::Signature;

/// A lossy, fixed-size summary of one cell's signature.
#[derive(Debug, Clone)]
pub struct BloomSignature {
    filter: BloomFilter,
    m_max: usize,
}

impl BloomSignature {
    /// Builds the filter from an exact signature: every set bit contributes
    /// the SID of the child (node or tuple slot) it points at.
    ///
    /// # Panics
    /// Panics if `fp_rate` is outside `(0, 1)`.
    pub fn from_signature(sig: &Signature, fp_rate: f64) -> Self {
        let m = sig.m_max();
        let mut sids: Vec<Sid> = Vec::with_capacity(sig.bit_count());
        for (node_sid, bits) in sig.iter_nodes() {
            let node_path = Path::from_sid(node_sid, m);
            for pos in bits.iter_ones() {
                sids.push(node_path.child(pos as u16 + 1).sid(m));
            }
        }
        let mut filter = BloomFilter::with_rate(sids.len().max(1), fp_rate);
        for sid in sids {
            filter.insert(sid.0);
        }
        BloomSignature { filter, m_max: m }
    }

    /// Tests whether the subtree/tuple at `path` *may* contain data of the
    /// cell. `false` is definitive (sound pruning); `true` may be a false
    /// positive.
    ///
    /// Unlike the exact signature, only the deepest SID is tested — one
    /// filter probe instead of walking every prefix bit (the paper's
    /// intended cheap check). An ancestor miss would have pruned the search
    /// before this path was ever generated.
    pub fn contains(&self, path: &Path) -> bool {
        if path.is_root() {
            return true;
        }
        self.filter.contains(path.sid(self.m_max).0)
    }

    /// Serialized size of the filter in bytes (vs the exact signature's
    /// compressed pages).
    pub fn size_bytes(&self) -> usize {
        self.filter.size_bytes()
    }

    /// Fraction of filter bits set.
    pub fn fill_ratio(&self) -> f64 {
        self.filter.fill_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_signature() -> (Signature, Vec<Path>, Vec<Path>) {
        let present = vec![
            Path(vec![1, 1, 1]),
            Path(vec![1, 2, 1]),
            Path(vec![2, 1, 2]),
            Path(vec![2, 2, 2]),
        ];
        let absent = vec![
            Path(vec![1, 1, 2]),
            Path(vec![1, 2, 2]),
            Path(vec![2, 1, 1]),
            Path(vec![2, 2, 1]),
        ];
        (Signature::from_paths(2, present.iter()), present, absent)
    }

    #[test]
    fn no_false_negatives_on_any_prefix() {
        let (sig, present, _) = sample_signature();
        let bloom = BloomSignature::from_signature(&sig, 0.01);
        for p in &present {
            for depth in 0..=p.depth() {
                let prefix = p.prefix(depth);
                assert!(bloom.contains(&prefix), "prefix {prefix} of {p} must test positive");
            }
        }
    }

    #[test]
    fn bloom_probe_is_sound_superset_of_exact() {
        let (sig, _, absent) = sample_signature();
        let bloom = BloomSignature::from_signature(&sig, 0.01);
        for p in &absent {
            if bloom.contains(p) {
                // Allowed (false positive) — but the exact signature must
                // never be positive where bloom is negative.
                continue;
            }
            assert!(!sig.contains(p), "bloom negative must imply exact negative for {p}");
        }
    }

    #[test]
    fn empty_signature_yields_all_negative_filter() {
        let bloom = BloomSignature::from_signature(&Signature::empty(4), 0.01);
        assert!(bloom.contains(&Path::root()));
        assert!(!bloom.contains(&Path(vec![1])));
        assert_eq!(bloom.fill_ratio(), 0.0);
    }

    #[test]
    fn filter_undercuts_sparse_node_arrays() {
        // The Bloom summary pays ~10 bits per set bit regardless of fanout,
        // while node arrays pay M bits per touched node. With the paper's
        // realistic M (~204) and sparsely populated nodes, the filter wins
        // by a wide margin.
        let m = 204usize;
        let paths: Vec<Path> =
            (1..=m as u16).map(|a| Path(vec![a, 1])).collect();
        let sig = Signature::from_paths(m, paths.iter());
        assert_eq!(sig.node_count(), 1 + m, "root + one sparse node per child");
        let bloom = BloomSignature::from_signature(&sig, 0.01);
        let dense_bytes = sig.node_count() * m.div_ceil(8);
        assert!(
            bloom.size_bytes() * 5 < dense_bytes,
            "bloom {} vs dense {}",
            bloom.size_bytes(),
            dense_bytes
        );
    }
}
