//! Cost-based adaptive query planning (§VI).
//!
//! The paper's evaluation compares four execution strategies for the same
//! preference query — signature-guided P-Cube (Algorithm 1), Boolean-first,
//! Domination-first, and Index-merge — and shows their relative cost flips
//! with the boolean selectivity of the query (the Fig. 13-style crossover):
//! a highly selective predicate is answered cheapest by fetching the few
//! matching tuples through a B+-tree, while an unselective one makes every
//! baseline pay per-candidate random accesses that the signature-pruned
//! branch-and-bound never issues.
//!
//! [`Planner`] implements that comparison as an optimizer: it estimates
//! **block accesses** (the unit every engine's [`QueryStats::io`] ledger
//! already measures) for each candidate engine from statistics the system
//! keeps for free — exact per-value row counts (the same cardinalities the
//! signature leaf bits encode), R-tree node counts / height / fanout, heap
//! page counts, and B+-tree shape — picks the cheapest, and records the
//! whole decision in [`PlanDecision`] so `EXPLAIN`-style output can show
//! its work. Dispatch goes through the [`Executor`] trait, implemented by
//! [`PCubeExecutor`] here and by the baseline engines in the `baselines`
//! crate (the trait lives here, not there, because `baselines` already
//! depends on this crate).
//!
//! The cost formulas (documented per engine on [`Planner::estimate`] and in
//! DESIGN.md §8) use:
//!
//! * `n` — relation cardinality; `P` — heap pages,
//! * `σ` — boolean selectivity, the product of per-predicate exact
//!   frequencies under cross-dimension independence; `q = σ·n` qualifying,
//! * `h`, `m`, `L` — R-tree height, fanout, and leaf count,
//! * `s(q) ≈ ln(1+q)^(d-1)` — the expected skyline size of `q`
//!   independently distributed points in `d` dimensions.

use std::collections::HashMap;

use pcube_cube::{normalize, Selection};
use pcube_storage::CostModel;

use crate::pcube::PCubeDb;
use crate::query::class::{run_class, run_class_scan, run_class_verify_all};
use crate::query::{CancelToken, QueryBudget, QueryClass, QueryStats};
use crate::rank::RankingFunction;

/// The engine families the planner chooses among (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Signature-guided branch-and-bound (Algorithm 1).
    PCube,
    /// Boolean-first: B+-tree (or heap-scan) selection, then an in-memory
    /// preference step.
    BooleanFirst,
    /// Domination-first: BBS / Ranking with minimal-probing verification.
    DominationFirst,
    /// Index-merge: progressive R-tree expansion with selective B+-tree
    /// membership probes (top-k only).
    IndexMerge,
}

impl EngineKind {
    /// Stable display name (used by `EXPLAIN` output and benchmarks).
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::PCube => "pcube",
            EngineKind::BooleanFirst => "boolean-first",
            EngineKind::DominationFirst => "domination-first",
            EngineKind::IndexMerge => "index-merge",
        }
    }
}

/// The preference-query classes the planner costs.
#[derive(Debug, Clone, Copy)]
pub enum QuerySpec<'a> {
    /// `ORDER BY f LIMIT k` over the preference dimensions.
    TopK {
        /// Result size.
        k: usize,
    },
    /// Skyline over the given preference dimensions.
    Skyline {
        /// Compared dimensions.
        pref_dims: &'a [usize],
    },
}

/// One engine's predicted cost, in modeled block accesses.
#[derive(Debug, Clone, Copy)]
pub struct CostEstimate {
    /// The engine this estimate is for.
    pub engine: EngineKind,
    /// Predicted random block accesses (R-tree nodes, signature pages,
    /// B+-tree pages, tuple fetches).
    pub random_blocks: f64,
    /// Predicted sequential block accesses (heap-scan pages).
    pub sequential_blocks: f64,
    /// Modeled wall-clock seconds under the [`CostModel`] rates.
    pub seconds: f64,
}

impl CostEstimate {
    /// Total predicted block accesses — the planner's comparison key, and
    /// the unit `QueryStats::io::total_reads()` measures after the fact.
    pub fn blocks(&self) -> f64 {
        self.random_blocks + self.sequential_blocks
    }
}

/// The planner's recorded decision, attached to the winning engine's
/// [`QueryStats`] for `EXPLAIN`-style reporting.
#[derive(Debug, Clone)]
pub struct PlanDecision {
    /// The query class the plan was made for (a [`QueryClass::name`], or
    /// `"topk"`/`"skyline"` for the legacy [`QuerySpec`] paths).
    pub class: &'static str,
    /// The engine the planner dispatched to.
    pub chosen: EngineKind,
    /// Every candidate engine's estimate (including the winner's).
    pub estimates: Vec<CostEstimate>,
    /// Estimated boolean selectivity of the query's selection.
    pub selectivity: f64,
    /// Estimated number of qualifying tuples (`σ·n`).
    pub qualifying_est: f64,
    /// `true` when a [`QueryBudget`](crate::query::QueryBudget) constrained
    /// the choice — either the cheapest engine was predicted to overrun
    /// and a fitting engine was substituted, or no engine fit at all.
    pub budget_limited: bool,
    /// When the budget forced a substitution, the engine that would have
    /// won on raw cost.
    pub fallback_from: Option<EngineKind>,
}

impl PlanDecision {
    /// The winner's estimate.
    pub fn chosen_estimate(&self) -> &CostEstimate {
        self.estimates
            .iter()
            .find(|e| e.engine == self.chosen)
            .expect("chosen engine always has an estimate")
    }
}

/// Rows of a top-k answer: `(tid, coordinates, score)` in canonical
/// ascending `(score, tid)` order.
pub type TopKRows = Vec<(u64, Vec<f64>, f64)>;

/// Rows of a skyline answer: `(tid, coordinates)` in canonical ascending
/// `(coordinate sum, tid)` order.
pub type SkylineRows = Vec<(u64, Vec<f64>)>;

/// A uniform engine interface: selection and query in, canonical-order
/// result with [`QueryStats`] out. The planner dispatches through it, and
/// the differential oracle iterates executors with it. `None` means the
/// engine does not support that query class (e.g. Index-merge has no
/// skyline).
pub trait Executor {
    /// Which engine family this executor runs.
    fn kind(&self) -> EngineKind;

    /// Top-k in canonical ascending `(score, tid)` order.
    fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Option<(TopKRows, QueryStats)>;

    /// Skyline in canonical ascending `(coordinate sum, tid)` order.
    fn skyline(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> Option<(SkylineRows, QueryStats)>;

    /// [`Self::topk`] under a [`QueryBudget`] and optional [`CancelToken`]:
    /// engines that stop cooperatively report a
    /// [`QueryOutcome::Partial`](crate::query::QueryOutcome) in the stats.
    /// The default ignores governance (an ungoverned engine simply runs to
    /// completion — never wrong, just not cut short); every shipped
    /// executor overrides it.
    fn topk_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(TopKRows, QueryStats)> {
        let _ = (budget, cancel);
        self.topk(db, selection, k, f)
    }

    /// [`Self::skyline`] under a [`QueryBudget`] and optional
    /// [`CancelToken`] (see [`Self::topk_governed`] for the default's
    /// semantics).
    fn skyline_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(SkylineRows, QueryStats)> {
        let _ = (budget, cancel);
        self.skyline(db, selection, pref_dims)
    }

    /// `true` if this executor can answer `query`.
    fn supports(&self, query: &QuerySpec<'_>) -> bool {
        match query {
            QuerySpec::TopK { .. } => true,
            QuerySpec::Skyline { .. } => self.kind() != EngineKind::IndexMerge,
        }
    }
}

/// The P-Cube engine behind the [`Executor`] interface: serial Algorithm 1
/// with lazy signature probes.
pub struct PCubeExecutor;

impl Executor for PCubeExecutor {
    fn kind(&self) -> EngineKind {
        EngineKind::PCube
    }

    fn topk(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Option<(TopKRows, QueryStats)> {
        let out = crate::query::topk_query(db, selection, k, f, false);
        Some((out.topk, out.stats))
    }

    fn skyline(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> Option<(SkylineRows, QueryStats)> {
        let out = crate::query::skyline_query(db, selection, pref_dims, false);
        Some((out.skyline, out.stats))
    }

    fn topk_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(TopKRows, QueryStats)> {
        let out = crate::query::topk_query_governed(db, selection, k, f, false, budget, cancel);
        Some((out.topk, out.stats))
    }

    fn skyline_governed(
        &self,
        db: &PCubeDb,
        selection: &Selection,
        pref_dims: &[usize],
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Option<(SkylineRows, QueryStats)> {
        let out =
            crate::query::skyline_query_governed(db, selection, pref_dims, false, budget, cancel);
        Some((out.skyline, out.stats))
    }
}

/// B+-tree leaf fanout assumed by the boolean-first route model (4 KB
/// leaves of 16-byte entries) — the same constant
/// `BooleanIndexSet::select` routes with.
const BPTREE_LEAF_CAP: f64 = 255.0;

/// The §VI cost-based planner. Build once per database (it scans the
/// boolean columns in memory to collect the exact per-value counts the
/// signature leaves encode); estimate/choose are then catalog-only.
pub struct Planner {
    n: f64,
    heap_pages: f64,
    rtree_height: f64,
    fanout: f64,
    leaves: f64,
    n_pred_capable: usize,
    value_counts: Vec<HashMap<u32, u64>>,
    cost: CostModel,
}

impl Planner {
    /// Collects planning statistics from `db` (no counted I/O: column
    /// scans run on the in-memory relation, tree shapes are metadata).
    pub fn new(db: &PCubeDb) -> Self {
        let relation = db.relation();
        let n_bool = relation.schema().n_bool();
        let value_counts = (0..n_bool)
            .map(|dim| {
                let mut counts: HashMap<u32, u64> = HashMap::new();
                for v in relation.bool_column(dim) {
                    *counts.entry(v).or_default() += 1;
                }
                counts
            })
            .collect();
        let fanout = db.rtree().m_max().max(2) as f64;
        let n = relation.len() as f64;
        Planner {
            n,
            heap_pages: relation.heap_pages() as f64,
            rtree_height: db.rtree().height().max(1) as f64,
            fanout,
            leaves: (n / fanout).ceil().max(1.0),
            n_pred_capable: n_bool,
            value_counts,
            cost: CostModel::default(),
        }
    }

    /// Exact number of rows with `A_dim = value` (the catalog statistic the
    /// boolean-first optimizer also uses; free).
    pub fn value_count(&self, dim: usize, value: u32) -> u64 {
        self.value_counts
            .get(dim)
            .and_then(|c| c.get(&value).copied())
            .unwrap_or(0)
    }

    /// Estimated fraction of tuples satisfying `selection`: exact
    /// per-predicate frequencies multiplied under cross-dimension
    /// independence. Empty selections (after normalization) have
    /// selectivity 1.
    pub fn selectivity(&self, selection: &Selection) -> f64 {
        let selection = normalize(selection);
        if self.n == 0.0 {
            return 1.0;
        }
        selection
            .iter()
            .map(|p| {
                if p.dim >= self.n_pred_capable {
                    return 0.0;
                }
                self.value_count(p.dim, p.value) as f64 / self.n
            })
            .product()
    }

    /// Expected skyline size of `q` independently distributed points in
    /// `dims` dimensions: `ln(1+q)^(dims-1)`, clamped to `[1, q]`. Public
    /// so [`crate::query::QueryClass::expected_results`] implementations
    /// can reuse it.
    pub fn skyline_size(q: f64, dims: usize) -> f64 {
        if q < 1.0 {
            return q.max(0.0);
        }
        (1.0_f64 + q).ln().powi(dims.saturating_sub(1) as i32).clamp(1.0, q)
    }

    /// R-tree nodes read to surface `tuples` tuples best-first: the root
    /// path plus the touched leaves and their ancestors (geometric in the
    /// fanout).
    fn rtree_nodes(&self, tuples: f64) -> f64 {
        let leaves = (tuples / self.fanout).ceil().clamp(1.0, self.leaves);
        self.rtree_height + leaves * self.fanout / (self.fanout - 1.0)
    }

    /// Signature pages loaded by a P-Cube traversal that expands
    /// `nodes` R-tree nodes under `preds` predicates: one partial per
    /// predicate per level on the spine, plus one per predicate per
    /// expanded-node batch (partials are page-sized, so consecutive nodes
    /// share them).
    fn signature_pages(&self, preds: usize, nodes: f64) -> f64 {
        preds as f64 * (self.rtree_height + (nodes / 8.0).ceil())
    }

    /// Per-engine cost estimates for `query` under `selection`, in modeled
    /// block accesses. Formulas per engine:
    ///
    /// * **Boolean-first** — the cheaper (in blocks) of the index route
    ///   (`Σ_d (⌈c_d/255⌉ + 2)` B+-tree pages + `q` random tuple fetches)
    ///   and the table-scan route (`P` sequential pages); the preference
    ///   step is in-memory. The planner-dispatched executor routes by the
    ///   same block comparison, so the estimate predicts the route taken.
    /// * **Domination-first** — surfaces candidates without boolean
    ///   pruning and random-fetches every one (minimal probing): expected
    ///   candidates are `k/σ` for top-k and `s(q)/σ` for skylines, plus
    ///   the R-tree nodes to surface them.
    /// * **Index-merge** (top-k only) — same surfacing as
    ///   domination-first, but each surfaced tuple pays one pinned-descent
    ///   B+-tree leaf probe per predicate instead of a tuple fetch.
    /// * **P-Cube** — signature pruning restricts the traversal to
    ///   subtrees with qualifying tuples: `min(k, q)/σ'` tuple pops where
    ///   `σ' = max(σ, 1/m)` per leaf for top-k, `s(q)` accepted plus a
    ///   spine for skylines; plus signature pages, no tuple fetches.
    pub fn estimate(&self, selection: &Selection, query: &QuerySpec<'_>) -> Vec<CostEstimate> {
        let wanted_of = |q: f64| match query {
            QuerySpec::TopK { k } => (*k as f64).min(q.max(1.0)),
            QuerySpec::Skyline { pref_dims } => Self::skyline_size(q, pref_dims.len()),
        };
        let index_merge = matches!(query, QuerySpec::TopK { .. });
        self.estimate_inner(selection, &wanted_of, index_merge)
    }

    /// [`Self::estimate`] for a pluggable [`QueryClass`]: identical cost
    /// formulas, with the single class-specific term — the expected answer
    /// cardinality — supplied by [`QueryClass::expected_results`] and the
    /// index-merge estimate included only when the class declares support.
    pub fn estimate_class<C: QueryClass>(
        &self,
        selection: &Selection,
        class: &C,
    ) -> Vec<CostEstimate> {
        let wanted_of = |q: f64| class.expected_results(q);
        self.estimate_inner(selection, &wanted_of, class.supports(EngineKind::IndexMerge))
    }

    fn estimate_inner(
        &self,
        selection: &Selection,
        wanted_of: &dyn Fn(f64) -> f64,
        index_merge: bool,
    ) -> Vec<CostEstimate> {
        let selection = normalize(selection);
        let preds = selection.len();
        let sigma = self.selectivity(&selection).clamp(0.0, 1.0);
        let q = (sigma * self.n).min(self.n);
        // Candidates an engine *without* boolean pruning surfaces before
        // it has seen the whole qualifying answer (geometric waiting).
        let surfaced = |wanted: f64| -> f64 {
            if sigma <= 0.0 {
                self.n
            } else {
                (wanted / sigma).clamp(wanted, self.n)
            }
        };

        let mut estimates = Vec::new();

        // Boolean-first. The route mirror: the planner-dispatched executor
        // routes index-vs-scan by predicted blocks from the same catalog
        // counts, so the cheaper route here is the route it will take.
        {
            let (random, sequential) = if preds == 0 {
                (0.0, self.heap_pages)
            } else {
                let index_pages: f64 = selection
                    .iter()
                    .map(|p| (self.value_count(p.dim, p.value) as f64 / BPTREE_LEAF_CAP).ceil() + 2.0)
                    .sum();
                if index_pages + q < self.heap_pages {
                    (index_pages + q, 0.0)
                } else {
                    (0.0, self.heap_pages)
                }
            };
            estimates.push(self.finish(EngineKind::BooleanFirst, random, sequential));
        }

        let wanted = wanted_of(q);

        // Domination-first: every surfaced candidate is a random fetch.
        {
            let cand = surfaced(wanted.max(1.0));
            let random = self.rtree_nodes(cand) + cand;
            estimates.push(self.finish(EngineKind::DominationFirst, random, 0.0));
        }

        // Index-merge (top-k style classes only): per-candidate B+-tree
        // leaf probes.
        if index_merge {
            let cand = surfaced(wanted.max(1.0));
            let random = self.rtree_nodes(cand) + cand * preds as f64;
            estimates.push(self.finish(EngineKind::IndexMerge, random, 0.0));
        }

        // P-Cube: signature pruning never pops a non-qualifying tuple, so
        // the pop count is bounded by the answer, not by 1/σ — but sparse
        // qualifying leaves (less than one qualifying tuple per leaf)
        // still cost a node each.
        {
            // Qualifying tuples per touched leaf: σ·m, at least one (a
            // sparse cell still costs a whole leaf per qualifying tuple).
            let per_leaf = (sigma * self.fanout).max(1.0);
            let leaves =
                (wanted.max(1.0) / per_leaf).ceil().clamp(1.0, self.leaves.min(q.max(1.0)));
            let nodes = self.rtree_height + leaves * self.fanout / (self.fanout - 1.0);
            let random = nodes + self.signature_pages(preds, nodes);
            estimates.push(self.finish(EngineKind::PCube, random, 0.0));
        }

        estimates
    }

    fn finish(&self, engine: EngineKind, random: f64, sequential: f64) -> CostEstimate {
        CostEstimate {
            engine,
            random_blocks: random,
            sequential_blocks: sequential,
            seconds: random * self.cost.random_page_seconds
                + sequential * self.cost.sequential_page_seconds,
        }
    }

    /// Estimates every available engine and picks the cheapest by total
    /// predicted block accesses (ties go to P-Cube, then the earlier
    /// estimate).
    pub fn choose(
        &self,
        selection: &Selection,
        query: &QuerySpec<'_>,
        available: &[EngineKind],
    ) -> PlanDecision {
        let class = match query {
            QuerySpec::TopK { .. } => "topk",
            QuerySpec::Skyline { .. } => "skyline",
        };
        let selection = normalize(selection);
        let estimates = self.estimate(&selection, query);
        self.choose_from(&selection, estimates, available, class)
    }

    /// [`Self::choose`] for a pluggable [`QueryClass`]: same argmin over the
    /// class-parameterised estimates, with [`PlanDecision::class`] recording
    /// the class name.
    pub fn choose_class<C: QueryClass>(
        &self,
        selection: &Selection,
        class: &C,
        available: &[EngineKind],
    ) -> PlanDecision {
        let selection = normalize(selection);
        let estimates = self.estimate_class(&selection, class);
        self.choose_from(&selection, estimates, available, class.name())
    }

    fn choose_from(
        &self,
        selection: &Selection,
        estimates: Vec<CostEstimate>,
        available: &[EngineKind],
        class: &'static str,
    ) -> PlanDecision {
        let estimates: Vec<CostEstimate> =
            estimates.into_iter().filter(|e| available.contains(&e.engine)).collect();
        let chosen = estimates
            .iter()
            .min_by(|a, b| {
                a.blocks()
                    .total_cmp(&b.blocks())
                    .then_with(|| (b.engine == EngineKind::PCube).cmp(&(a.engine == EngineKind::PCube)))
            })
            .map(|e| e.engine)
            .unwrap_or(EngineKind::PCube);
        let sigma = self.selectivity(selection);
        PlanDecision {
            class,
            chosen,
            estimates,
            selectivity: sigma,
            qualifying_est: sigma * self.n,
            budget_limited: false,
            fallback_from: None,
        }
    }

    /// [`Self::choose`] under a [`QueryBudget`]: when the cheapest engine's
    /// estimate is predicted to overrun the budget (blocks over the block
    /// budget, or modeled seconds over the deadline), falls back to the
    /// cheapest engine whose estimate *fits*, recording the substitution in
    /// [`PlanDecision::fallback_from`]. When no engine fits, keeps the raw
    /// winner (the executor's governor will cut it short) and only sets
    /// [`PlanDecision::budget_limited`].
    pub fn choose_governed(
        &self,
        selection: &Selection,
        query: &QuerySpec<'_>,
        available: &[EngineKind],
        budget: &QueryBudget,
    ) -> PlanDecision {
        let decision = self.choose(selection, query, available);
        Self::govern(decision, budget)
    }

    /// [`Self::choose_class`] under a [`QueryBudget`] — same fallback
    /// semantics as [`Self::choose_governed`].
    pub fn choose_class_governed<C: QueryClass>(
        &self,
        selection: &Selection,
        class: &C,
        available: &[EngineKind],
        budget: &QueryBudget,
    ) -> PlanDecision {
        let decision = self.choose_class(selection, class, available);
        Self::govern(decision, budget)
    }

    fn govern(mut decision: PlanDecision, budget: &QueryBudget) -> PlanDecision {
        let fits = |e: &CostEstimate| -> bool {
            budget.max_blocks().is_none_or(|b| e.blocks() <= b as f64)
                && budget.deadline().is_none_or(|d| e.seconds <= d.as_secs_f64())
        };
        let chosen_fits =
            decision.estimates.iter().any(|e| e.engine == decision.chosen && fits(e));
        if chosen_fits {
            return decision;
        }
        decision.budget_limited = true;
        let fallback = decision
            .estimates
            .iter()
            .filter(|e| fits(e))
            .min_by(|a, b| {
                a.blocks()
                    .total_cmp(&b.blocks())
                    .then_with(|| (b.engine == EngineKind::PCube).cmp(&(a.engine == EngineKind::PCube)))
            })
            .map(|e| e.engine);
        if let Some(engine) = fallback {
            decision.fallback_from = Some(decision.chosen);
            decision.chosen = engine;
        }
        decision
    }
}

/// Errors from [`PCubeDb::plan_and_run_topk`] /
/// [`PCubeDb::plan_and_run_skyline`].
#[derive(Debug)]
pub enum PlanError {
    /// No registered executor supports the query class.
    NoExecutor,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::NoExecutor => write!(f, "no registered executor supports this query"),
        }
    }
}

impl std::error::Error for PlanError {}

fn usable<'a>(
    executors: &'a [&'a dyn Executor],
    query: &QuerySpec<'_>,
) -> (Vec<EngineKind>, &'a [&'a dyn Executor]) {
    let kinds = executors.iter().filter(|e| e.supports(query)).map(|e| e.kind()).collect();
    (kinds, executors)
}

impl PCubeDb {
    /// Plans and runs a top-k query: estimates each registered executor's
    /// block accesses, dispatches to the cheapest, and records the
    /// decision in the returned stats (`stats.plan`).
    pub fn plan_and_run_topk(
        &self,
        planner: &Planner,
        executors: &[&dyn Executor],
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> Result<(TopKRows, QueryStats), PlanError> {
        let query = QuerySpec::TopK { k };
        let (kinds, executors) = usable(executors, &query);
        if kinds.is_empty() {
            return Err(PlanError::NoExecutor);
        }
        let decision = planner.choose(selection, &query, &kinds);
        let exec = executors
            .iter()
            .find(|e| e.kind() == decision.chosen)
            .expect("chosen engine comes from the available set");
        let (result, mut stats) =
            exec.topk(self, selection, k, f).ok_or(PlanError::NoExecutor)?;
        stats.plan = Some(decision);
        Ok((result, stats))
    }

    /// Plans and runs a skyline query (see [`Self::plan_and_run_topk`]).
    pub fn plan_and_run_skyline(
        &self,
        planner: &Planner,
        executors: &[&dyn Executor],
        selection: &Selection,
        pref_dims: &[usize],
    ) -> Result<(SkylineRows, QueryStats), PlanError> {
        let query = QuerySpec::Skyline { pref_dims };
        let (kinds, executors) = usable(executors, &query);
        if kinds.is_empty() {
            return Err(PlanError::NoExecutor);
        }
        let decision = planner.choose(selection, &query, &kinds);
        let exec = executors
            .iter()
            .find(|e| e.kind() == decision.chosen)
            .expect("chosen engine comes from the available set");
        let (result, mut stats) =
            exec.skyline(self, selection, pref_dims).ok_or(PlanError::NoExecutor)?;
        stats.plan = Some(decision);
        Ok((result, stats))
    }

    /// [`Self::plan_and_run_topk`] under a [`QueryBudget`] and optional
    /// [`CancelToken`]: plans with [`Planner::choose_governed`] (falling
    /// back to the cheapest engine predicted to fit the budget) and
    /// dispatches through [`Executor::topk_governed`] so the winner stops
    /// cooperatively when the budget trips anyway.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_and_run_topk_governed(
        &self,
        planner: &Planner,
        executors: &[&dyn Executor],
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<(TopKRows, QueryStats), PlanError> {
        let query = QuerySpec::TopK { k };
        let (kinds, executors) = usable(executors, &query);
        if kinds.is_empty() {
            return Err(PlanError::NoExecutor);
        }
        let decision = planner.choose_governed(selection, &query, &kinds, budget);
        let exec = executors
            .iter()
            .find(|e| e.kind() == decision.chosen)
            .expect("chosen engine comes from the available set");
        let (result, mut stats) = exec
            .topk_governed(self, selection, k, f, budget, cancel)
            .ok_or(PlanError::NoExecutor)?;
        stats.plan = Some(decision);
        Ok((result, stats))
    }

    /// [`Self::plan_and_run_skyline`] under a [`QueryBudget`] and optional
    /// [`CancelToken`] (see [`Self::plan_and_run_topk_governed`]).
    pub fn plan_and_run_skyline_governed(
        &self,
        planner: &Planner,
        executors: &[&dyn Executor],
        selection: &Selection,
        pref_dims: &[usize],
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<(SkylineRows, QueryStats), PlanError> {
        let query = QuerySpec::Skyline { pref_dims };
        let (kinds, executors) = usable(executors, &query);
        if kinds.is_empty() {
            return Err(PlanError::NoExecutor);
        }
        let decision = planner.choose_governed(selection, &query, &kinds, budget);
        let exec = executors
            .iter()
            .find(|e| e.kind() == decision.chosen)
            .expect("chosen engine comes from the available set");
        let (result, mut stats) = exec
            .skyline_governed(self, selection, pref_dims, budget, cancel)
            .ok_or(PlanError::NoExecutor)?;
        stats.plan = Some(decision);
        Ok((result, stats))
    }

    /// Plans and runs any pluggable [`QueryClass`] under a [`QueryBudget`]
    /// and optional [`CancelToken`].
    ///
    /// Three engines are offered to the planner (filtered further by
    /// [`QueryClass::supports`]):
    ///
    /// * **P-Cube** — the signature-pruned Algorithm-1 traversal, fully
    ///   governed (budget/cancel produce `Partial` outcomes).
    /// * **Domination-first** — the same traversal without boolean pruning:
    ///   every popped tuple is verified against the base table
    ///   ([`crate::query::VerifyAllPruner`]), also fully governed.
    /// * **Boolean-first** — the selection is resolved to a candidate list
    ///   first (index or scan route, picked inside the relation layer) and
    ///   the class's reference preference step runs over it in memory. The
    ///   candidate materialisation is not interruptible, so budget/cancel
    ///   are ignored on this path — the planner only picks it when the
    ///   predicted cost fits the budget anyway.
    ///
    /// The decision (with per-engine estimates and the class name) is
    /// recorded in `stats.plan`.
    pub fn plan_and_run_class<C: QueryClass + Sync>(
        &self,
        planner: &Planner,
        class: &C,
        selection: &Selection,
        budget: &QueryBudget,
        cancel: Option<&CancelToken>,
    ) -> Result<(Vec<C::Row>, QueryStats), PlanError> {
        let available: Vec<EngineKind> =
            [EngineKind::PCube, EngineKind::BooleanFirst, EngineKind::DominationFirst]
                .into_iter()
                .filter(|&kind| class.supports(kind))
                .collect();
        if available.is_empty() {
            return Err(PlanError::NoExecutor);
        }
        let decision = planner.choose_class_governed(selection, class, &available, budget);
        let outcome = match decision.chosen {
            EngineKind::BooleanFirst => run_class_scan(self, selection, class),
            EngineKind::DominationFirst => {
                run_class_verify_all(self, selection, class, budget, cancel)
            }
            // The generic dispatch never offers index-merge (there is no
            // generic index-merge engine); if a class ever claims it, run
            // the signature-guided traversal instead.
            EngineKind::PCube | EngineKind::IndexMerge => {
                run_class(self, selection, class, false, budget, cancel)
            }
        };
        let mut stats = outcome.stats;
        stats.plan = Some(decision);
        Ok((outcome.rows, stats))
    }

    /// Runs `class` on one specific engine, bypassing the planner — the
    /// seam the calibration bench uses to measure every engine's actual
    /// block count against [`Planner::estimate_class`]. Errors when the
    /// class does not support the engine (or for `IndexMerge`, which has
    /// no generic engine).
    pub fn run_class_on<C: QueryClass + Sync>(
        &self,
        class: &C,
        selection: &Selection,
        engine: EngineKind,
    ) -> Result<(Vec<C::Row>, QueryStats), PlanError> {
        if !class.supports(engine) {
            return Err(PlanError::NoExecutor);
        }
        let budget = QueryBudget::unlimited();
        let outcome = match engine {
            EngineKind::BooleanFirst => run_class_scan(self, selection, class),
            EngineKind::DominationFirst => {
                run_class_verify_all(self, selection, class, &budget, None)
            }
            EngineKind::PCube => run_class(self, selection, class, false, &budget, None),
            EngineKind::IndexMerge => return Err(PlanError::NoExecutor),
        };
        Ok((outcome.rows, outcome.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcube::PCubeConfig;
    use pcube_cube::{Predicate, Relation, Schema};

    fn db(n: usize) -> PCubeDb {
        let mut rel = Relation::new(Schema::new(&["a", "b"], &["x", "y"]));
        for i in 0..n {
            // Dimension a: skewed — value 0 covers 90%, values 1.. are rare.
            let a = if i % 10 == 0 { 1 + ((i / 10) % 5) as u32 } else { 0 };
            let b = (i % 3) as u32;
            let x = (i as f64 * 0.37) % 1.0;
            let y = (i as f64 * 0.61) % 1.0;
            rel.push_coded(&[a, b], &[x, y]);
        }
        PCubeDb::build(rel, &PCubeConfig::default())
    }

    #[test]
    fn selectivity_uses_exact_counts() {
        let db = db(1000);
        let planner = Planner::new(&db);
        let sel = vec![Predicate { dim: 0, value: 0 }];
        let sigma = planner.selectivity(&sel);
        assert!((sigma - 0.9).abs() < 1e-9, "σ = {sigma}");
        assert_eq!(planner.selectivity(&Vec::new()), 1.0);
        // Unknown value → zero selectivity.
        assert_eq!(planner.selectivity(&vec![Predicate { dim: 0, value: 99 }]), 0.0);
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let db = db(500);
        let planner = Planner::new(&db);
        for sel in [Vec::new(), vec![Predicate { dim: 0, value: 1 }]] {
            for query in [QuerySpec::TopK { k: 5 }, QuerySpec::Skyline { pref_dims: &[0, 1] }] {
                for e in planner.estimate(&sel, &query) {
                    assert!(e.blocks().is_finite() && e.blocks() > 0.0, "{:?}", e);
                    assert!(e.seconds.is_finite() && e.seconds > 0.0);
                }
            }
        }
    }

    #[test]
    fn crossover_selective_to_baseline_unselective_to_pcube() {
        let db = db(2000);
        let planner = Planner::new(&db);
        let all = [
            EngineKind::PCube,
            EngineKind::BooleanFirst,
            EngineKind::DominationFirst,
            EngineKind::IndexMerge,
        ];
        // Rare value: a handful of matches — a B+-tree fetch of the few
        // qualifying rows should beat a signature-guided traversal.
        let selective = vec![Predicate { dim: 0, value: 1 }, Predicate { dim: 1, value: 0 }];
        let d = planner.choose(&selective, &QuerySpec::TopK { k: 10 }, &all);
        assert_eq!(d.chosen, EngineKind::BooleanFirst, "{:?}", d);
        // Dominant value: most rows qualify — baselines pay per-candidate
        // random accesses, P-Cube doesn't.
        let unselective = vec![Predicate { dim: 0, value: 0 }];
        let d = planner.choose(&unselective, &QuerySpec::TopK { k: 10 }, &all);
        assert_eq!(d.chosen, EngineKind::PCube, "{:?}", d);
    }

    #[test]
    fn budget_fallback_substitutes_the_cheapest_fitting_engine() {
        let db = db(2000);
        let planner = Planner::new(&db);
        let all = [
            EngineKind::PCube,
            EngineKind::BooleanFirst,
            EngineKind::DominationFirst,
            EngineKind::IndexMerge,
        ];
        let unselective = vec![Predicate { dim: 0, value: 0 }];
        let query = QuerySpec::TopK { k: 10 };
        let raw = planner.choose(&unselective, &query, &all);
        assert!(!raw.budget_limited);
        assert!(raw.fallback_from.is_none());

        // A budget below the winner's estimate but above some rival's
        // forces a recorded substitution.
        let winner_blocks = raw.chosen_estimate().blocks();
        let cheapest_rival = raw
            .estimates
            .iter()
            .filter(|e| e.engine != raw.chosen)
            .map(|e| e.blocks())
            .fold(f64::INFINITY, f64::min);
        if cheapest_rival < winner_blocks {
            let cap = cheapest_rival.ceil() as u64;
            let budget = QueryBudget::unlimited().with_block_budget(cap);
            let governed = planner.choose_governed(&unselective, &query, &all, &budget);
            assert!(governed.budget_limited, "{governed:?}");
            assert_eq!(governed.fallback_from, Some(raw.chosen));
            assert_ne!(governed.chosen, raw.chosen);
            assert!(governed.chosen_estimate().blocks() <= cap as f64);
        }

        // A budget nothing fits: keep the raw winner, flag the limit.
        let budget = QueryBudget::unlimited().with_block_budget(0);
        let governed = planner.choose_governed(&unselective, &query, &all, &budget);
        assert!(governed.budget_limited);
        assert_eq!(governed.chosen, raw.chosen);
        assert!(governed.fallback_from.is_none());

        // A roomy budget changes nothing.
        let budget = QueryBudget::unlimited().with_block_budget(u64::MAX);
        let governed = planner.choose_governed(&unselective, &query, &all, &budget);
        assert!(!governed.budget_limited);
        assert_eq!(governed.chosen, raw.chosen);
    }

    #[test]
    fn plan_and_run_matches_direct_engines() {
        let db = db(800);
        let planner = Planner::new(&db);
        let pcube = PCubeExecutor;
        let execs: Vec<&dyn Executor> = vec![&pcube];
        let f = crate::rank::LinearFn::new(vec![0.5, 0.5]);
        let sel = vec![Predicate { dim: 1, value: 2 }];
        let (top, stats) =
            db.plan_and_run_topk(&planner, &execs, &sel, 5, &f).expect("planned");
        let direct = crate::query::topk_query(&db, &sel, 5, &f, false);
        assert_eq!(
            top.iter().map(|t| t.0).collect::<Vec<_>>(),
            direct.topk.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        let plan = stats.plan.expect("decision recorded");
        assert_eq!(plan.chosen, EngineKind::PCube);
        assert!(plan.chosen_estimate().blocks() > 0.0);

        let (sky, stats) =
            db.plan_and_run_skyline(&planner, &execs, &sel, &[0, 1]).expect("planned");
        let direct = crate::query::skyline_query(&db, &sel, &[0, 1], false);
        assert_eq!(sky, direct.skyline);
        assert!(stats.plan.is_some());
    }

    /// The class-parameterised estimator must reproduce the legacy
    /// QuerySpec estimates exactly for the built-in classes — the planner
    /// refactor may not shift a single cost number or pick.
    #[test]
    fn class_estimates_match_legacy_spec_estimates() {
        let db = db(1000);
        let planner = Planner::new(&db);
        let f = crate::rank::MinCoordSum::all(2);
        let selections: Vec<Selection> = vec![
            vec![],
            vec![Predicate { dim: 0, value: 1 }],
            vec![Predicate { dim: 0, value: 0 }, Predicate { dim: 1, value: 2 }],
        ];
        for sel in &selections {
            for k in [1usize, 10, 100] {
                let legacy = planner.estimate(sel, &QuerySpec::TopK { k });
                let class = planner.estimate_class(sel, &crate::query::TopKClass::new(k, &f));
                assert_eq!(legacy.len(), class.len());
                for (a, b) in legacy.iter().zip(&class) {
                    assert_eq!(a.engine, b.engine);
                    assert_eq!(a.blocks(), b.blocks());
                    assert_eq!(a.seconds, b.seconds);
                }
            }
            let legacy = planner.estimate(sel, &QuerySpec::Skyline { pref_dims: &[0, 1] });
            let class =
                planner.estimate_class(sel, &crate::query::SkylineClass::new(vec![0, 1]));
            assert_eq!(legacy.len(), class.len());
            for (a, b) in legacy.iter().zip(&class) {
                assert_eq!(a.engine, b.engine);
                assert_eq!(a.blocks(), b.blocks());
            }
        }
    }

    #[test]
    fn plan_and_run_class_matches_direct_run() {
        let db = db(800);
        let planner = Planner::new(&db);
        let budget = QueryBudget::unlimited();
        let sel = vec![Predicate { dim: 1, value: 2 }];

        // Top-k through the generic path == the legacy serial engine.
        let f = crate::rank::LinearFn::new(vec![0.5, 0.5]);
        let class = crate::query::TopKClass::new(5, &f);
        let (rows, stats) =
            db.plan_and_run_class(&planner, &class, &sel, &budget, None).expect("planned");
        let direct = crate::query::topk_query(&db, &sel, 5, &f, false);
        assert_eq!(
            rows.iter().map(|t| t.0).collect::<Vec<_>>(),
            direct.topk.iter().map(|t| t.0).collect::<Vec<_>>()
        );
        let plan = stats.plan.expect("decision recorded");
        assert_eq!(plan.class, "topk");

        // Skyline likewise, and the decision carries the class name.
        let class = crate::query::SkylineClass::new(vec![0, 1]);
        let (rows, stats) =
            db.plan_and_run_class(&planner, &class, &sel, &budget, None).expect("planned");
        let direct = crate::query::skyline_query(&db, &sel, &[0, 1], false);
        assert_eq!(rows, direct.skyline);
        assert_eq!(stats.plan.expect("decision recorded").class, "skyline");
    }

    /// Every generic engine the class dispatcher can pick returns the same
    /// answer (boolean-first and domination-first are verification paths
    /// for the signature-guided traversal).
    #[test]
    fn class_engines_agree_on_every_route() {
        let db = db(600);
        let sel = vec![Predicate { dim: 0, value: 0 }];
        let class = crate::query::SkylineClass::new(vec![0, 1]);
        let budget = QueryBudget::unlimited();
        let pcube = run_class(&db, &sel, &class, false, &budget, None);
        let verify = run_class_verify_all(&db, &sel, &class, &budget, None);
        let scan = run_class_scan(&db, &sel, &class);
        assert_eq!(pcube.rows, verify.rows);
        assert_eq!(pcube.rows, scan.rows);
    }
}
