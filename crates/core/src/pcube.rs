//! Building the P-Cube, answering probe requests, and incremental
//! maintenance (§IV, §IV-B.3).

use std::collections::HashMap;
use std::sync::Arc;

use pcube_cube::{
    group_by, normalize, CellKey, CellRegistry, CuboidMask, MaterializationPlan, Relation,
    Selection,
};
use pcube_rtree::{Path, PathDelta, RTree, RTreeConfig};
use pcube_storage::{IoCategory, IoStats, Pager, SharedStats};

use crate::rank::RankingFunction;

/// Per-cell pending signature maintenance: `(cleared paths, set paths)`.
type CellChanges = (Vec<Path>, Vec<Path>);
use crate::signature::Signature;
use crate::store::{BooleanProbe, SignatureStore};

/// Build-time options for a P-Cube.
#[derive(Debug, Clone)]
pub struct PCubeConfig {
    /// Which cuboids get materialized signatures. The paper's experiments
    /// use [`MaterializationPlan::Atomic`].
    pub plan: MaterializationPlan,
    /// Page size for signature pages, R-tree nodes and B+-trees (the paper
    /// uses 4 KB).
    pub page_size: usize,
    /// STR fill factor for the R-tree bulk load. The default 0.7 mimics the
    /// occupancy of a dynamically built R-tree (≈ ln 2), so incremental
    /// inserts rarely cascade splits; use 1.0 for a packed read-only tree.
    pub rtree_fill: f64,
}

impl Default for PCubeConfig {
    fn default() -> Self {
        PCubeConfig {
            plan: MaterializationPlan::Atomic,
            page_size: pcube_storage::PAGE_SIZE,
            rtree_fill: 0.7,
        }
    }
}

/// One cell signature touched by a maintenance operation: how many path
/// bits were set and cleared. [`PCube::apply_delta`] reports these (in
/// ascending cell-code order) so the durable engine can log per-cell
/// `SigUpdate` WAL records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigTouch {
    /// The affected cell's registry code.
    pub cell: u32,
    /// Signature bits set (paths added).
    pub sets: u32,
    /// Signature bits cleared (paths removed).
    pub clears: u32,
}

/// The signature cube: one signature per materialized cell, stored
/// compressed and decomposed on counted pages.
///
/// `Clone` is a deep copy over cloned pagers (see [`SignatureStore`]).
#[derive(Clone)]
pub struct PCube {
    /// `Arc` so epoch snapshots share the cell registry instead of
    /// reallocating every key: maintenance of an existing cell only reads
    /// it, and the rare first-seen cell re-owns it once.
    pub(crate) registry: Arc<CellRegistry>,
    pub(crate) store: SignatureStore,
    pub(crate) cuboids: Vec<CuboidMask>,
}

/// Registry intern that preserves sharing: a hit (the overwhelmingly common
/// case during maintenance) never clones; only a genuinely new cell re-owns
/// the shared registry.
fn intern_cow(registry: &mut Arc<CellRegistry>, key: CellKey) -> u32 {
    if let Some(code) = registry.code(&key) {
        return code;
    }
    Arc::make_mut(registry).intern(key)
}

impl PCube {
    /// Computes signatures for every cell of every cuboid in `plan`.
    ///
    /// This is the tuple-oriented generation of §IV-B.1: one R-tree
    /// traversal yields the `path` column, then each cuboid group-by turns
    /// its cells' path lists into signatures.
    pub fn build(
        relation: &Relation,
        rtree: &RTree,
        plan: &MaterializationPlan,
        page_size: usize,
        stats: SharedStats,
    ) -> Self {
        let sig_pager = Pager::new(page_size, IoCategory::SignaturePage, stats.clone());
        let dir_pager = Pager::new(page_size, IoCategory::BptreePage, stats);
        let mut store = SignatureStore::new(sig_pager, dir_pager, rtree.m_max(), rtree.height());
        let mut registry = CellRegistry::new();

        // The `path` column: tids are dense, so a vector indexes it.
        let mut paths: Vec<Path> = vec![Path::root(); relation.len()];
        rtree.for_each_tuple(|tid, path, _| paths[tid as usize] = path.clone());

        let cuboids = plan.cuboids(relation.schema().n_bool());
        for &cuboid in &cuboids {
            for (cell, tids) in group_by(relation, cuboid) {
                let sig = Signature::from_paths(
                    rtree.m_max(),
                    tids.iter().map(|&t| &paths[t as usize]),
                );
                let code = registry.intern(cell);
                store.write_signature(code, &sig);
            }
        }
        PCube { registry: Arc::new(registry), store, cuboids }
    }

    /// The signature store (sizes, partial counts, raw loads).
    pub fn store(&self) -> &SignatureStore {
        &self.store
    }

    /// Mutable access to the signature store (chaos-testing hook: reach the
    /// pagers to install fault plans or corrupt pages).
    pub fn store_mut(&mut self) -> &mut SignatureStore {
        &mut self.store
    }

    /// The cell registry (cell key ↔ dense code).
    pub fn registry(&self) -> &CellRegistry {
        &self.registry
    }

    /// The materialized cuboids.
    pub fn cuboids(&self) -> &[CuboidMask] {
        &self.cuboids
    }

    /// Total materialized bytes (signature pages + directory).
    pub fn size_bytes(&self) -> u64 {
        self.store.size_bytes()
    }

    /// Builds the boolean-pruning probe for a selection (§IV-B.2).
    ///
    /// If the exact cell is materialized, a single lazy cursor serves it.
    /// Otherwise the selection is covered by its atomic cells: lazily ANDed
    /// cursors by default, or — with `eager_assembly` — fully loaded and
    /// intersected with the recursive fix-up (Fig 3.c) up front.
    pub fn probe(&self, selection: &Selection, eager_assembly: bool) -> BooleanProbe<'_> {
        let selection = normalize(selection);
        if selection.is_empty() {
            return BooleanProbe::All;
        }
        if let Some(code) = self.registry.code(&CellKey::from_selection(&selection)) {
            return BooleanProbe::Single(self.store.cursor(code));
        }
        // Assemble from atomic cells. A predicate value never seen in the
        // data has no cell; the empty signature prunes everything.
        let codes: Vec<Option<u32>> = selection
            .iter()
            .map(|p| self.registry.code(&CellKey::atomic(p.dim, p.value)))
            .collect();
        if codes.iter().any(Option::is_none) {
            return BooleanProbe::Assembled(Signature::empty(self.store.m_max()));
        }
        if eager_assembly {
            match self.try_assemble(&codes) {
                Some(assembled) => return BooleanProbe::Assembled(assembled),
                // A cell's signature could not be fully loaded (corrupt or
                // unreadable page). Degrade to lazy cursors, which survive
                // per-partial failures conservatively instead of aborting.
                None => self.store.stats().record_degraded_reads(1),
            }
        }
        BooleanProbe::IntersectLazy(
            // invariant: the `any(Option::is_none)` guard above returned.
            codes.into_iter().map(|c| self.store.cursor(c.expect("all codes resolved"))).collect(),
        )
    }

    /// Eagerly loads and intersects the signatures of `codes`; `None` if any
    /// full load fails.
    fn try_assemble(&self, codes: &[Option<u32>]) -> Option<Signature> {
        let mut acc: Option<Signature> = None;
        for c in codes {
            // invariant: the caller checked every code is `Some`.
            let sig = self.store.try_load_full(c.expect("caller checked every code")).ok()?;
            acc = Some(match acc {
                None => sig,
                Some(a) => a.intersect(&sig, self.store.height()),
            });
        }
        acc
    }

    /// Builds a lossy Bloom-filter probe (§VII) for the selection at the
    /// given false-positive target. The filters are constructed from the
    /// exact signatures (one full load per predicate cell); a production
    /// deployment would persist them instead. Sound: never prunes a
    /// qualifying subtree.
    pub fn probe_bloom(&self, selection: &Selection, fp_rate: f64) -> BooleanProbe<'_> {
        let selection = normalize(selection);
        if selection.is_empty() {
            return BooleanProbe::All;
        }
        let mut codes = Vec::with_capacity(selection.len());
        for p in &selection {
            match self.registry.code(&CellKey::atomic(p.dim, p.value)) {
                None => return BooleanProbe::Assembled(Signature::empty(self.store.m_max())),
                Some(code) => codes.push(code),
            }
        }
        let mut filters = Vec::with_capacity(codes.len());
        for &code in &codes {
            match self.store.try_load_full(code) {
                Ok(sig) => {
                    filters.push(crate::bloom::BloomSignature::from_signature(&sig, fp_rate));
                }
                // Filter construction needs the exact signature; if one
                // cannot be read, degrade every predicate to a lazy cursor
                // rather than (unsoundly) pruning with a partial filter set.
                Err(_) => {
                    self.store.stats().record_degraded_reads(1);
                    return BooleanProbe::IntersectLazy(
                        codes.into_iter().map(|c| self.store.cursor(c)).collect(),
                    );
                }
            }
        }
        BooleanProbe::Bloom(filters)
    }

    /// Applies the path changes of one R-tree insert/delete to every
    /// affected cell signature (§IV-B.3).
    ///
    /// "Only the signatures of cells [the changed tuples belong to] are
    /// affected. Furthermore, only the entries on the path … are possibly
    /// affected." Changes are grouped per cell; each affected cell's
    /// signature is loaded, patched and rewritten.
    ///
    /// `rtree_height` must be the tree's height *after* the mutation (a root
    /// split deepens every path).
    ///
    /// Returns one [`SigTouch`] per affected cell, in ascending cell-code
    /// order (deterministic, so WAL records built from it are reproducible).
    pub fn apply_delta(
        &mut self,
        relation: &Relation,
        delta: &PathDelta,
        rtree_height: usize,
    ) -> Vec<SigTouch> {
        self.store.set_height(rtree_height);
        // (cell code, clears, sets)
        let mut changes: HashMap<u32, CellChanges> = HashMap::new();
        let mut add = |registry: &mut Arc<CellRegistry>,
                       cuboids: &[CuboidMask],
                       tid: u64,
                       old: Option<&Path>,
                       new: Option<&Path>| {
            for &cuboid in cuboids {
                let values: Vec<u32> =
                    cuboid.dims().iter().map(|&d| relation.bool_code(tid, d)).collect();
                let code = intern_cow(registry, CellKey { mask: cuboid, values });
                let entry = changes.entry(code).or_default();
                if let Some(p) = old {
                    entry.0.push(p.clone());
                }
                if let Some(p) = new {
                    entry.1.push(p.clone());
                }
            }
        };
        for (tid, old, new) in &delta.moved {
            add(&mut self.registry, &self.cuboids, *tid, Some(old), Some(new));
        }
        if let Some((tid, path)) = &delta.inserted {
            add(&mut self.registry, &self.cuboids, *tid, None, Some(path));
        }
        if let Some((tid, path)) = &delta.removed {
            add(&mut self.registry, &self.cuboids, *tid, Some(path), None);
        }
        let mut ordered: Vec<(u32, CellChanges)> = changes.into_iter().collect();
        ordered.sort_unstable_by_key(|(code, _)| *code);
        let mut touched = Vec::with_capacity(ordered.len());
        for (code, (clears, sets)) in ordered {
            touched.push(SigTouch {
                cell: code,
                sets: sets.len() as u32,
                clears: clears.len() as u32,
            });
            // Pure insertions take the paper's fast path: flip bits inside
            // the partials already on disk. Anything involving clears (or a
            // page overflow) falls back to a full per-cell rewrite.
            if clears.is_empty() && self.store.apply_sets_in_place(code, &sets) {
                continue;
            }
            let mut sig = self.store.load_full(code);
            for p in &clears {
                sig.clear_path(p);
            }
            for p in &sets {
                sig.set_path(p);
            }
            self.store.write_signature(code, &sig);
        }
        touched
    }
}

/// A complete P-Cube database: base relation, shared R-tree partition,
/// signature cube, and one I/O ledger across all of them.
///
/// This is the type queries run against; see
/// [`skyline_query`](crate::query::skyline_query) and
/// [`topk_query`](crate::query::topk_query).
pub struct PCubeDb {
    pub(crate) relation: Relation,
    pub(crate) rtree: RTree,
    pub(crate) pcube: PCube,
    pub(crate) stats: SharedStats,
    pub(crate) admission: Option<crate::admission::AdmissionGate>,
}

impl PCubeDb {
    /// Builds the R-tree partition and the P-Cube over `relation`.
    pub fn build(mut relation: Relation, config: &PCubeConfig) -> Self {
        let stats = IoStats::new_shared();
        relation.attach_stats(stats.clone());
        let rtree_pager = Pager::new(config.page_size, IoCategory::RtreeBlock, stats.clone());
        let rtree_cfg = RTreeConfig::for_page(relation.schema().n_pref(), config.page_size);
        let items: Vec<(u64, Vec<f64>)> =
            (0..relation.len() as u64).map(|t| (t, relation.pref_coords(t))).collect();
        let rtree = RTree::bulk_load(rtree_pager, rtree_cfg, items, config.rtree_fill);
        let pcube = PCube::build(&relation, &rtree, &config.plan, config.page_size, stats.clone());
        PCubeDb { relation, rtree, pcube, stats, admission: None }
    }

    /// The base relation.
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// The shared R-tree partition template.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The signature cube.
    pub fn pcube(&self) -> &PCube {
        &self.pcube
    }

    /// Mutable access to the signature store (chaos-testing hook: install
    /// fault plans, enable checksums, or corrupt signature pages).
    pub fn signature_store_mut(&mut self) -> &mut SignatureStore {
        self.pcube.store_mut()
    }

    /// The shared I/O ledger.
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Runs an online, budget-limited integrity scrub over the signature
    /// store (see [`crate::scrub::scrub`]). Takes `&self`, so it can run
    /// concurrently with the `par_*` query paths.
    pub fn scrub(&self, budget: &crate::query::QueryBudget) -> crate::scrub::ScrubReport {
        crate::scrub::scrub(self, budget)
    }

    /// Installs (or clears) a wall-clock latency charged per counted read
    /// on every pager-backed structure a query touches: R-tree blocks,
    /// signature pages, and directory pages. This pays the paper's block
    /// cost model in real time — `serve_bench --wall-io-us` uses it so
    /// wall-clock throughput measures read-path *concurrency* (sleeps
    /// overlap across threads only if no lock is held across a page read),
    /// not memory bandwidth.
    ///
    /// Note [`crate::pcube::PCubeDb::relation`] tuple fetches charge the
    /// `TupleRandomAccess` category straight to the ledger without a pager,
    /// so they are not delayed; the traversal structures dominate the block
    /// counts (Fig 9) and are what concurrency contends on.
    pub fn set_wall_read_latency(&mut self, delay: Option<std::time::Duration>) {
        self.rtree.pager_mut().set_read_delay(delay);
        let store = self.pcube.store_mut();
        store.sig_pager_mut().set_read_delay(delay);
        store.dir_pager_mut().set_read_delay(delay);
    }

    /// Installs an admission gate: subsequent [`Self::admit`] calls bound
    /// concurrent in-flight queries to the gate's capacity and shed after
    /// its bounded wait.
    pub fn set_admission_gate(&mut self, gate: crate::admission::AdmissionGate) {
        self.admission = Some(gate);
    }

    /// Removes the admission gate; [`Self::admit`] becomes a free pass.
    pub fn clear_admission_gate(&mut self) {
        self.admission = None;
    }

    /// The installed admission gate, if any (for its admit/shed tallies).
    pub fn admission_gate(&self) -> Option<&crate::admission::AdmissionGate> {
        self.admission.as_ref()
    }

    /// Acquires an admission slot before running a query. `Ok(None)` when
    /// no gate is installed (nothing to hold); `Ok(Some(permit))` holds a
    /// slot until dropped; `Err` means the query was shed and must not run.
    pub fn admit(
        &self,
    ) -> Result<Option<crate::admission::AdmissionPermit<'_>>, crate::admission::AdmissionError>
    {
        match &self.admission {
            None => Ok(None),
            Some(gate) => gate.admit().map(Some),
        }
    }

    /// Inserts a row (string boolean values) and incrementally maintains the
    /// R-tree and every affected signature. Returns the new tid.
    pub fn insert(&mut self, bool_values: &[&str], coords: &[f64]) -> u64 {
        let tid = self.relation.push(bool_values, coords);
        self.finish_insert(tid, coords);
        tid
    }

    /// Inserts a row given pre-encoded boolean codes.
    pub fn insert_coded(&mut self, bool_codes: &[u32], coords: &[f64]) -> u64 {
        self.insert_coded_tracked(bool_codes, coords).0
    }

    /// [`PCubeDb::insert_coded`], also reporting which cell signatures the
    /// maintenance touched (the durable engine logs these as WAL records).
    pub fn insert_coded_tracked(
        &mut self,
        bool_codes: &[u32],
        coords: &[f64],
    ) -> (u64, Vec<SigTouch>) {
        let tid = self.relation.push_coded(bool_codes, coords);
        (tid, self.finish_insert(tid, coords))
    }

    fn finish_insert(&mut self, tid: u64, coords: &[f64]) -> Vec<SigTouch> {
        let delta = self.rtree.insert_tracked(tid, coords);
        self.pcube.apply_delta(&self.relation, &delta, self.rtree.height())
    }

    /// Deletes tuple `tid`: removes it from the R-tree partition and clears
    /// its path bit from every affected cell signature (§VIII, the deletion
    /// half of incremental maintenance). The relation row is retained as a
    /// tombstone — tids stay stable — but the tuple vanishes from every
    /// query result. Returns `false` if `tid` is out of range or already
    /// deleted.
    pub fn delete(&mut self, tid: u64) -> bool {
        self.delete_tracked(tid).is_some()
    }

    /// [`PCubeDb::delete`], reporting the touched cell signatures.
    pub fn delete_tracked(&mut self, tid: u64) -> Option<Vec<SigTouch>> {
        if tid >= self.relation.len() as u64 {
            return None;
        }
        let coords = self.relation.pref_coords(tid);
        let path = self.rtree.delete_tracked(tid, &coords)?;
        let delta = PathDelta { removed: Some((tid, path)), ..PathDelta::default() };
        Some(self.pcube.apply_delta(&self.relation, &delta, self.rtree.height()))
    }

    /// An independently-queryable copy for epoch snapshots. Pagers and
    /// relation columns are copy-on-write (`O(1)` refcount bumps; see
    /// `pcube_storage::Pager` and `pcube_cube::Relation`), so this is cheap
    /// regardless of database size — the writer re-owns only the pages and
    /// column chunks it actually dirties afterwards. Only the I/O ledger is
    /// shared (snapshot reads keep being charged to the database's cost
    /// accounting). The admission gate is *not* carried over — snapshot
    /// readers are admitted by the live database, not by its frozen copies.
    pub fn clone_snapshot(&self) -> PCubeDb {
        PCubeDb {
            relation: self.relation.clone(),
            rtree: self.rtree.clone(),
            pcube: self.pcube.clone(),
            stats: self.stats.clone(),
            admission: None,
        }
    }
}

/// Same as [`PCubeDb::clone_snapshot`] — exists so `Arc::make_mut` can
/// re-own a shared database on the copy-on-write write path.
impl Clone for PCubeDb {
    fn clone(&self) -> Self {
        self.clone_snapshot()
    }
}

impl PCubeDb {
    /// Builds a [`Selection`] from `(dimension name, value)` pairs.
    ///
    /// # Panics
    /// Panics on an unknown dimension name; an unknown *value* yields a
    /// selection that matches nothing (a valid query).
    pub fn selection(&self, preds: &[(&str, &str)]) -> Selection {
        preds
            .iter()
            .map(|(dim_name, value)| {
                let dim = self
                    .relation
                    .schema()
                    .bool_index(dim_name)
                    .unwrap_or_else(|| panic!("unknown boolean dimension {dim_name}"));
                let value = self
                    .relation
                    .dictionary(dim)
                    .code(value)
                    // Unseen value: a code beyond any dictionary entry.
                    .unwrap_or(u32::MAX);
                pcube_cube::Predicate { dim, value }
            })
            .collect()
    }
}

/// The thread-safe query facade: every method takes `&self`, so a single
/// `PCubeDb` can serve many client threads at once (`PCubeDb: Send + Sync`
/// is asserted below). With `ParallelOptions::workers > 1` each query also
/// fans its own search out over root-level R-tree subtrees; results are
/// identical to the serial engines either way (see [`crate::query::parallel`
/// module docs](crate::query::par_topk_query)).
impl PCubeDb {
    /// Top-k under a boolean selection — serial engine, shared-ref entry
    /// point (equivalent to [`topk_query`](crate::query::topk_query)).
    pub fn topk(
        &self,
        selection: &Selection,
        k: usize,
        f: &dyn RankingFunction,
    ) -> crate::query::TopKOutcome {
        crate::query::topk_query(self, selection, k, f, false)
    }

    /// Top-k with a parallel subtree fan-out.
    pub fn par_topk(
        &self,
        selection: &Selection,
        k: usize,
        f: &(dyn RankingFunction + Sync),
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ParTopKOutcome {
        crate::query::par_topk_query(self, selection, k, f, opts)
    }

    /// Skyline under a boolean selection — serial engine.
    pub fn skyline(
        &self,
        selection: &Selection,
        pref_dims: &[usize],
    ) -> crate::query::SkylineOutcome {
        crate::query::skyline_query(self, selection, pref_dims, false)
    }

    /// Skyline with a parallel subtree fan-out.
    pub fn par_skyline(
        &self,
        selection: &Selection,
        pref_dims: &[usize],
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ParSkylineOutcome {
        crate::query::par_skyline_query(self, selection, pref_dims, opts)
    }

    /// Dynamic skyline around `q` — serial engine.
    pub fn dynamic_skyline(
        &self,
        selection: &Selection,
        q: &[f64],
        pref_dims: &[usize],
    ) -> crate::query::DynamicSkylineOutcome {
        crate::query::dynamic_skyline_query(self, selection, q, pref_dims)
    }

    /// Dynamic skyline with a parallel subtree fan-out.
    pub fn par_dynamic_skyline(
        &self,
        selection: &Selection,
        q: &[f64],
        pref_dims: &[usize],
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ParDynamicSkylineOutcome {
        crate::query::par_dynamic_skyline_query(self, selection, q, pref_dims, opts)
    }

    /// Convex hull of the qualifying tuples on two dimensions — serial.
    pub fn hull(&self, selection: &Selection, dims: (usize, usize)) -> crate::query::HullOutcome {
        crate::query::convex_hull_query(self, selection, dims)
    }

    /// Convex hull with a parallel subtree fan-out.
    pub fn par_hull(
        &self,
        selection: &Selection,
        dims: (usize, usize),
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ParHullOutcome {
        crate::query::par_convex_hull_query(self, selection, dims, opts)
    }
}

/// The generic query-class entry points: any
/// [`QueryClass`](crate::query::QueryClass) — built in or user defined —
/// runs through these four methods with no facade changes.
/// The named wrappers above (and the p-skyline / subspace wrappers below)
/// are thin calls into the same machinery.
impl PCubeDb {
    /// Runs a pluggable query class through the serial Algorithm-1 kernel
    /// under the signature probe.
    pub fn run<C: crate::query::QueryClass>(
        &self,
        selection: &Selection,
        class: &C,
    ) -> crate::query::ClassOutcome<C::Row> {
        crate::query::class::run_class(
            self,
            selection,
            class,
            false,
            &crate::query::QueryBudget::unlimited(),
            None,
        )
    }

    /// [`Self::run`] under a [`QueryBudget`](crate::query::QueryBudget) and
    /// optional [`CancelToken`](crate::query::CancelToken).
    pub fn run_governed<C: crate::query::QueryClass>(
        &self,
        selection: &Selection,
        class: &C,
        budget: &crate::query::QueryBudget,
        cancel: Option<&crate::query::CancelToken>,
    ) -> crate::query::ClassOutcome<C::Row> {
        crate::query::class::run_class(self, selection, class, false, budget, cancel)
    }

    /// [`Self::run`] with a parallel subtree fan-out; results are identical
    /// to the serial run (the class's merge contract guarantees it).
    pub fn par_run<C: crate::query::QueryClass + Sync>(
        &self,
        selection: &Selection,
        class: &C,
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ClassOutcome<C::Row> {
        crate::query::par_run_class(
            self,
            selection,
            class,
            opts,
            &crate::query::QueryBudget::unlimited(),
            None,
        )
    }

    /// [`Self::par_run`] under a budget and optional cancel token.
    pub fn par_run_governed<C: crate::query::QueryClass + Sync>(
        &self,
        selection: &Selection,
        class: &C,
        opts: crate::query::ParallelOptions,
        budget: &crate::query::QueryBudget,
        cancel: Option<&crate::query::CancelToken>,
    ) -> crate::query::ClassOutcome<C::Row> {
        crate::query::par_run_class(self, selection, class, opts, budget, cancel)
    }

    /// Prioritized skyline (p-skyline): the skyline under the priority
    /// graph's dominance relation `≻_Γ` — serial.
    pub fn pskyline(
        &self,
        selection: &Selection,
        graph: &crate::query::PriorityGraph,
    ) -> crate::query::ClassOutcome<(u64, Vec<f64>)> {
        self.run(selection, &crate::query::PSkylineClass::new(graph.clone()))
    }

    /// Prioritized skyline with a parallel subtree fan-out.
    pub fn par_pskyline(
        &self,
        selection: &Selection,
        graph: &crate::query::PriorityGraph,
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ClassOutcome<(u64, Vec<f64>)> {
        self.par_run(selection, &crate::query::PSkylineClass::new(graph.clone()), opts)
    }

    /// Subspace skyline: the skyline of the qualifying tuples projected
    /// onto `dims`, with distinct-value semantics on the projection —
    /// serial. Returned coordinate vectors hold only the projected
    /// dimensions, in the order given.
    pub fn subspace_skyline(
        &self,
        selection: &Selection,
        dims: &[usize],
    ) -> crate::query::ClassOutcome<(u64, Vec<f64>)> {
        self.run(selection, &crate::query::SubspaceSkylineClass::new(dims.to_vec()))
    }

    /// Subspace skyline with a parallel subtree fan-out.
    pub fn par_subspace_skyline(
        &self,
        selection: &Selection,
        dims: &[usize],
        opts: crate::query::ParallelOptions,
    ) -> crate::query::ClassOutcome<(u64, Vec<f64>)> {
        self.par_run(selection, &crate::query::SubspaceSkylineClass::new(dims.to_vec()), opts)
    }
}

// The whole read path must stay shareable across threads: the parallel
// engines and any multi-client server lean on this.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PCubeDb>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use pcube_cube::{Predicate, Schema};

    /// The paper's Table I as a PCubeDb (coordinates force Fig 1's grouping
    /// only approximately — STR packs its own tiles — but every signature
    /// property is checked against brute force, not fixed constants).
    fn table1_db() -> PCubeDb {
        let mut r = Relation::new(Schema::new(&["A", "B"], &["X", "Y"]));
        let rows = [
            ("a1", "b1", 0.00, 0.40),
            ("a2", "b2", 0.20, 0.60),
            ("a1", "b1", 0.30, 0.70),
            ("a3", "b3", 0.50, 0.40),
            ("a4", "b1", 0.60, 0.00),
            ("a2", "b3", 0.72, 0.30),
            ("a4", "b2", 0.72, 0.36),
            ("a3", "b3", 0.85, 0.62),
        ];
        for (a, b, x, y) in rows {
            r.push(&[a, b], &[x, y]);
        }
        PCubeDb::build(r, &PCubeConfig::default())
    }

    /// Checks that every materialized signature equals one rebuilt from the
    /// R-tree's current tuple paths — the master consistency invariant.
    fn assert_signatures_consistent(db: &PCubeDb) {
        let mut paths: HashMap<u64, Path> = HashMap::new();
        db.rtree().for_each_tuple(|tid, path, _| {
            paths.insert(tid, path.clone());
        });
        for &cuboid in db.pcube().cuboids() {
            for (cell, tids) in group_by(db.relation(), cuboid) {
                let expect = Signature::from_paths(
                    db.rtree().m_max(),
                    tids.iter().map(|t| &paths[t]),
                );
                let code = db.pcube().registry().code(&cell).expect("cell registered");
                let got = db.pcube().store().load_full(code);
                assert_eq!(got, expect, "cell {cell:?}");
                got.validate(db.rtree().height());
            }
        }
    }

    #[test]
    fn build_registers_atomic_cells_and_valid_signatures() {
        let db = table1_db();
        // A has 4 values, B has 3 → 7 atomic cells.
        assert_eq!(db.pcube().registry().len(), 7);
        assert_signatures_consistent(&db);
    }

    #[test]
    fn probe_for_single_predicate_matches_brute_force() {
        let db = table1_db();
        let a1 = db.selection(&[("A", "a1")]);
        let mut probe = db.pcube().probe(&a1, false);
        let mut paths: HashMap<u64, Path> = HashMap::new();
        db.rtree().for_each_tuple(|tid, p, _| {
            paths.insert(tid, p.clone());
        });
        for tid in 0..db.relation().len() as u64 {
            let expected = db.relation().matches(tid, &a1);
            assert_eq!(probe.contains(&paths[&tid]), expected, "tid {tid}");
        }
    }

    #[test]
    fn probe_for_unknown_value_prunes_everything() {
        let db = table1_db();
        let sel = db.selection(&[("A", "a99")]);
        let mut probe = db.pcube().probe(&sel, false);
        let mut any = false;
        db.rtree().for_each_tuple(|_, p, _| {
            any |= probe.contains(p);
        });
        assert!(!any);
    }

    #[test]
    fn probe_multi_predicate_lazy_and_eager_are_tuple_exact() {
        let db = table1_db();
        let sel = db.selection(&[("A", "a2"), ("B", "b2")]);
        let mut paths: HashMap<u64, Path> = HashMap::new();
        db.rtree().for_each_tuple(|tid, p, _| {
            paths.insert(tid, p.clone());
        });
        for eager in [false, true] {
            let mut probe = db.pcube().probe(&sel, eager);
            for tid in 0..db.relation().len() as u64 {
                let expected = db.relation().matches(tid, &sel);
                assert_eq!(probe.contains(&paths[&tid]), expected, "tid {tid}, eager {eager}");
            }
        }
    }

    #[test]
    fn empty_selection_probe_accepts_all() {
        let db = table1_db();
        let mut probe = db.pcube().probe(&Vec::new(), false);
        db.rtree().for_each_tuple(|_, p, _| {
            assert!(probe.contains(p));
        });
    }

    #[test]
    fn incremental_insert_keeps_signatures_consistent() {
        let mut db = table1_db();
        // Insert enough rows to force leaf and root splits.
        for i in 0..60u32 {
            let f = f64::from(i);
            let a = format!("a{}", i % 5 + 1);
            let b = format!("b{}", i % 4 + 1);
            db.insert(&[&a, &b], &[(f * 0.137) % 1.0, (f * 0.311) % 1.0]);
            if i % 10 == 0 {
                assert_signatures_consistent(&db);
            }
        }
        db.rtree().check_invariants();
        assert_signatures_consistent(&db);
        assert_eq!(db.relation().len(), 68);
    }

    #[test]
    fn insert_with_new_dictionary_value_creates_cell() {
        let mut db = table1_db();
        let before = db.pcube().registry().len();
        db.insert(&["a9", "b9"], &[0.99, 0.99]);
        assert_eq!(db.pcube().registry().len(), before + 2);
        assert_signatures_consistent(&db);
        // The new cell is immediately queryable.
        let sel = db.selection(&[("A", "a9")]);
        let mut probe = db.pcube().probe(&sel, false);
        let mut hits = 0;
        db.rtree().for_each_tuple(|_, p, _| {
            if probe.contains(p) {
                hits += 1;
            }
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn materializing_level2_cuboids_serves_composite_cells_directly() {
        let mut r = Relation::new(Schema::new(&["A", "B"], &["X", "Y"]));
        for i in 0..40u32 {
            let f = f64::from(i);
            r.push(
                &[&format!("a{}", i % 3), &format!("b{}", i % 2)],
                &[(f * 0.7) % 1.0, (f * 0.3) % 1.0],
            );
        }
        let cfg = PCubeConfig {
            plan: MaterializationPlan::UpToLevel(2),
            ..PCubeConfig::default()
        };
        let db = PCubeDb::build(r, &cfg);
        assert_eq!(db.pcube().cuboids().len(), 3);
        let sel = vec![Predicate { dim: 0, value: 1 }, Predicate { dim: 1, value: 0 }];
        let probe = db.pcube().probe(&sel, false);
        assert!(matches!(probe, BooleanProbe::Single(_)), "composite cell should be direct");
        assert_signatures_consistent(&db);
    }
}
