//! Durable concurrent maintenance: WAL, incremental checkpoints, crash
//! recovery, and epoch-based snapshot isolation.
//!
//! [`DurableDb`] wraps a mutable *master* [`PCubeDb`] with the classic
//! ARIES-shaped discipline, scaled to this workspace's simulated storage
//! (see `DESIGN.md` §10):
//!
//! 1. **Log first.** Every maintenance transaction appends typed,
//!    CRC32-framed [`WalRecord`]s *before* mutating any page: a logical redo
//!    record per operation (`TreeSplit`), a per-cell signature summary
//!    (`SigUpdate`), a physical CRC witness per dirtied page (`PageWrite`),
//!    and finally `Commit`. Fsyncs batch across commits
//!    ([`DurabilityOptions::fsync_every`]).
//! 2. **Checkpoint incrementally.** The pagers track dirty pages; a
//!    checkpoint flushes only those into a shadow [`CheckpointImage`]
//!    (staged, then installed atomically), logs a `Checkpoint` record, and
//!    truncates the WAL prefix it covers — replacing the monolithic
//!    persist-v2 save on the write path.
//! 3. **Recover by replay.** [`DurableDb::open_or_recover`] restores the
//!    last checkpoint image (verifying every page CRC), re-executes the
//!    committed WAL suffix, verifies each transaction's page witnesses and
//!    signature summaries against the replay, drops the torn tail and any
//!    uncommitted transaction, and reports it all in a typed
//!    [`RecoveryReport`] — never a panic, never an approximately-right
//!    database.
//! 4. **Publish epochs.** Every commit publishes a new immutable
//!    [`EpochSnapshot`] (a deep copy sharing only the I/O ledger) through an
//!    atomic pointer swap. Readers obtained via [`DurableDb::reader`] pin
//!    whatever epoch they started with: the writer never blocks them, and a
//!    query never observes a half-applied transaction.
//!
//! Crash testing: install a [`CrashPlan`] with [`DurableDb::set_crash_plan`]
//! and the engine deterministically "dies" (poisons itself) at any chosen
//! WAL-append / fsync / page-flush / checkpoint boundary; the harness then
//! recovers from [`DurableDb::durable_state`] and differential-tests the
//! result (`tests/crash_recovery.rs`).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use pcube_bptree::BPlusTree;
use pcube_cube::{CellKey, Relation};
use pcube_rtree::{Path as TreePath, RTree, RTreeConfig};
use pcube_storage::{
    crc32, CrashPlan, CrashPoint, IoCategory, IoStats, Lsn, PageId, Pager, SharedStats, StoreKind,
    TreeOp, Wal, WalRecord, WalStats,
};

use crate::pcube::{PCube, PCubeConfig, PCubeDb};
use crate::persist::{
    self, open_section, put_section, put_u32, put_u64, PersistError, Reader,
};
use crate::signature::Signature;
use crate::store::SignatureStore;

/// 8-byte magic of a serialized checkpoint image; the version is the last
/// byte.
const CKPT_MAGIC: &[u8; 8] = b"PCUBECK2";
/// Byte length of the watermark header after the magic: four u64 watermarks
/// (epoch, txns, next_txn, next_lsn) followed by their CRC32.
const CKPT_HEAD_LEN: usize = 36;
/// Section tags inside a checkpoint image, in order.
const TAG_META: u8 = 1;
const TAG_RTREE_PAGES: u8 = 2;
const TAG_SIG_PAGES: u8 = 3;
const TAG_DIR_PAGES: u8 = 4;

/// Tuning knobs of the durability pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Fsync the WAL after every `n`-th commit (group commit). `1` syncs
    /// each commit before acknowledging it as durable; larger values trade
    /// a bounded window of acknowledged-but-volatile transactions for fewer
    /// syncs. Commits inside the window report `durable: false` on their
    /// [`CommitReceipt`].
    pub fsync_every: u64,
    /// Automatically checkpoint after this many commits (`0` = manual
    /// checkpoints only, via [`DurableDb::checkpoint`] or the SQL
    /// `CHECKPOINT` directive).
    pub checkpoint_every: u64,
    /// Simulated wall-clock cost of one WAL fsync, in microseconds (`0` =
    /// free). The in-memory "disk" syncs in nanoseconds, which would make
    /// every batching policy look equally good; benchmarks set this to a
    /// realistic device latency so group commit's fsync amortization shows
    /// up in wall time, the same way `--wall-io-us` scales page reads.
    pub fsync_delay_us: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions { fsync_every: 1, checkpoint_every: 0, fsync_delay_us: 0 }
    }
}

/// One logical maintenance operation inside a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum MaintenanceOp {
    /// Insert a row with pre-encoded boolean codes and preference coords.
    Insert {
        /// Dictionary codes, one per boolean dimension.
        codes: Vec<u32>,
        /// Preference coordinates, one per preference dimension.
        coords: Vec<f64>,
    },
    /// Delete the tuple with this id (tombstone: the relation row remains,
    /// the tuple vanishes from every index and query result).
    Delete {
        /// The tuple to delete.
        tid: u64,
    },
}

/// What [`DurableDb::apply`] hands back for a committed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitReceipt {
    /// The transaction id (dense, starting at 1).
    pub txn: u64,
    /// The catalog epoch this commit published.
    pub epoch: u64,
    /// Whether the commit record was fsynced before returning. `false`
    /// under group commit until the batch syncs — a crash may drop it.
    pub durable: bool,
    /// LSN of the transaction's `Commit` record.
    pub lsn: Lsn,
}

/// What a checkpoint did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointOutcome {
    /// The epoch the image now covers.
    pub epoch: u64,
    /// Committed transactions contained in the image.
    pub txns: u64,
    /// Dirty pages flushed into the image (across all three stores).
    pub pages_flushed: u64,
    /// WAL bytes reclaimed by truncation.
    pub wal_bytes_reclaimed: u64,
}

/// What an online repair pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Cells whose signatures were rebuilt from the base table.
    pub cells_rebuilt: u64,
    /// Quarantined pages healed (freed unread and re-allocated clean).
    pub pages_healed: u64,
    /// The WAL transaction that made the rebuild durable, or `None` when
    /// nothing was quarantined and repair was a no-op.
    pub txn: Option<u64>,
    /// The catalog epoch after repair published (unchanged on a no-op).
    pub epoch: u64,
}

impl std::fmt::Display for RepairOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.txn {
            Some(txn) => write!(
                f,
                "repair: {} cells rebuilt, {} pages healed (txn {}, epoch {})",
                self.cells_rebuilt, self.pages_healed, txn, self.epoch
            ),
            None => write!(f, "repair: nothing quarantined, no-op"),
        }
    }
}

/// A typed account of what recovery found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `true` when the WAL held nothing beyond the checkpoint: no replay,
    /// no torn tail, no dropped transactions.
    pub clean: bool,
    /// Epoch of the checkpoint image recovery started from.
    pub checkpoint_epoch: u64,
    /// Committed transactions already contained in that image.
    pub checkpoint_txns: u64,
    /// Total durable WAL bytes scanned.
    pub wal_bytes: u64,
    /// Intact records decoded from the WAL.
    pub records_scanned: u64,
    /// Records belonging to transactions that were replayed.
    pub records_replayed: u64,
    /// Committed transactions re-executed on top of the image.
    pub txns_replayed: u64,
    /// Transactions with records but no `Commit` — dropped.
    pub txns_dropped: u64,
    /// Bytes discarded at the log tail (torn fsync or corruption).
    pub torn_tail_bytes: u64,
    /// Distinct pages whose `PageWrite` CRC witnesses were re-verified
    /// against the replayed state ("repaired" by redo).
    pub pages_repaired: u64,
    /// Live checkpoint pages whose stored CRC32 was verified on restore.
    pub pages_verified: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.clean {
            write!(
                f,
                "clean open: checkpoint epoch {} ({} txns), {} pages verified",
                self.checkpoint_epoch, self.checkpoint_txns, self.pages_verified
            )
        } else {
            write!(
                f,
                "recovered: checkpoint epoch {} ({} txns) + {} txns replayed \
                 ({} of {} records, {} pages repaired, {} pages verified), \
                 {} uncommitted txns dropped, {} torn tail bytes dropped",
                self.checkpoint_epoch,
                self.checkpoint_txns,
                self.txns_replayed,
                self.records_replayed,
                self.records_scanned,
                self.pages_repaired,
                self.pages_verified,
                self.txns_dropped,
                self.torn_tail_bytes
            )
        }
    }
}

/// Everything a crash preserves: the last installed checkpoint image and
/// the durable WAL prefix. The in-memory crash harness shuttles this between
/// a "killed" instance and [`DurableDb::open_or_recover_from_state`]; the
/// file mode persists the same two byte strings as two files.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurableState {
    /// Serialized [`CheckpointImage`].
    pub checkpoint: Vec<u8>,
    /// Durable WAL bytes (framed records; may end in a torn frame).
    pub wal: Vec<u8>,
}

/// A durability failure.
#[derive(Debug, Clone, PartialEq)]
pub enum DurabilityError {
    /// An injected crash fired at this boundary; the instance is poisoned.
    Crashed {
        /// Where the simulated kill struck.
        point: CrashPoint,
    },
    /// The instance crashed earlier and refuses further work.
    Poisoned {
        /// The boundary the earlier crash struck at.
        point: CrashPoint,
    },
    /// A submitted operation is malformed (wrong arity, dead tuple, …). The
    /// transaction was rejected before any log or page mutation.
    InvalidOp {
        /// What was wrong with it.
        cause: String,
    },
    /// A checkpoint image failed validation (bad magic, page CRC, framing).
    Corrupt {
        /// Which store or image part failed.
        store: String,
        /// What failed.
        cause: String,
    },
    /// WAL replay diverged from the logged evidence — the recovered state
    /// would not be bit-identical to the pre-crash state, so recovery fails
    /// loudly instead of serving wrong answers.
    Replay {
        /// The transaction whose replay diverged.
        txn: u64,
        /// How it diverged.
        cause: String,
    },
    /// The WAL fsync kept failing after bounded retries with exponential
    /// backoff (see `pcube_storage::WalSyncError`). The unsynced tail is
    /// still pending — not lost, not durable — and a later
    /// [`DurableDb::sync`] may yet land it; affected commits stay
    /// acknowledged-but-volatile exactly like the group-commit window.
    WalSync {
        /// Fsync attempts made before giving up.
        attempts: u32,
        /// Total microseconds of backoff spent across the retries.
        backoff_us: u64,
    },
    /// Online repair could not rebuild the quarantined signatures — e.g.
    /// the damage blast radius could not be established because the
    /// signature *directory* is unreadable too. Repair heals derived data
    /// only; it never guesses. Nothing was logged or mutated.
    Repair {
        /// What stopped the rebuild.
        cause: String,
    },
    /// A persist-format error inside the checkpoint metadata.
    Persist(PersistError),
    /// A filesystem error (file mode only).
    Io {
        /// The path involved.
        path: String,
        /// The OS error.
        cause: String,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Crashed { point } => {
                write!(f, "simulated crash at {}", point.name())
            }
            DurabilityError::Poisoned { point } => {
                write!(f, "instance poisoned by an earlier crash at {}", point.name())
            }
            DurabilityError::InvalidOp { cause } => write!(f, "invalid operation: {cause}"),
            DurabilityError::Corrupt { store, cause } => {
                write!(f, "corrupt checkpoint ({store}): {cause}")
            }
            DurabilityError::Replay { txn, cause } => {
                write!(f, "replay diverged at txn {txn}: {cause}")
            }
            DurabilityError::WalSync { attempts, backoff_us } => write!(
                f,
                "wal fsync failed after {attempts} attempts ({backoff_us} us of backoff); tail still pending"
            ),
            DurabilityError::Repair { cause } => write!(f, "repair failed: {cause}"),
            DurabilityError::Persist(e) => write!(f, "{e}"),
            DurabilityError::Io { path, cause } => write!(f, "io error on {path}: {cause}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<PersistError> for DurabilityError {
    fn from(e: PersistError) -> Self {
        DurabilityError::Persist(e)
    }
}

// ---------------------------------------------------------------- epochs --

/// An immutable database snapshot published at one catalog epoch. Derefs to
/// [`PCubeDb`], so every query entry point (including the `par_*` engines)
/// works on it directly.
pub struct EpochSnapshot {
    epoch: u64,
    /// Shared with the writer's master until the writer's next mutation
    /// re-owns it — publishing costs one refcount bump, not a struct walk.
    db: Arc<PCubeDb>,
}

impl EpochSnapshot {
    /// The catalog epoch this snapshot was published at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen database.
    pub fn db(&self) -> &PCubeDb {
        &self.db
    }
}

impl Deref for EpochSnapshot {
    type Target = PCubeDb;

    fn deref(&self) -> &PCubeDb {
        &self.db
    }
}

/// A cloneable, `Send + Sync` handle reader threads use to pin epochs
/// without borrowing the [`DurableDb`] (so a writer holding `&mut` never
/// blocks them). [`EpochReader::snapshot`] is one `Arc` clone under a
/// momentary read lock; the returned snapshot stays valid — and bit-stable —
/// for as long as the caller holds it, across any number of concurrent
/// commits and checkpoints.
///
/// Durability of what a snapshot shows: with the default
/// [`DurabilityOptions::fsync_every`] of 1, a transaction is published only
/// *after* its commit record is fsynced, so snapshots never contain state a
/// crash could roll back. Under group commit (`fsync_every > 1`), commits
/// inside the unsynced window are published immediately — the same
/// acknowledged-but-volatile window their [`CommitReceipt::durable`] flag
/// reports — so a snapshot may briefly show transactions a crash would drop.
#[derive(Clone)]
pub struct EpochReader {
    current: Arc<RwLock<Arc<EpochSnapshot>>>,
}

impl EpochReader {
    /// Pins and returns the latest published snapshot.
    ///
    /// Poison-proof: the published pointer is only ever *replaced* (an `Arc`
    /// store that cannot unwind mid-swap), so a writer thread that panicked
    /// while holding the lock left a fully consistent snapshot behind.
    /// Readers take the inner value rather than wedging every future query
    /// on a crashed writer's poison flag.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.current.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.snapshot().epoch
    }
}

// ------------------------------------------------------- checkpoint image --

/// The durable mirror of one pager: page bytes + CRC32 per live slot, plus
/// the free list. Patched incrementally from dirty-page flushes.
/// A staged checkpoint patch: one entry per flushed dirty page (`None`
/// drops a freed slot), each carrying the page bytes and their CRC32.
type PagePatch = Vec<(u32, Option<(Box<[u8]>, u32)>)>;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Mirror {
    page_size: usize,
    pages: Vec<Option<(Box<[u8]>, u32)>>,
    free: Vec<PageId>,
}

impl Mirror {
    /// Full capture of a pager (initial checkpoint).
    fn capture(pager: &Pager) -> Mirror {
        let pages = (0..pager.n_slots())
            .map(|i| {
                pager
                    .page_bytes(PageId(i as u32))
                    .map(|b| (b.to_vec().into_boxed_slice(), crc32(b)))
            })
            .collect();
        Mirror { page_size: pager.page_size(), pages, free: pager.free_list() }
    }

    /// Applies a staged patch (one entry per flushed dirty page; `None`
    /// drops a freed page) and replaces the free list.
    fn apply(&mut self, patch: PagePatch, free: Vec<PageId>) {
        for (pid, entry) in patch {
            let idx = pid as usize;
            if self.pages.len() <= idx {
                self.pages.resize(idx + 1, None);
            }
            self.pages[idx] = entry;
        }
        self.free = free;
    }

    /// Rebuilds a live pager, verifying every stored page CRC. Returns the
    /// pager and the number of pages verified.
    fn to_pager(
        &self,
        kind: StoreKind,
        category: IoCategory,
        stats: SharedStats,
    ) -> Result<(Pager, u64), DurabilityError> {
        let mut pages: Vec<Option<Box<[u8]>>> = Vec::with_capacity(self.pages.len());
        let mut verified = 0u64;
        for (i, slot) in self.pages.iter().enumerate() {
            match slot {
                None => pages.push(None),
                Some((bytes, stored)) => {
                    if bytes.len() != self.page_size {
                        return Err(DurabilityError::Corrupt {
                            store: kind.name().to_string(),
                            cause: format!(
                                "page {i} has {} bytes, expected {}",
                                bytes.len(),
                                self.page_size
                            ),
                        });
                    }
                    let actual = crc32(bytes);
                    if actual != *stored {
                        return Err(DurabilityError::Corrupt {
                            store: kind.name().to_string(),
                            cause: format!(
                                "page {i} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                            ),
                        });
                    }
                    verified += 1;
                    pages.push(Some(bytes.clone()));
                }
            }
        }
        Ok((Pager::from_pages(self.page_size, pages, self.free.clone(), category, stats), verified))
    }

    fn serialize_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.page_size as u64);
        put_u64(out, self.pages.len() as u64);
        for slot in &self.pages {
            match slot {
                None => out.push(0),
                Some((bytes, crc)) => {
                    out.push(1);
                    out.extend_from_slice(bytes);
                    put_u32(out, *crc);
                }
            }
        }
        put_u64(out, self.free.len() as u64);
        for pid in &self.free {
            put_u32(out, pid.0);
        }
    }

    fn read(r: &mut Reader<'_>) -> Result<Mirror, PersistError> {
        let page_size = r.u64()? as usize;
        if page_size == 0 || page_size > (1 << 24) {
            return r.err(format!("implausible page size {page_size}"));
        }
        let n_slots = r.count(8, 1, "page slot count")?;
        let mut pages = Vec::with_capacity(n_slots);
        for i in 0..n_slots {
            match r.u8()? {
                0 => pages.push(None),
                1 => {
                    let bytes = r.bytes(page_size)?;
                    let crc = r.u32()?;
                    pages.push(Some((bytes.to_vec().into_boxed_slice(), crc)));
                }
                t => return r.err(format!("invalid page tag {t} at slot {i}")),
            }
        }
        let n_free = r.count(8, 4, "free-list length")?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(PageId(r.u32()?));
        }
        Ok(Mirror { page_size, pages, free })
    }
}

/// The durable checkpoint: metadata (relation, registry, cuboids, tree
/// scalars — reusing the persist-v2 payload formats) plus one [`Mirror`]
/// per paged store. Installed atomically; serializable for the file mode
/// and the crash harness.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    epoch: u64,
    /// Committed transactions whose effects the image contains — the replay
    /// cutoff: recovery re-executes only transactions beyond this.
    txns: u64,
    next_txn: u64,
    next_lsn: Lsn,
    meta: Vec<u8>,
    rtree: Mirror,
    sigs: Mirror,
    dir: Mirror,
}

impl CheckpointImage {
    /// Full capture of a master database (initial checkpoint).
    fn capture(master: &PCubeDb, epoch: u64, txns: u64, next_txn: u64, next_lsn: Lsn) -> Self {
        let (sig_pager, directory, _, _) = master.pcube.store.parts_ref();
        CheckpointImage {
            epoch,
            txns,
            next_txn,
            next_lsn,
            meta: meta_payload(master),
            rtree: Mirror::capture(master.rtree.pager()),
            sigs: Mirror::capture(sig_pager),
            dir: Mirror::capture(directory.pager()),
        }
    }

    /// The committed-transaction watermark (the replay cutoff).
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// The epoch the image was installed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Serializes the image (magic, watermarks, framed sections).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(CKPT_MAGIC);
        let mut head = Vec::new();
        put_u64(&mut head, self.epoch);
        put_u64(&mut head, self.txns);
        put_u64(&mut head, self.next_txn);
        put_u64(&mut head, self.next_lsn);
        // The sections below are CRC-framed; the watermarks need their own
        // checksum or a flipped bit silently skews the replay cutoff.
        let head_crc = crc32(&head);
        put_u32(&mut head, head_crc);
        out.extend_from_slice(&head);
        put_section(&mut out, TAG_META, &self.meta);
        let mut payload = Vec::new();
        self.rtree.serialize_into(&mut payload);
        put_section(&mut out, TAG_RTREE_PAGES, &payload);
        payload.clear();
        self.sigs.serialize_into(&mut payload);
        put_section(&mut out, TAG_SIG_PAGES, &payload);
        payload.clear();
        self.dir.serialize_into(&mut payload);
        put_section(&mut out, TAG_DIR_PAGES, &payload);
        out
    }

    /// Parses an image serialized by [`CheckpointImage::to_bytes`]. Section
    /// framing and CRCs are verified here; per-page CRCs are verified when
    /// the image is restored into pagers.
    pub fn from_bytes(image: &[u8]) -> Result<CheckpointImage, DurabilityError> {
        if image.len() < CKPT_MAGIC.len() + CKPT_HEAD_LEN {
            return persist::fail("checkpoint-header", 0, "image shorter than the header").map_err(Into::into);
        }
        if &image[..8] != CKPT_MAGIC {
            return persist::fail("checkpoint-header", 0, "not a checkpoint image").map_err(Into::into);
        }
        let stored = {
            let mut raw = [0u8; 4];
            raw.copy_from_slice(&image[40..44]);
            u32::from_le_bytes(raw)
        };
        let actual = crc32(&image[8..40]);
        if actual != stored {
            return Err(DurabilityError::Corrupt {
                store: "checkpoint-header".to_string(),
                cause: format!(
                    "watermark checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            });
        }
        let word = |i: usize| {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&image[8 + i * 8..16 + i * 8]);
            u64::from_le_bytes(raw)
        };
        let (epoch, txns, next_txn, next_lsn) = (word(0), word(1), word(2), word(3));
        if next_lsn == 0 || next_txn == 0 || txns >= next_txn {
            return Err(DurabilityError::Corrupt {
                store: "checkpoint-header".to_string(),
                cause: format!(
                    "implausible watermarks (txns {txns}, next_txn {next_txn}, next_lsn {next_lsn})"
                ),
            });
        }
        let mut pos = 8 + CKPT_HEAD_LEN;
        let mut r = open_section(image, &mut pos, TAG_META, "checkpoint-meta")?;
        let meta = r.remaining_bytes().to_vec();
        let mut r = open_section(image, &mut pos, TAG_RTREE_PAGES, "checkpoint-rtree")?;
        let rtree = Mirror::read(&mut r)?;
        r.finish()?;
        let mut r = open_section(image, &mut pos, TAG_SIG_PAGES, "checkpoint-signatures")?;
        let sigs = Mirror::read(&mut r)?;
        r.finish()?;
        let mut r = open_section(image, &mut pos, TAG_DIR_PAGES, "checkpoint-directory")?;
        let dir = Mirror::read(&mut r)?;
        r.finish()?;
        if pos != image.len() {
            return persist::fail("checkpoint-image", pos, "trailing bytes after the image").map_err(Into::into);
        }
        Ok(CheckpointImage { epoch, txns, next_txn, next_lsn, meta, rtree, sigs, dir })
    }

    /// Restores the image into a fresh, queryable master database,
    /// verifying every live page's CRC32. Returns the database and the
    /// number of pages verified.
    fn restore(&self) -> Result<(PCubeDb, u64), DurabilityError> {
        let stats = IoStats::new_shared();
        let mut r = Reader::over(&self.meta, "checkpoint-meta");
        let mut relation = persist::read_relation_payload(&mut r)?;
        relation.attach_stats(stats.clone());
        let (cuboids, registry) = persist::read_cube_payload(&mut r)?;
        let dims = r.u32()? as usize;
        let m_max = r.u32()? as usize;
        let m_min = r.u32()? as usize;
        let root = PageId(r.u32()?);
        let height = r.u64()? as usize;
        let len = r.u64()?;
        let s_m_max = r.u64()? as usize;
        let s_height = r.u64()? as usize;
        let d_root = PageId(r.u32()?);
        let d_height = r.u64()? as usize;
        let d_len = r.u64()?;
        if dims != relation.schema().n_pref() {
            return r.err("R-tree dimensionality does not match the schema").map_err(Into::into);
        }
        if m_max < 2 || m_min == 0 || 2 * m_min > m_max + 1 {
            return r
                .err(format!("implausible R-tree fanout (m_min {m_min}, m_max {m_max})"))
                .map_err(Into::into);
        }
        r.finish()?;
        let (rtree_pager, v1) = self.rtree.to_pager(StoreKind::Rtree, IoCategory::RtreeBlock, stats.clone())?;
        let (sig_pager, v2) =
            self.sigs.to_pager(StoreKind::Signature, IoCategory::SignaturePage, stats.clone())?;
        let (dir_pager, v3) =
            self.dir.to_pager(StoreKind::Directory, IoCategory::BptreePage, stats.clone())?;
        let config = RTreeConfig::explicit(dims, m_min, m_max);
        let rtree = RTree::from_parts(rtree_pager, config, root, height, len);
        let directory = BPlusTree::from_parts(dir_pager, d_root, d_height, d_len);
        let store = SignatureStore::from_parts(sig_pager, directory, s_m_max, s_height);
        Ok((
            PCubeDb {
                relation,
                rtree,
                pcube: PCube { registry: Arc::new(registry), store, cuboids },
                stats,
                admission: None,
            },
            v1 + v2 + v3,
        ))
    }
}

/// Serializes the non-paged state of a master database: relation + cube
/// payloads (persist-v2 formats) followed by the tree scalars.
fn meta_payload(master: &PCubeDb) -> Vec<u8> {
    let mut meta = Vec::new();
    persist::write_relation_payload(&master.relation, &mut meta);
    persist::write_cube_payload(&master.pcube, &mut meta);
    let (root, height, len) = master.rtree.parts();
    put_u32(&mut meta, master.rtree.dims() as u32);
    put_u32(&mut meta, master.rtree.m_max() as u32);
    put_u32(&mut meta, master.rtree.m_min() as u32);
    put_u32(&mut meta, root.0);
    put_u64(&mut meta, height as u64);
    put_u64(&mut meta, len);
    let (_, directory, s_m_max, s_height) = master.pcube.store.parts_ref();
    put_u64(&mut meta, s_m_max as u64);
    put_u64(&mut meta, s_height as u64);
    let (d_root, d_height, d_len) = directory.parts();
    put_u32(&mut meta, d_root.0);
    put_u64(&mut meta, d_height as u64);
    put_u64(&mut meta, d_len);
    meta
}

// -------------------------------------------------------------- DurableDb --

const STORE_KINDS: [StoreKind; 3] = [StoreKind::Rtree, StoreKind::Signature, StoreKind::Directory];

fn kind_idx(kind: StoreKind) -> usize {
    match kind {
        StoreKind::Rtree => 0,
        StoreKind::Signature => 1,
        StoreKind::Directory => 2,
    }
}

/// A [`PCubeDb`] under durable, snapshot-isolated maintenance. See the
/// module docs for the protocol.
pub struct DurableDb {
    /// The live database, shared with the current [`EpochSnapshot`]:
    /// publishing an epoch is one `Arc` clone and a pointer swap, and the
    /// write path re-owns the top-level structs (pages stay copy-on-write
    /// below them) via `Arc::make_mut` on its first mutation afterwards.
    master: Arc<PCubeDb>,
    published: Arc<RwLock<Arc<EpochSnapshot>>>,
    wal: Wal,
    image: CheckpointImage,
    opts: DurabilityOptions,
    crash: Option<CrashPlan>,
    poisoned: Option<CrashPoint>,
    epoch: u64,
    next_txn: u64,
    /// Highest transaction applied to the master (all of them, since apply
    /// mutates in-memory state immediately).
    applied_txns: u64,
    /// Highest transaction whose `Commit` record has been fsynced.
    synced_txns: u64,
    commits_since_sync: u64,
    commits_since_checkpoint: u64,
    /// Pages dirtied since the last checkpoint, per store.
    ckpt_dirty: [BTreeSet<u32>; 3],
    /// Live (not deleted) tuple ids — upfront validation so a malformed
    /// batch is rejected *before* any WAL append or page mutation.
    live: HashSet<u64>,
    /// File mode: the directory holding `checkpoint.pcube` + `wal.pcube`.
    dir: Option<PathBuf>,
    /// File mode: durable WAL bytes already appended to the log file.
    file_synced: usize,
    /// Epochs published so far (one per commit/batch).
    publishes: u64,
    /// Total wall time spent inside [`DurableDb::publish`], in nanoseconds.
    /// With copy-on-write snapshots this must stay flat as the database
    /// grows; `recovery_bench` gates on it.
    publish_ns: u64,
}

impl DurableDb {
    /// Builds a database over `relation` and captures its initial (full)
    /// checkpoint. The WAL starts empty; epoch 1 is published.
    pub fn create(relation: Relation, config: &PCubeConfig, opts: DurabilityOptions) -> Self {
        let mut master = PCubeDb::build(relation, config);
        // The build dirtied every page; the full capture below covers them.
        master.rtree.pager_mut().clear_dirty();
        master.pcube.store.sig_pager_mut().clear_dirty();
        master.pcube.store.dir_pager_mut().clear_dirty();
        let image = CheckpointImage::capture(&master, 1, 0, 1, 1);
        let live = (0..master.relation.len() as u64).collect();
        let master = Arc::new(master);
        let snapshot = Arc::new(EpochSnapshot { epoch: 1, db: Arc::clone(&master) });
        let mut wal = Wal::new();
        wal.attach_stats(master.stats.clone());
        DurableDb {
            master,
            published: Arc::new(RwLock::new(snapshot)),
            wal,
            image,
            opts,
            crash: None,
            poisoned: None,
            epoch: 1,
            next_txn: 1,
            applied_txns: 0,
            synced_txns: 0,
            commits_since_sync: 0,
            commits_since_checkpoint: 0,
            ckpt_dirty: [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()],
            live,
            dir: None,
            file_synced: 0,
            publishes: 0,
            publish_ns: 0,
        }
    }

    /// [`DurableDb::create`] persisted at `dir` (two files:
    /// `checkpoint.pcube` and `wal.pcube`).
    pub fn create_at(
        dir: impl AsRef<Path>,
        relation: Relation,
        config: &PCubeConfig,
        opts: DurabilityOptions,
    ) -> Result<Self, DurabilityError> {
        let mut db = Self::create(relation, config, opts);
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        db.dir = Some(dir);
        db.persist_checkpoint_file()?;
        db.persist_wal_file_full()?;
        Ok(db)
    }

    /// Re-opens a durable database from its two files, replaying the WAL
    /// past the last checkpoint. A missing WAL file is treated as empty
    /// (clean shutdown right after a checkpoint).
    pub fn open_or_recover(
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let dir = dir.as_ref().to_path_buf();
        let ckpt_path = dir.join("checkpoint.pcube");
        let checkpoint = std::fs::read(&ckpt_path).map_err(|e| io_err(&ckpt_path, e))?;
        let wal_path = dir.join("wal.pcube");
        let wal = match std::fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&wal_path, e)),
        };
        let state = DurableState { checkpoint, wal };
        let (mut db, report) = Self::open_or_recover_from_state(&state, opts)?;
        db.dir = Some(dir);
        if report.torn_tail_bytes > 0 || report.txns_dropped > 0 {
            // The on-disk log still ends in the debris recovery discarded
            // (a torn frame and/or an uncommitted suffix); rewrite it to the
            // surviving prefix so post-recovery appends don't land after
            // bytes the next replay would reject or mis-group.
            db.persist_wal_file_full()?;
        } else {
            db.file_synced = db.wal.durable_len();
        }
        Ok((db, report))
    }

    /// The in-memory recovery path: restore the checkpoint image (verifying
    /// every page CRC), replay the committed WAL suffix (verifying page
    /// witnesses and signature summaries against the re-execution), drop
    /// the torn tail and uncommitted transactions.
    pub fn open_or_recover_from_state(
        state: &DurableState,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let image = CheckpointImage::from_bytes(&state.checkpoint)?;
        let (mut master, pages_verified) = image.restore()?;

        let replay = Wal::replay(&state.wal);
        let records_scanned = replay.records.len() as u64;
        let max_lsn = replay.records.last().map_or(0, |(lsn, _)| *lsn);
        // The log the recovered instance writes to must end at the intact
        // prefix: re-appending after the torn/corrupt tail bytes that replay
        // just rejected would leave every later commit behind a bad frame,
        // and the *next* recovery (which stops at the first bad frame) would
        // silently drop all of them.
        let intact = (replay.scanned_bytes - replay.torn_tail_bytes) as usize;

        // Group records per transaction, preserving log order within each.
        let mut groups: BTreeMap<u64, Vec<&WalRecord>> = BTreeMap::new();
        let mut committed: BTreeSet<u64> = BTreeSet::new();
        for (_, rec) in &replay.records {
            if let Some(txn) = rec.txn() {
                groups.entry(txn).or_default().push(rec);
                if matches!(rec, WalRecord::Commit { .. }) {
                    committed.insert(txn);
                }
            }
        }

        let mut records_replayed = 0u64;
        let mut txns_replayed = 0u64;
        let mut repaired: HashSet<(StoreKind, u32)> = HashSet::new();
        let mut expect_txn = image.txns;
        for (&txn, recs) in &groups {
            if txn <= image.txns || !committed.contains(&txn) {
                continue;
            }
            // Commits are WAL-ordered, so committed transactions beyond the
            // image watermark must form a gapless run.
            if txn != expect_txn + 1 {
                return Err(DurabilityError::Replay {
                    txn,
                    cause: format!("commit gap: expected txn {}", expect_txn + 1),
                });
            }
            expect_txn = txn;
            txns_replayed += 1;
            records_replayed += recs.len() as u64;
            replay_txn(&mut master, txn, recs, &mut repaired)?;
        }
        let txns_dropped = groups
            .keys()
            .filter(|&&t| t > image.txns && !committed.contains(&t))
            .count() as u64;
        // Records of dropped (uncommitted) transactions trail the log —
        // appends are serial — and must not survive into the re-opened WAL:
        // recovery reuses the dropped transaction id, so a later commit's
        // records would merge with the stale ones and the next replay would
        // diverge on the combined group.
        let drop_from: Option<Lsn> = replay
            .records
            .iter()
            .find(|(_, rec)| {
                rec.txn().is_some_and(|t| t > image.txns && !committed.contains(&t))
            })
            .map(|(lsn, _)| *lsn);

        // Everything the replay dirtied belongs to the next checkpoint.
        let mut ckpt_dirty = [BTreeSet::new(), BTreeSet::new(), BTreeSet::new()];
        for (set, pager) in ckpt_dirty.iter_mut().zip([
            master.rtree.pager_mut(),
            master.pcube.store.sig_pager_mut(),
        ]) {
            set.extend(pager.take_dirty().into_iter().map(|p| p.0));
        }
        ckpt_dirty[2]
            .extend(master.pcube.store.dir_pager_mut().take_dirty().into_iter().map(|p| p.0));

        let mut live: HashSet<u64> = HashSet::new();
        master.rtree.for_each_tuple(|tid, _, _| {
            live.insert(tid);
        });

        let report = RecoveryReport {
            clean: txns_replayed == 0 && txns_dropped == 0 && replay.torn_tail_bytes == 0,
            checkpoint_epoch: image.epoch,
            checkpoint_txns: image.txns,
            wal_bytes: state.wal.len() as u64,
            records_scanned,
            records_replayed,
            txns_replayed,
            txns_dropped,
            torn_tail_bytes: replay.torn_tail_bytes,
            pages_repaired: repaired.len() as u64,
            pages_verified,
        };

        let epoch = image.epoch + txns_replayed;
        let next_txn = image.next_txn.max(expect_txn + 1);
        let applied = image.txns + txns_replayed;
        let master = Arc::new(master);
        let snapshot = Arc::new(EpochSnapshot { epoch, db: Arc::clone(&master) });
        let stats_handle = master.stats.clone();
        let db = DurableDb {
            master,
            published: Arc::new(RwLock::new(snapshot)),
            wal: {
                let mut wal = Wal::from_durable(
                    state.wal[..intact].to_vec(),
                    max_lsn.max(image.next_lsn.saturating_sub(1)) + 1,
                );
                if let Some(lsn) = drop_from {
                    wal.truncate_durable_from(lsn);
                }
                wal.attach_stats(stats_handle);
                wal
            },
            image,
            opts,
            crash: None,
            poisoned: None,
            epoch,
            next_txn,
            applied_txns: applied,
            synced_txns: applied,
            commits_since_sync: 0,
            commits_since_checkpoint: 0,
            ckpt_dirty,
            live,
            dir: None,
            file_synced: 0,
            publishes: 0,
            publish_ns: 0,
        };
        Ok((db, report))
    }

    // ------------------------------------------------------------ reading --

    /// The live master (reflects every applied transaction immediately).
    pub fn db(&self) -> &PCubeDb {
        &self.master
    }

    /// A handle for reader threads: cloneable, `Send + Sync`, never blocked
    /// by the writer.
    pub fn reader(&self) -> EpochReader {
        EpochReader { current: self.published.clone() }
    }

    /// Pins the latest published snapshot. Poison-proof for the same reason
    /// as [`EpochReader::snapshot`]: the lock only ever guards a pointer
    /// swap, so the pointee is consistent even after a writer panic.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        self.published.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Transactions applied to the master so far.
    pub fn applied_txns(&self) -> u64 {
        self.applied_txns
    }

    /// Highest transaction whose commit record is fsynced.
    pub fn durable_txns(&self) -> u64 {
        self.synced_txns
    }

    /// Live (not deleted) tuple count.
    pub fn live_tuples(&self) -> usize {
        self.live.len()
    }

    /// WAL activity counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Durable WAL bytes right now.
    pub fn wal_len(&self) -> usize {
        self.wal.durable_len()
    }

    /// The boundary a simulated crash struck, if the instance is dead.
    pub fn poisoned(&self) -> Option<CrashPoint> {
        self.poisoned
    }

    /// Everything a crash would preserve at this instant. Callable on a
    /// poisoned instance — this is exactly what the crash harness recovers
    /// from.
    pub fn durable_state(&self) -> DurableState {
        DurableState {
            checkpoint: self.image.to_bytes(),
            wal: self.wal.durable_bytes().to_vec(),
        }
    }

    // ---------------------------------------------------- crash injection --

    /// Installs a deterministic crash schedule (see [`CrashPlan`]).
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
    }

    /// Removes the crash plan, returning it with its event counter.
    pub fn take_crash_plan(&mut self) -> Option<CrashPlan> {
        self.crash.take()
    }

    /// Durability events observed by the installed plan so far.
    pub fn crash_events_seen(&self) -> u64 {
        self.crash.as_ref().map_or(0, |p| p.events_seen())
    }

    /// Installs a runtime fault plan on the WAL (transient fsync failures;
    /// see `FaultPlan::with_fsync_failures`). Retries and their backoff are
    /// recorded on the shared I/O ledger as `wal_retries`/`wal_backoff_us`.
    pub fn set_wal_fault_plan(&mut self, plan: pcube_storage::FaultPlan) {
        self.wal.set_fault_plan(plan);
    }

    /// Removes the WAL fault plan, returning it with its counters.
    pub fn take_wal_fault_plan(&mut self) -> Option<pcube_storage::FaultPlan> {
        self.wal.take_fault_plan()
    }

    /// Mutable access to the master's signature store — the chaos hook the
    /// scrub suite uses to seed bit rot (`corrupt_page`) against the live
    /// store. Damage injected here deliberately bypasses the WAL, exactly
    /// like real media decay: no redo record describes it, no dirty bit is
    /// set, and only scrub + repair can find and heal it.
    pub fn signature_store_mut(&mut self) -> &mut SignatureStore {
        self.master_mut().pcube.store_mut()
    }

    /// Runs an online scrub pass over the master's signature store (see
    /// [`crate::scrub::scrub`]). Takes `&self`: scrubbing is a read-side
    /// walk and coexists with pinned epoch readers.
    pub fn scrub(&self, budget: &crate::query::QueryBudget) -> crate::scrub::ScrubReport {
        self.master.scrub(budget)
    }

    /// `(epochs published, total nanoseconds spent publishing)`. With
    /// copy-on-write snapshots the per-publish cost is size-independent;
    /// `recovery_bench` divides these to gate on exactly that.
    pub fn publish_stats(&self) -> (u64, u64) {
        (self.publishes, self.publish_ns)
    }

    // ------------------------------------------------------------ writing --

    /// Applies one transaction of maintenance operations: validate, log
    /// (redo records + witnesses + commit), mutate the master, publish a
    /// new epoch, sync per policy, auto-checkpoint per policy.
    pub fn apply(&mut self, ops: &[MaintenanceOp]) -> Result<CommitReceipt, DurabilityError> {
        self.ensure_alive()?;
        let (txn, lsn) = self.apply_unsynced(ops)?;

        // 5. Group commit — *before* publish, so when this commit syncs
        //    (always, under the default `fsync_every: 1`) readers can never
        //    observe a transaction whose commit record is still volatile: a
        //    crash mid-fsync poisons the instance here, the epoch is never
        //    published, and recovery dropping the torn commit agrees with
        //    everything any reader ever saw.
        let mut durable = false;
        if self.opts.fsync_every <= 1 || self.commits_since_sync >= self.opts.fsync_every {
            self.sync_internal()?;
            durable = true;
        }

        // 6. Publish the new epoch (readers switch; pinned snapshots live on).
        self.publish();

        // 7. Auto checkpoint.
        if self.should_auto_checkpoint() {
            self.checkpoint()?;
        }

        Ok(CommitReceipt { txn, epoch: self.epoch, durable, lsn })
    }

    /// Applies a whole batch of transactions with **one** fsync and **one**
    /// epoch publish for all of them — the group-commit core. Each
    /// transaction is validated, logged and applied independently (a
    /// malformed one is rejected with [`DurabilityError::InvalidOp`] without
    /// disturbing its neighbours); then the batch syncs and publishes once.
    ///
    /// Durability is prefix-closed by construction: WAL appends are serial
    /// and the batch shares a single fsync, so whatever prefix of commit
    /// records a crash preserves is exactly the set recovery replays.
    ///
    /// Failure semantics per slot: a terminal [`DurabilityError::WalSync`]
    /// leaves every applied transaction acknowledged-but-volatile
    /// ([`CommitReceipt::durable`] is `false`; the tail stays pending); an
    /// injected crash poisons the instance and every applied-but-unsynced
    /// slot reports the crash instead of a receipt. Auto-checkpointing is
    /// the caller's job (see [`DurableDb::should_auto_checkpoint`]).
    pub fn apply_batch(
        &mut self,
        batch: &[Vec<MaintenanceOp>],
    ) -> Vec<Result<CommitReceipt, DurabilityError>> {
        let mut applied: Vec<Result<(u64, Lsn), DurabilityError>> = Vec::with_capacity(batch.len());
        for ops in batch {
            let slot = self.ensure_alive().and_then(|()| self.apply_unsynced(ops));
            applied.push(slot);
        }

        let mut durable = false;
        let mut batch_err: Option<DurabilityError> = None;
        if self.poisoned.is_none() {
            match self.sync_internal() {
                Ok(()) => durable = true,
                // Terminal fsync failure: the tail (and every commit record
                // in it) is pending, not lost — receipts stay volatile.
                Err(DurabilityError::WalSync { .. }) => {}
                Err(e) => batch_err = Some(e),
            }
            if self.poisoned.is_none() && applied.iter().any(Result::is_ok) {
                self.publish();
            }
        }

        applied
            .into_iter()
            .map(|slot| match slot {
                Ok((txn, lsn)) => match &batch_err {
                    // The batch's sync crashed: whether this commit record
                    // survived is for recovery to decide; report the crash.
                    Some(e) => Err(e.clone()),
                    None => Ok(CommitReceipt { txn, epoch: self.epoch, durable, lsn }),
                },
                Err(e) => Err(e),
            })
            .collect()
    }

    /// `true` when the auto-checkpoint policy is due (callers of
    /// [`DurableDb::apply_batch`] checkpoint between batches, never inside
    /// one).
    pub fn should_auto_checkpoint(&self) -> bool {
        self.opts.checkpoint_every > 0
            && self.commits_since_checkpoint >= self.opts.checkpoint_every
    }

    /// Steps 1–4 of the commit protocol: validate, append redo records,
    /// mutate the master (logging signature summaries), witness dirtied
    /// pages, seal with `Commit`. No fsync, no publish — the caller decides
    /// how many transactions share those.
    fn apply_unsynced(&mut self, ops: &[MaintenanceOp]) -> Result<(u64, Lsn), DurabilityError> {
        if ops.is_empty() {
            return Err(DurabilityError::InvalidOp { cause: "empty transaction".to_string() });
        }
        self.validate(ops)?;
        let txn = self.next_txn;

        // 1. Redo records — appended before any page mutation.
        let base = self.master.relation.len() as u64;
        let mut inserts = 0u64;
        for op in ops {
            let rec = match op {
                MaintenanceOp::Insert { codes, coords } => {
                    let tid = base + inserts;
                    inserts += 1;
                    WalRecord::TreeSplit {
                        txn,
                        op: TreeOp::Insert,
                        tid,
                        codes: codes.clone(),
                        coords: coords.clone(),
                    }
                }
                MaintenanceOp::Delete { tid } => WalRecord::TreeSplit {
                    txn,
                    op: TreeOp::Delete,
                    tid: *tid,
                    codes: Vec::new(),
                    coords: self.master.relation.pref_coords(*tid),
                },
            };
            self.wal_append(rec)?;
        }

        // 2. Mutate the master; log the per-cell signature summaries.
        for op in ops {
            let touches = match op {
                MaintenanceOp::Insert { codes, coords } => {
                    let (tid, touches) = self.master_mut().insert_coded_tracked(codes, coords);
                    self.live.insert(tid);
                    touches
                }
                MaintenanceOp::Delete { tid } => {
                    self.live.remove(tid);
                    // `validate` checked liveness upfront and the master is
                    // single-writer, so a miss here means the master already
                    // diverged from the redo records in the WAL tail — state
                    // no recoverable error can repair. Returning would keep
                    // accepting transactions on a master the log no longer
                    // describes; dying loudly is the only honest option.
                    self.master_mut().delete_tracked(*tid).unwrap_or_else(|| {
                        panic!(
                            "invariant violated: tuple {tid} vanished mid-transaction \
                             with its redo record already logged"
                        )
                    })
                }
            };
            for t in touches {
                self.wal_append(WalRecord::SigUpdate {
                    txn,
                    cell: t.cell,
                    sets: t.sets,
                    clears: t.clears,
                })?;
            }
        }

        // 3. Physical witnesses of every page the transaction dirtied.
        self.append_witnesses(txn)?;

        // 4. Seal and account.
        let lsn = self.wal_append(WalRecord::Commit { txn })?;
        self.next_txn += 1;
        self.applied_txns = txn;
        self.commits_since_sync += 1;
        self.commits_since_checkpoint += 1;
        Ok((txn, lsn))
    }

    /// Single-insert convenience: one transaction, one row.
    pub fn insert(
        &mut self,
        codes: &[u32],
        coords: &[f64],
    ) -> Result<(u64, CommitReceipt), DurabilityError> {
        let tid = self.master.relation.len() as u64;
        let receipt = self.apply(&[MaintenanceOp::Insert {
            codes: codes.to_vec(),
            coords: coords.to_vec(),
        }])?;
        Ok((tid, receipt))
    }

    /// Single-delete convenience: one transaction, one tombstone.
    pub fn delete(&mut self, tid: u64) -> Result<CommitReceipt, DurabilityError> {
        self.apply(&[MaintenanceOp::Delete { tid }])
    }

    /// Fsyncs any pending WAL tail (flushes the group-commit window).
    pub fn sync(&mut self) -> Result<(), DurabilityError> {
        self.ensure_alive()?;
        self.sync_internal()
    }

    /// Incremental checkpoint: flush the pages dirtied since the last
    /// checkpoint into the shadow image (staged, then installed
    /// atomically), log + fsync a `Checkpoint` record, truncate the WAL
    /// prefix the image now covers, and (in file mode) persist both files.
    pub fn checkpoint(&mut self) -> Result<CheckpointOutcome, DurabilityError> {
        self.ensure_alive()?;
        self.drain_dirty();

        // Stage: copy each dirty page (or its death) out of the pagers.
        // Every staged page is one PageFlush crash point.
        let mut staged: [PagePatch; 3] = Default::default();
        let mut pages_flushed = 0u64;
        for kind in STORE_KINDS {
            let idx = kind_idx(kind);
            let dirty: Vec<u32> = self.ckpt_dirty[idx].iter().copied().collect();
            for pid in dirty {
                self.observe(CrashPoint::PageFlush)?;
                let entry = self
                    .pager_of(kind)
                    .page_bytes(PageId(pid))
                    .map(|b| (b.to_vec().into_boxed_slice(), crc32(b)));
                staged[idx].push((pid, entry));
                pages_flushed += 1;
            }
        }

        // Install atomically (modeled as a rename-over swap).
        self.observe(CrashPoint::CheckpointInstall)?;
        let txns = self.applied_txns;
        let epoch = self.epoch;
        let [st_rtree, st_sigs, st_dir] = staged;
        self.image.rtree.apply(st_rtree, self.master.rtree.pager().free_list());
        {
            let (sig_pager, directory, _, _) = self.master.pcube.store.parts_ref();
            self.image.sigs.apply(st_sigs, sig_pager.free_list());
            self.image.dir.apply(st_dir, directory.pager().free_list());
        }
        self.image.meta = meta_payload(&self.master);
        self.image.epoch = epoch;
        self.image.txns = txns;
        self.image.next_txn = self.next_txn;
        for set in &mut self.ckpt_dirty {
            set.clear();
        }

        // Log the checkpoint and make it durable.
        let lsn = self.wal_append(WalRecord::Checkpoint { epoch, txns })?;
        self.image.next_lsn = lsn + 1;
        self.sync_internal()?;

        // Truncate the covered prefix (the Checkpoint record itself stays
        // as a harmless marker).
        self.observe(CrashPoint::CheckpointTruncate)?;
        let reclaimed = self.wal.truncate_durable_before(lsn) as u64;
        self.commits_since_checkpoint = 0;
        if self.dir.is_some() {
            self.persist_checkpoint_file()?;
            self.persist_wal_file_full()?;
        }
        Ok(CheckpointOutcome { epoch, txns, pages_flushed, wal_bytes_reclaimed: reclaimed })
    }

    /// Online repair: rebuilds every quarantined signature page from the
    /// base table, routed through the WAL so the heal is crash-safe at
    /// every boundary.
    ///
    /// Signatures are *derived* data — §VII keeps answers exact without
    /// them — so a quarantined page never holds the only copy of anything.
    /// Repair exploits that: it maps the quarantined pages back to the
    /// cells whose partials live there (a directory range scan that never
    /// reads the damaged bytes), then per cell logs a logical
    /// [`WalRecord::SigRebuild`] redo record and re-derives the signature
    /// from the live R-tree paths. `write_signature` frees the old pages
    /// *unread* (auto-clearing their quarantine entries) and allocates
    /// fresh ones, the rebuilt pages get the usual `PageWrite` CRC
    /// witnesses, and the whole batch seals with one `Commit`, one fsync,
    /// and one epoch publish.
    ///
    /// Crash safety: a crash before the commit record is durable leaves
    /// recovery replaying from the last checkpoint — whose pages are the
    /// clean pre-corruption copies, since in-memory corruption never marks
    /// a page dirty — so the store comes back in its pre-repair (or
    /// equivalently, never-corrupted) state. A crash after the commit
    /// record replays the `SigRebuild` records, re-deriving the identical
    /// rebuild deterministically. Either way no reader ever observes a
    /// torn heal: the epoch publish is the single visibility point.
    pub fn repair(&mut self) -> Result<RepairOutcome, DurabilityError> {
        self.ensure_alive()?;
        let store = &self.master.pcube.store;
        let (sig_pager, ..) = store.parts_ref();
        let quarantined: HashSet<u32> =
            sig_pager.quarantine_entries().iter().map(|(pid, _)| pid.0).collect();
        if quarantined.is_empty() {
            return Ok(RepairOutcome {
                cells_rebuilt: 0,
                pages_healed: 0,
                txn: None,
                epoch: self.epoch,
            });
        }
        // Establish the blast radius without touching the damaged bytes:
        // the directory records which cells keep partials on each page. If
        // the *directory itself* is unreadable, repair refuses — it heals
        // derived data, it never guesses. Nothing has been logged yet.
        let cells = store
            .cells_on_pages(&quarantined)
            .map_err(|e| DurabilityError::Repair { cause: e.to_string() })?;
        let healed_base = self.master.stats().snapshot().pages_repaired();

        // Tuple paths come from the R-tree (live rows only), one walk
        // shared by every rebuilt cell.
        let paths = collect_paths(&self.master);
        let m_max = self.master.rtree.m_max();
        let txn = self.next_txn;
        let mut cells_rebuilt = 0u64;
        for &cell in &cells {
            self.observe(CrashPoint::RepairCell)?;
            self.wal_append(WalRecord::SigRebuild { txn, cell })?;
            let sig = rebuild_cell_signature(&self.master, &paths, cell)
                .unwrap_or_else(|| Signature::empty(m_max));
            self.master_mut().pcube.store_mut().write_signature(cell, &sig);
            cells_rebuilt += 1;
        }
        self.append_witnesses(txn)?;
        let _lsn = self.wal_append(WalRecord::Commit { txn })?;
        self.next_txn += 1;
        self.applied_txns = txn;
        self.commits_since_sync += 1;
        self.commits_since_checkpoint += 1;

        // Repair is always synced before it becomes visible: a volatile
        // heal that a crash could un-heal would defeat the point.
        self.sync_internal()?;
        self.observe(CrashPoint::RepairInstall)?;
        self.publish();

        // Entries for pages no cell referenced (orphans — e.g. a freed
        // page corrupted before reuse) can only be cleared, not freed:
        // freeing outside a logged transaction would shift the free list
        // under future PageWrite witnesses. Clearing the registry entry is
        // safe — it is not durable state.
        let sig_pager = self.master.pcube.store.parts_ref().0;
        for pid in &quarantined {
            sig_pager.clear_quarantine(PageId(*pid));
        }
        let pages_healed = self.master.stats().snapshot().pages_repaired() - healed_base;
        Ok(RepairOutcome { cells_rebuilt, pages_healed, txn: Some(txn), epoch: self.epoch })
    }

    // ----------------------------------------------------------- internals --

    fn ensure_alive(&self) -> Result<(), DurabilityError> {
        match self.poisoned {
            Some(point) => Err(DurabilityError::Poisoned { point }),
            None => Ok(()),
        }
    }

    /// Crash check at a durability boundary; poisons the instance when the
    /// plan fires.
    fn observe(&mut self, point: CrashPoint) -> Result<(), DurabilityError> {
        if let Some(plan) = &mut self.crash {
            if plan.observe(point) {
                self.poisoned = Some(point);
                return Err(DurabilityError::Crashed { point });
            }
        }
        Ok(())
    }

    fn wal_append(&mut self, rec: WalRecord) -> Result<Lsn, DurabilityError> {
        self.observe(CrashPoint::WalAppend)?;
        Ok(self.wal.append(&rec))
    }

    fn sync_internal(&mut self) -> Result<(), DurabilityError> {
        if let Some(plan) = &mut self.crash {
            if plan.observe(CrashPoint::WalSync) {
                // A crash mid-fsync: a prefix of the tail lands, the rest is
                // lost, and the durable log likely ends in a torn frame.
                let keep = plan.torn_len(self.wal.pending_bytes());
                self.wal.sync_torn(keep);
                self.poisoned = Some(CrashPoint::WalSync);
                return Err(DurabilityError::Crashed { point: CrashPoint::WalSync });
            }
        }
        self.wal.sync().map_err(|e| DurabilityError::WalSync {
            attempts: e.attempts,
            backoff_us: e.backoff_us,
        })?;
        if self.opts.fsync_delay_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.opts.fsync_delay_us));
        }
        self.commits_since_sync = 0;
        self.synced_txns = self.applied_txns;
        if self.dir.is_some() {
            self.persist_wal_file_append()?;
        }
        Ok(())
    }

    /// Re-owns the master for mutation. The first call after a publish
    /// clones the top-level structs (the epoch snapshot holds the old ones);
    /// pages, column chunks, and metadata below them stay shared until
    /// individually dirtied.
    fn master_mut(&mut self) -> &mut PCubeDb {
        Arc::make_mut(&mut self.master)
    }

    fn publish(&mut self) {
        let start = std::time::Instant::now();
        self.epoch += 1;
        // Stamp the epoch onto the quarantine registries so entries created
        // from here on record which epoch first observed the failure.
        for kind in STORE_KINDS {
            self.pager_of(kind).set_quarantine_epoch(self.epoch);
        }
        let snapshot = Arc::new(EpochSnapshot { epoch: self.epoch, db: Arc::clone(&self.master) });
        let previous = {
            let mut slot = self.published.write().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *slot, snapshot)
        };
        self.publishes += 1;
        self.publish_ns += start.elapsed().as_nanos() as u64;
        // Reclaiming the previous epoch walks the page-table refcounts it no
        // longer shares with the master — O(pages/GROUP_PAGES), not O(1) —
        // and lands on whichever thread drops the last pin (a lagging reader,
        // not us, if one still holds it). Keep it off the visibility metric
        // and, more importantly, outside the epoch lock.
        drop(previous);
    }

    fn pager_of(&self, kind: StoreKind) -> &Pager {
        match kind {
            StoreKind::Rtree => self.master.rtree.pager(),
            StoreKind::Signature => self.master.pcube.store.parts_ref().0,
            StoreKind::Directory => self.master.pcube.store.parts_ref().1.pager(),
        }
    }

    /// Drains the pagers' dirty sets into the per-checkpoint accumulator.
    fn drain_dirty(&mut self) {
        let master = self.master_mut();
        let drained = [
            master.rtree.pager_mut().take_dirty(),
            master.pcube.store.sig_pager_mut().take_dirty(),
            master.pcube.store.dir_pager_mut().take_dirty(),
        ];
        for (set, pids) in self.ckpt_dirty.iter_mut().zip(drained) {
            set.extend(pids.into_iter().map(|p| p.0));
        }
    }

    /// Logs one `PageWrite` CRC witness per page the transaction dirtied
    /// (live pages only; freed pages have no contents to witness), and
    /// feeds the same pages to the checkpoint accumulator.
    fn append_witnesses(&mut self, txn: u64) -> Result<(), DurabilityError> {
        for kind in STORE_KINDS {
            let master = self.master_mut();
            let dirty = match kind {
                StoreKind::Rtree => master.rtree.pager_mut().take_dirty(),
                StoreKind::Signature => master.pcube.store.sig_pager_mut().take_dirty(),
                StoreKind::Directory => master.pcube.store.dir_pager_mut().take_dirty(),
            };
            let witnesses: Vec<(u32, Option<u32>)> = dirty
                .iter()
                .map(|&pid| (pid.0, self.pager_of(kind).page_bytes(pid).map(crc32)))
                .collect();
            let idx = kind_idx(kind);
            for (pid, crc) in witnesses {
                self.ckpt_dirty[idx].insert(pid);
                if let Some(crc) = crc {
                    self.wal_append(WalRecord::PageWrite { txn, store: kind, pid, crc })?;
                }
            }
        }
        Ok(())
    }

    /// Rejects a malformed batch before anything is logged or mutated.
    fn validate(&self, ops: &[MaintenanceOp]) -> Result<(), DurabilityError> {
        let n_bool = self.master.relation.schema().n_bool();
        let n_pref = self.master.relation.schema().n_pref();
        let base = self.master.relation.len() as u64;
        let mut inserts = 0u64;
        let mut deleted: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                MaintenanceOp::Insert { codes, coords } => {
                    if codes.len() != n_bool {
                        return Err(DurabilityError::InvalidOp {
                            cause: format!("insert has {} codes, schema has {n_bool}", codes.len()),
                        });
                    }
                    if coords.len() != n_pref {
                        return Err(DurabilityError::InvalidOp {
                            cause: format!(
                                "insert has {} coords, schema has {n_pref}",
                                coords.len()
                            ),
                        });
                    }
                    if coords.iter().any(|x| !x.is_finite()) {
                        return Err(DurabilityError::InvalidOp {
                            cause: "non-finite preference coordinate".to_string(),
                        });
                    }
                    inserts += 1;
                }
                MaintenanceOp::Delete { tid } => {
                    if *tid >= base + inserts {
                        return Err(DurabilityError::InvalidOp {
                            cause: format!("delete of unknown tuple {tid}"),
                        });
                    }
                    if *tid >= base {
                        // Same-batch insert+delete would make the redo
                        // record's coordinates unresolvable; split the batch.
                        return Err(DurabilityError::InvalidOp {
                            cause: format!(
                                "tuple {tid} is inserted in this same transaction; delete it in a later one"
                            ),
                        });
                    }
                    if !self.live.contains(tid) || !deleted.insert(*tid) {
                        return Err(DurabilityError::InvalidOp {
                            cause: format!("delete of dead tuple {tid}"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    // ----------------------------------------------------------- file mode --

    fn persist_checkpoint_file(&self) -> Result<(), DurabilityError> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let tmp = dir.join("checkpoint.pcube.tmp");
        let dst = dir.join("checkpoint.pcube");
        std::fs::write(&tmp, self.image.to_bytes()).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, e))?;
        Ok(())
    }

    fn persist_wal_file_full(&mut self) -> Result<(), DurabilityError> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let path = dir.join("wal.pcube");
        std::fs::write(&path, self.wal.durable_bytes()).map_err(|e| io_err(&path, e))?;
        self.file_synced = self.wal.durable_len();
        Ok(())
    }

    fn persist_wal_file_append(&mut self) -> Result<(), DurabilityError> {
        let Some(dir) = &self.dir else { return Ok(()) };
        let durable = self.wal.durable_bytes();
        if self.file_synced > durable.len() {
            // Truncation shrank the log; rewrite.
            return self.persist_wal_file_full();
        }
        let path = dir.join("wal.pcube");
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        f.write_all(&durable[self.file_synced..]).map_err(|e| io_err(&path, e))?;
        f.sync_all().map_err(|e| io_err(&path, e))?;
        self.file_synced = durable.len();
        Ok(())
    }
}

// ------------------------------------------------------------ commit queue --

/// Batching and backpressure policy of a [`CommitQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitQueuePolicy {
    /// Most transactions one fsync batch may carry (≥ 1).
    pub max_batch: usize,
    /// Bounded queue depth (≥ 1): submissions beyond this many waiting
    /// transactions block ([`CommitQueue::submit`]) or fail typed
    /// ([`CommitQueue::try_submit`]) — never grow the queue unboundedly.
    pub max_queue: usize,
    /// After the first transaction of a batch arrives, how long the log
    /// writer lingers for the batch to fill before syncing what it has.
    /// Zero drains greedily (batching still emerges under load).
    pub max_wait: Duration,
}

impl Default for CommitQueuePolicy {
    fn default() -> Self {
        CommitQueuePolicy { max_batch: 32, max_queue: 128, max_wait: Duration::ZERO }
    }
}

/// Aggregate group-commit counters, kept on the queue's ledger and snapshot
/// via [`CommitQueue::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Batches the log writer drained.
    pub batches: u64,
    /// Transactions committed (receipt delivered).
    pub commits: u64,
    /// Batches whose single fsync landed.
    pub syncs: u64,
    /// Batches whose fsync kept failing after bounded retries — their
    /// commits were acknowledged volatile and the tail retried later.
    pub sync_failures: u64,
    /// Largest batch a single fsync covered.
    pub max_batch: u64,
    /// Deepest the queue ever got.
    pub max_queue_depth: u64,
    /// Submitters that had to block on a full queue.
    pub backpressure_waits: u64,
    /// Transactions rejected with a typed error (validation, crash, …).
    pub rejected: u64,
}

impl GroupCommitStats {
    /// Committed transactions per successful fsync — the amortization group
    /// commit exists for (1.0 means no batching happened).
    pub fn fsync_amortization(&self) -> f64 {
        if self.syncs == 0 {
            0.0
        } else {
            self.commits as f64 / self.syncs as f64
        }
    }
}

/// Why a submission did not come back with a [`CommitReceipt`].
#[derive(Debug, Clone, PartialEq)]
pub enum CommitError {
    /// The queue is at [`CommitQueuePolicy::max_queue`] and the caller asked
    /// not to wait ([`CommitQueue::try_submit`]).
    Backpressure {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The caller's deadline expired. If it expired *after* the transaction
    /// was enqueued, the transaction may still commit — the receipt is lost,
    /// not the write (ordinary lost-ack semantics).
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// The queue has shut down (or its writer died); nothing was enqueued.
    Closed,
    /// The log writer rejected or failed the transaction itself.
    Rejected(DurabilityError),
}

impl std::fmt::Display for CommitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommitError::Backpressure { depth } => {
                write!(f, "commit queue full ({depth} transactions waiting)")
            }
            CommitError::Timeout { waited } => {
                write!(f, "commit timed out after {waited:?}")
            }
            CommitError::Closed => write!(f, "commit queue is closed"),
            CommitError::Rejected(e) => write!(f, "transaction rejected: {e}"),
        }
    }
}

impl std::error::Error for CommitError {}

enum SlotState {
    Waiting,
    Done(Result<CommitReceipt, CommitError>),
}

/// One submission's receipt slot: the submitter parks on `cv` until the log
/// writer fills `state`.
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot { state: Mutex::new(SlotState::Waiting), cv: Condvar::new() }
    }

    fn fill(&self, result: Result<CommitReceipt, CommitError>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = SlotState::Done(result);
        self.cv.notify_all();
    }
}

struct QueueInner {
    queue: VecDeque<(Vec<MaintenanceOp>, Arc<Slot>)>,
    closed: bool,
    stats: GroupCommitStats,
}

struct QueueShared {
    inner: Mutex<QueueInner>,
    /// Signaled when the queue gains work or closes (log writer waits here).
    work: Condvar,
    /// Signaled when the queue drains below capacity (submitters wait here).
    space: Condvar,
}

impl QueueShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        // Poison-proof: queue state is only mutated under short, non-panicking
        // critical sections; taking the inner value keeps submitters alive if
        // the writer thread dies mid-batch elsewhere.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Multi-producer group commit over a [`DurableDb`]: any number of client
/// threads [`CommitQueue::submit`] transactions, one dedicated log writer
/// drains them in bounded batches, appends and applies each, then spends
/// **one** fsync and **one** epoch publish on the whole batch
/// ([`DurableDb::apply_batch`]). The queue is bounded: beyond
/// [`CommitQueuePolicy::max_queue`] waiting transactions, submitters block
/// (with optional deadline) or get [`CommitError::Backpressure`] — typed
/// errors, never a panic, never an unbounded queue.
///
/// Durability remains prefix-closed across crashes: appends are serial in
/// submission order and each batch shares a single fsync, so the set of
/// transactions recovery replays is always a prefix of the acknowledged
/// order (`tests/group_commit.rs` drives this property through every batch
/// boundary and torn-fsync cut).
pub struct CommitQueue {
    shared: Arc<QueueShared>,
    policy: CommitQueuePolicy,
    reader: EpochReader,
    writer: Option<std::thread::JoinHandle<DurableDb>>,
}

impl CommitQueue {
    /// Takes ownership of `db` and starts the dedicated log-writer thread.
    ///
    /// # Panics
    /// Panics if `policy.max_batch` or `policy.max_queue` is zero.
    pub fn start(db: DurableDb, policy: CommitQueuePolicy) -> CommitQueue {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        assert!(policy.max_queue >= 1, "max_queue must be at least 1");
        let reader = db.reader();
        let shared = Arc::new(QueueShared {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                closed: false,
                stats: GroupCommitStats::default(),
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        });
        let writer_shared = shared.clone();
        let writer = std::thread::Builder::new()
            .name("pcube-group-commit".to_string())
            .spawn(move || writer_loop(db, writer_shared, policy))
            .expect("spawning the group-commit writer thread failed");
        CommitQueue { shared, policy, reader, writer: Some(writer) }
    }

    /// A snapshot-isolation handle: readers pin epochs published by the log
    /// writer without ever blocking on the queue.
    pub fn reader(&self) -> EpochReader {
        self.reader.clone()
    }

    /// Submits one transaction and blocks — through backpressure if the
    /// queue is full — until the log writer delivers its receipt.
    pub fn submit(&self, ops: Vec<MaintenanceOp>) -> Result<CommitReceipt, CommitError> {
        self.enqueue(ops, None, true)
    }

    /// [`CommitQueue::submit`] with a deadline covering both the
    /// backpressure wait and the receipt wait.
    pub fn submit_timeout(
        &self,
        ops: Vec<MaintenanceOp>,
        timeout: Duration,
    ) -> Result<CommitReceipt, CommitError> {
        self.enqueue(ops, Some(Instant::now() + timeout), true)
    }

    /// Non-blocking admission: fails fast with [`CommitError::Backpressure`]
    /// when the queue is full (the receipt wait, after admission, still
    /// blocks — the writer always delivers).
    pub fn try_submit(&self, ops: Vec<MaintenanceOp>) -> Result<CommitReceipt, CommitError> {
        self.enqueue(ops, None, false)
    }

    /// Current group-commit counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.shared.lock().stats
    }

    /// Closes the queue, drains what was already admitted, joins the log
    /// writer and hands the database back.
    ///
    /// # Panics
    /// Panics if the log-writer thread itself panicked (a bug, not an
    /// injected fault — every injected fault surfaces as a typed error).
    pub fn shutdown(mut self) -> DurableDb {
        self.close();
        let writer = self.writer.take().expect("shutdown on a queue already shut down");
        writer.join().expect("group-commit writer panicked")
    }

    fn close(&self) {
        let mut inner = self.shared.lock();
        inner.closed = true;
        self.shared.work.notify_all();
        self.shared.space.notify_all();
    }

    fn enqueue(
        &self,
        ops: Vec<MaintenanceOp>,
        deadline: Option<Instant>,
        block: bool,
    ) -> Result<CommitReceipt, CommitError> {
        let slot = Arc::new(Slot::new());
        let start = Instant::now();
        {
            let mut inner = self.shared.lock();
            if inner.closed {
                return Err(CommitError::Closed);
            }
            let max_queue = self.policy.max_queue;
            if inner.queue.len() >= max_queue {
                if !block {
                    return Err(CommitError::Backpressure { depth: inner.queue.len() });
                }
                inner.stats.backpressure_waits += 1;
                while inner.queue.len() >= max_queue && !inner.closed {
                    match deadline {
                        None => {
                            inner = self
                                .shared
                                .space
                                .wait(inner)
                                .unwrap_or_else(|e| e.into_inner());
                        }
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                return Err(CommitError::Timeout { waited: start.elapsed() });
                            }
                            inner = self
                                .shared
                                .space
                                .wait_timeout(inner, d - now)
                                .unwrap_or_else(|e| e.into_inner())
                                .0;
                        }
                    }
                }
                if inner.closed {
                    return Err(CommitError::Closed);
                }
            }
            inner.queue.push_back((ops, slot.clone()));
            let depth = inner.queue.len() as u64;
            inner.stats.max_queue_depth = inner.stats.max_queue_depth.max(depth);
            self.shared.work.notify_one();
        }

        // Park until the log writer fills the receipt slot.
        let mut state = slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let SlotState::Done(result) = &*state {
                return result.clone();
            }
            match deadline {
                None => {
                    state = slot.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Enqueued but unacked: the writer may still commit
                        // it — a lost ack, not a lost write.
                        return Err(CommitError::Timeout { waited: start.elapsed() });
                    }
                    state = slot
                        .cv
                        .wait_timeout(state, d - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
            }
        }
    }

}

impl Drop for CommitQueue {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            self.close();
            let _ = writer.join();
        }
    }
}

/// The dedicated log-writer loop: wait for work, linger up to
/// `policy.max_wait` for the batch to fill, drain at most
/// `policy.max_batch`, apply the batch with one fsync + one publish, fill
/// the receipt slots, then handle between-batch policy work (checkpoints,
/// poison shutdown).
fn writer_loop(
    mut db: DurableDb,
    shared: Arc<QueueShared>,
    policy: CommitQueuePolicy,
) -> DurableDb {
    loop {
        let batch: Vec<(Vec<MaintenanceOp>, Arc<Slot>)> = {
            let mut inner = shared.lock();
            loop {
                if !inner.queue.is_empty() {
                    break;
                }
                if inner.closed {
                    return db;
                }
                inner = shared.work.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
            if policy.max_wait > Duration::ZERO {
                let fill_deadline = Instant::now() + policy.max_wait;
                while inner.queue.len() < policy.max_batch && !inner.closed {
                    let now = Instant::now();
                    if now >= fill_deadline {
                        break;
                    }
                    let (guard, timed_out) = shared
                        .work
                        .wait_timeout(inner, fill_deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = guard;
                    if timed_out.timed_out() {
                        break;
                    }
                }
            }
            let n = inner.queue.len().min(policy.max_batch);
            let batch: Vec<_> = inner.queue.drain(..n).collect();
            inner.stats.batches += 1;
            inner.stats.max_batch = inner.stats.max_batch.max(n as u64);
            batch
        };
        shared.space.notify_all();

        let txns: Vec<Vec<MaintenanceOp>> = batch.iter().map(|(ops, _)| ops.clone()).collect();
        let results = db.apply_batch(&txns);

        {
            let mut inner = shared.lock();
            let committed = results.iter().filter(|r| r.is_ok()).count() as u64;
            let durable = results
                .iter()
                .any(|r| matches!(r, Ok(receipt) if receipt.durable));
            inner.stats.commits += committed;
            inner.stats.rejected += results.len() as u64 - committed;
            if durable {
                inner.stats.syncs += 1;
            } else if committed > 0 {
                inner.stats.sync_failures += 1;
            }
        }

        for ((_, slot), result) in batch.into_iter().zip(results) {
            slot.fill(result.map_err(CommitError::Rejected));
        }

        if db.poisoned().is_some() {
            // The simulated crash killed the instance: fail everything still
            // queued, close, and let shutdown() hand the corpse back for the
            // harness to recover from.
            let mut inner = shared.lock();
            inner.closed = true;
            for (_, slot) in inner.queue.drain(..) {
                slot.fill(Err(CommitError::Closed));
            }
            shared.space.notify_all();
        } else if db.should_auto_checkpoint() {
            if let Err(e) = db.checkpoint() {
                // A WalSync failure leaves the tail pending for the next
                // batch's fsync; a crash is caught by the poison check above
                // on the next iteration. Either way: typed, never a panic.
                debug_assert!(
                    matches!(
                        e,
                        DurabilityError::WalSync { .. } | DurabilityError::Crashed { .. }
                    ),
                    "unexpected checkpoint failure: {e}"
                );
            }
        }
    }
}

fn io_err(path: &Path, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io { path: path.display().to_string(), cause: e.to_string() }
}

/// One R-tree walk collecting every live tuple's path — the shared input
/// to per-cell signature rebuilds. Tombstoned rows are absent from the
/// tree, so they are naturally excluded.
fn collect_paths(master: &PCubeDb) -> HashMap<u64, TreePath> {
    let mut paths = HashMap::new();
    master.rtree.for_each_tuple(|tid, path, _| {
        paths.insert(tid, path.clone());
    });
    paths
}

/// Re-derives one cell's signature from the base table: scan the relation
/// for rows matching the cell's boolean selection, keep the live ones (the
/// R-tree walk skipped tombstones), and regenerate the signature from
/// their tree paths — exactly the §IV-B generation procedure, so a rebuild
/// is bit-identical to a never-corrupted original. `None` when the cell is
/// not registered or no live row matches (the caller writes an empty
/// signature, which deletes the cell's partials).
fn rebuild_cell_signature(
    master: &PCubeDb,
    paths: &HashMap<u64, TreePath>,
    cell: u32,
) -> Option<Signature> {
    let key: &CellKey = master.pcube.registry().key(cell)?;
    let dims = key.mask.dims();
    let mut matched: Vec<&TreePath> = Vec::new();
    for tid in 0..master.relation.len() as u64 {
        let Some(path) = paths.get(&tid) else { continue };
        if dims
            .iter()
            .zip(&key.values)
            .all(|(&d, &v)| master.relation.bool_code(tid, d) == v)
        {
            matched.push(path);
        }
    }
    if matched.is_empty() {
        return None;
    }
    Some(Signature::from_paths(master.rtree.m_max(), matched))
}

/// Re-executes one committed transaction and verifies it against the logged
/// evidence: re-derived tuple ids must match the redo records, re-derived
/// signature summaries must match the `SigUpdate` records, and every
/// `PageWrite` witness CRC must match the replayed page bytes.
fn replay_txn(
    master: &mut PCubeDb,
    txn: u64,
    recs: &[&WalRecord],
    repaired: &mut HashSet<(StoreKind, u32)>,
) -> Result<(), DurabilityError> {
    let diverged = |cause: String| DurabilityError::Replay { txn, cause };
    let mut logged_sigs: Vec<(u32, u32, u32)> = Vec::new();
    let mut replayed_sigs: Vec<(u32, u32, u32)> = Vec::new();
    // Lazily built on the first `SigRebuild` record: one R-tree walk shared
    // by every rebuilt cell in the transaction, same as live repair.
    let mut rebuild_paths: Option<HashMap<u64, TreePath>> = None;
    for rec in recs {
        match rec {
            WalRecord::TreeSplit { op, tid, codes, coords, .. } => match op {
                TreeOp::Insert => {
                    let (got, touches) = master.insert_coded_tracked(codes, coords);
                    if got != *tid {
                        return Err(diverged(format!(
                            "re-executed insert produced tid {got}, log says {tid}"
                        )));
                    }
                    replayed_sigs
                        .extend(touches.iter().map(|t| (t.cell, t.sets, t.clears)));
                }
                TreeOp::Delete => {
                    let touches = master
                        .delete_tracked(*tid)
                        .ok_or_else(|| diverged(format!("re-executed delete of {tid} found no tuple")))?;
                    replayed_sigs
                        .extend(touches.iter().map(|t| (t.cell, t.sets, t.clears)));
                }
            },
            WalRecord::SigUpdate { cell, sets, clears, .. } => {
                logged_sigs.push((*cell, *sets, *clears));
            }
            WalRecord::PageWrite { store, pid, crc, .. } => {
                let pager = match store {
                    StoreKind::Rtree => master.rtree.pager(),
                    StoreKind::Signature => master.pcube.store.parts_ref().0,
                    StoreKind::Directory => master.pcube.store.parts_ref().1.pager(),
                };
                let actual = pager.page_bytes(PageId(*pid)).map(crc32);
                if actual != Some(*crc) {
                    return Err(diverged(format!(
                        "page witness mismatch on {} page {pid}: log says {crc:#010x}, replay has {}",
                        store.name(),
                        actual.map_or("a dead page".to_string(), |a| format!("{a:#010x}")),
                    )));
                }
                repaired.insert((*store, *pid));
            }
            WalRecord::SigRebuild { cell, .. } => {
                // A logical redo record of online repair: re-derive the
                // cell's signature from the replayed base table. The
                // rebuild is deterministic, so the `PageWrite` witnesses
                // that follow in the same transaction verify it
                // byte-for-byte.
                if rebuild_paths.is_none() {
                    rebuild_paths = Some(collect_paths(master));
                }
                let paths = rebuild_paths.as_ref().expect("just populated");
                let m_max = master.rtree.m_max();
                let sig = rebuild_cell_signature(master, paths, *cell)
                    .unwrap_or_else(|| Signature::empty(m_max));
                master.pcube.store_mut().write_signature(*cell, &sig);
            }
            WalRecord::Commit { .. } | WalRecord::Checkpoint { .. } => {}
        }
    }
    if logged_sigs != replayed_sigs {
        return Err(diverged(format!(
            "signature summary mismatch: log has {} cell updates, replay produced {}",
            logged_sigs.len(),
            replayed_sigs.len()
        )));
    }
    Ok(())
}

// The maintenance writer publishes epochs while reader threads hold
// EpochReader handles; both sides cross thread boundaries.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EpochReader>();
    assert_send_sync::<EpochSnapshot>();
    assert_send_sync::<DurableDb>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::skyline_query;
    use pcube_cube::Schema;

    fn seed_relation(n: usize) -> Relation {
        let mut r = Relation::new(Schema::new(&["A", "B"], &["X", "Y"]));
        let vals_a = ["a1", "a2", "a3"];
        let vals_b = ["b1", "b2"];
        for i in 0..n {
            let x = (i as f64 * 0.377).fract();
            let y = (i as f64 * 0.611 + 0.13).fract();
            r.push(&[vals_a[i % 3], vals_b[i % 2]], &[x, y]);
        }
        r
    }

    fn skyline_tids(db: &PCubeDb) -> Vec<u64> {
        let out = skyline_query(db, &Vec::new(), &[0, 1], false);
        let mut tids: Vec<u64> = out.skyline.iter().map(|(t, _)| *t).collect();
        tids.sort_unstable();
        tids
    }

    fn some_ops(db: &DurableDb, round: u64) -> Vec<MaintenanceOp> {
        let mut ops = Vec::new();
        for j in 0..3u64 {
            let i = round * 3 + j;
            ops.push(MaintenanceOp::Insert {
                codes: vec![(i % 3) as u32, (i % 2) as u32],
                coords: vec![(i as f64 * 0.271).fract(), (i as f64 * 0.413).fract()],
            });
        }
        // Delete an old live tuple deterministically.
        let victim = db
            .live
            .iter()
            .copied()
            .filter(|&t| t < db.master.relation.len() as u64)
            .min();
        if let Some(tid) = victim {
            ops.push(MaintenanceOp::Delete { tid });
        }
        ops
    }

    #[test]
    fn recovery_replays_committed_suffix() {
        let mut db = DurableDb::create(seed_relation(64), &PCubeConfig::default(), DurabilityOptions::default());
        for round in 0..5 {
            let ops = some_ops(&db, round);
            let receipt = db.apply(&ops).expect("apply");
            assert!(receipt.durable);
        }
        assert_eq!(db.applied_txns(), 5);

        let state = db.durable_state();
        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
                .expect("recover");
        assert!(!report.clean);
        assert_eq!(report.txns_replayed, 5);
        assert_eq!(report.txns_dropped, 0);
        assert_eq!(report.torn_tail_bytes, 0);
        assert!(report.pages_repaired > 0);
        assert_eq!(skyline_tids(recovered.db()), skyline_tids(db.db()));
        assert_eq!(recovered.live_tuples(), db.live_tuples());
        assert_eq!(recovered.applied_txns(), 5);
    }

    #[test]
    fn checkpoint_truncates_wal_and_recovers_clean() {
        let mut db = DurableDb::create(seed_relation(64), &PCubeConfig::default(), DurabilityOptions::default());
        for round in 0..4 {
            let ops = some_ops(&db, round);
            db.apply(&ops).expect("apply");
        }
        let before = db.wal_len();
        let outcome = db.checkpoint().expect("checkpoint");
        assert!(outcome.pages_flushed > 0);
        assert!(outcome.wal_bytes_reclaimed > 0);
        assert!(db.wal_len() < before);
        assert_eq!(outcome.txns, 4);

        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .expect("recover");
        assert!(report.clean, "post-checkpoint open should be clean: {report}");
        assert_eq!(report.checkpoint_txns, 4);
        assert!(report.pages_verified > 0);
        assert_eq!(skyline_tids(recovered.db()), skyline_tids(db.db()));
    }

    #[test]
    fn unsynced_commits_are_dropped_on_recovery() {
        let opts = DurabilityOptions { fsync_every: 10, ..DurabilityOptions::default() };
        let mut db = DurableDb::create(seed_relation(48), &PCubeConfig::default(), opts);
        let r1 = db.apply(&some_ops(&db, 0)).expect("apply");
        assert!(!r1.durable);
        db.sync().expect("sync");
        let r2 = db.apply(&some_ops(&db, 1)).expect("apply");
        assert!(!r2.durable, "second txn sits in the unsynced window");

        // Crash now: txn 2 never reached the durable log.
        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .expect("recover");
        assert_eq!(report.txns_replayed, 1);
        assert_eq!(recovered.applied_txns(), 1);
        assert!(recovered.durable_txns() == 1);
    }

    #[test]
    fn crash_plan_kills_and_poisons() {
        let mut db = DurableDb::create(seed_relation(32), &PCubeConfig::default(), DurabilityOptions::default());
        db.apply(&some_ops(&db, 0)).expect("apply");
        db.set_crash_plan(CrashPlan::at_event(0));
        let err = db.apply(&some_ops(&db, 1)).expect_err("must crash");
        assert!(matches!(err, DurabilityError::Crashed { point: CrashPoint::WalAppend }));
        assert_eq!(db.poisoned(), Some(CrashPoint::WalAppend));
        let err = db.apply(&some_ops(&db, 1)).expect_err("poisoned");
        assert!(matches!(err, DurabilityError::Poisoned { .. }));
        // The durable state is still recoverable and contains only txn 1.
        let (_, report) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .expect("recover");
        assert_eq!(report.txns_replayed, 1);
    }

    #[test]
    fn epoch_snapshots_are_immutable() {
        let mut db = DurableDb::create(seed_relation(64), &PCubeConfig::default(), DurabilityOptions::default());
        let reader = db.reader();
        let pinned = reader.snapshot();
        let before = skyline_tids(pinned.db());
        let epoch_before = pinned.epoch();

        for round in 0..3 {
            db.apply(&some_ops(&db, round)).expect("apply");
        }
        db.checkpoint().expect("checkpoint");

        // The pinned snapshot still answers identically.
        assert_eq!(skyline_tids(pinned.db()), before);
        assert_eq!(pinned.epoch(), epoch_before);
        // A fresh snapshot sees the new epoch and the new data.
        let fresh = reader.snapshot();
        assert!(fresh.epoch() > epoch_before);
        assert_eq!(skyline_tids(fresh.db()), skyline_tids(db.db()));
    }

    #[test]
    fn apply_batch_spends_one_sync_and_one_publish_on_the_whole_batch() {
        let mut db = DurableDb::create(seed_relation(64), &PCubeConfig::default(), DurabilityOptions::default());
        let epoch_before = db.epoch();
        let syncs_before = db.wal_stats().syncs;
        let (publishes_before, _) = db.publish_stats();

        // Insert-only transactions: batches are validated against the state
        // their predecessors in the same batch produce, so precomputed
        // deletes of one victim would collide.
        let insert_txn = |k: u64| {
            vec![MaintenanceOp::Insert {
                codes: vec![(k % 3) as u32, (k % 2) as u32],
                coords: vec![(k as f64 * 0.137).fract(), (k as f64 * 0.291).fract()],
            }]
        };
        let batch: Vec<Vec<MaintenanceOp>> = (0..6).map(insert_txn).collect();
        let results = db.apply_batch(&batch);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            let receipt = r.as_ref().unwrap_or_else(|e| panic!("txn {i} failed: {e}"));
            assert!(receipt.durable, "batch sync must cover txn {i}");
            assert_eq!(receipt.txn, i as u64 + 1, "dense submission-order txn ids");
            assert_eq!(receipt.epoch, epoch_before + 1, "one shared epoch per batch");
        }
        assert_eq!(db.wal_stats().syncs, syncs_before + 1, "one fsync for six txns");
        assert_eq!(db.publish_stats().0, publishes_before + 1, "one publish for six txns");

        // A malformed transaction mid-batch is rejected alone.
        let mixed = vec![
            insert_txn(10),
            vec![MaintenanceOp::Delete { tid: 9999 }],
            insert_txn(11),
        ];
        let results = db.apply_batch(&mixed);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DurabilityError::InvalidOp { .. })));
        assert!(results[2].is_ok(), "a bad neighbour must not poison the batch");

        // Everything acknowledged durable survives recovery.
        let (recovered, _) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .expect("recover");
        assert_eq!(skyline_tids(recovered.db()), skyline_tids(db.db()));
        assert_eq!(recovered.applied_txns(), 8);
    }

    #[test]
    fn terminal_fsync_failure_is_typed_and_the_tail_lands_later() {
        use pcube_storage::FaultPlan;
        let mut db = DurableDb::create(seed_relation(48), &PCubeConfig::default(), DurabilityOptions::default());
        db.set_wal_fault_plan(FaultPlan::seeded(7).with_fsync_failures(1.0));
        let err = db.apply(&some_ops(&db, 0)).expect_err("fsync must exhaust its retries");
        assert!(
            matches!(err, DurabilityError::WalSync { attempts, .. } if attempts > 1),
            "unexpected error: {err}"
        );
        assert!(db.poisoned().is_none(), "a failed fsync is not a crash");
        // Retries and backoff were accounted on the shared ledger.
        assert!(db.db().stats.wal_retries() > 0);
        assert!(db.db().stats.wal_backoff_us() > 0);

        // The tail is pending, not lost: heal the fault and sync again.
        db.take_wal_fault_plan();
        db.sync().expect("healed sync");
        assert_eq!(db.durable_txns(), 1);
        let (recovered, report) =
            DurableDb::open_or_recover_from_state(&db.durable_state(), DurabilityOptions::default())
                .expect("recover");
        assert_eq!(report.txns_replayed, 1);
        assert_eq!(recovered.applied_txns(), 1);
    }

    #[test]
    fn commit_queue_batches_submissions_from_many_threads() {
        let db = DurableDb::create(seed_relation(64), &PCubeConfig::default(), DurabilityOptions::default());
        let queue = CommitQueue::start(
            db,
            CommitQueuePolicy { max_batch: 8, max_queue: 16, max_wait: Duration::from_millis(2) },
        );
        let reader = queue.reader();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let queue = &queue;
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let k = t * 8 + i;
                        let receipt = queue
                            .submit(vec![MaintenanceOp::Insert {
                                codes: vec![(k % 3) as u32, (k % 2) as u32],
                                coords: vec![
                                    (k as f64 * 0.137).fract(),
                                    (k as f64 * 0.291).fract(),
                                ],
                            }])
                            .expect("submit");
                        assert!(receipt.durable);
                    }
                });
            }
        });
        let stats = queue.stats();
        assert_eq!(stats.commits, 32);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches <= 32);
        let epoch_seen = reader.epoch();
        let db = queue.shutdown();
        assert_eq!(db.applied_txns(), 32);
        assert_eq!(db.durable_txns(), 32);
        assert!(epoch_seen <= db.epoch());
        assert_eq!(db.live_tuples(), 64 + 32);
    }

    #[test]
    fn commit_queue_backpressure_is_typed_never_a_panic() {
        // A writer throttled by a 200µs-per-fsync device, a queue of depth 1:
        // try_submit from a second thread while the queue is busy must see
        // Backpressure, and a zero-deadline submit must see Timeout.
        let opts = DurabilityOptions { fsync_delay_us: 200, ..DurabilityOptions::default() };
        let db = DurableDb::create(seed_relation(48), &PCubeConfig::default(), opts);
        let queue = CommitQueue::start(
            db,
            CommitQueuePolicy { max_batch: 1, max_queue: 1, max_wait: Duration::ZERO },
        );
        let insert = |k: u64| {
            vec![MaintenanceOp::Insert {
                codes: vec![(k % 3) as u32, (k % 2) as u32],
                coords: vec![(k as f64 * 0.137).fract(), (k as f64 * 0.291).fract()],
            }]
        };
        let mut backpressured = 0u64;
        let mut timed_out = 0u64;
        std::thread::scope(|scope| {
            let queue = &queue;
            let flood = scope.spawn(move || {
                for k in 0..32 {
                    queue.submit(insert(k)).expect("flood submit");
                }
            });
            for k in 100..200 {
                match queue.try_submit(insert(k)) {
                    Ok(_) => {}
                    Err(CommitError::Backpressure { .. }) => backpressured += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
                match queue.submit_timeout(insert(1000 + k), Duration::ZERO) {
                    Ok(_) => {}
                    Err(CommitError::Timeout { .. }) => timed_out += 1,
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
            flood.join().expect("flood thread");
        });
        assert!(backpressured > 0, "depth-1 queue under flood must push back");
        assert!(timed_out > 0, "zero deadline must time out under flood");
        let stats = queue.stats();
        assert!(stats.max_queue_depth <= 1);
        let db = queue.shutdown();
        assert!(db.poisoned().is_none());
        // Closed-queue submissions are typed too.
    }

    #[test]
    fn commit_queue_rejects_after_shutdown_and_drains_admitted_work() {
        let db = DurableDb::create(seed_relation(32), &PCubeConfig::default(), DurabilityOptions::default());
        let queue = CommitQueue::start(db, CommitQueuePolicy::default());
        let receipt = queue
            .submit(vec![MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.5, 0.5] }])
            .expect("submit");
        assert!(receipt.durable);
        let db = queue.shutdown();
        assert_eq!(db.applied_txns(), 1);

        let queue = CommitQueue::start(db, CommitQueuePolicy::default());
        queue.close();
        let err = queue
            .submit(vec![MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.1, 0.1] }])
            .expect_err("closed queue");
        assert!(matches!(err, CommitError::Closed));
        let db = queue.shutdown();
        assert_eq!(db.applied_txns(), 1);
    }

    #[test]
    fn epoch_publish_shares_clean_state_with_the_master() {
        // The COW pillar end-to-end: consecutive snapshots of a database
        // share untouched pages/chunks instead of deep-copying them. Needs
        // more than one 4096-row column chunk so a frozen chunk exists to
        // share; the appends below only re-own the partial tail chunk.
        let mut db = DurableDb::create(seed_relation(5000), &PCubeConfig::default(), DurabilityOptions::default());
        let reader = db.reader();
        let before = reader.snapshot();
        db.apply(&some_ops(&db, 0)).expect("apply");
        let after = reader.snapshot();
        let shared = after
            .db()
            .rtree
            .pager()
            .pages_shared_with(before.db().rtree.pager());
        assert!(
            shared > 0,
            "consecutive epochs must share clean R-tree pages (got {shared})"
        );
        assert!(after.db().relation.chunks_shared_with(&before.db().relation) > 0);
    }

    #[test]
    fn malformed_batches_are_rejected_upfront() {
        let mut db = DurableDb::create(seed_relation(16), &PCubeConfig::default(), DurabilityOptions::default());
        let wal_before = db.wal_stats().appends;
        let bad = [
            vec![],
            vec![MaintenanceOp::Insert { codes: vec![0], coords: vec![0.1, 0.2] }],
            vec![MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.1] }],
            vec![MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![f64::NAN, 0.2] }],
            vec![MaintenanceOp::Delete { tid: 999 }],
            vec![MaintenanceOp::Delete { tid: 3 }, MaintenanceOp::Delete { tid: 3 }],
        ];
        for ops in bad {
            let err = db.apply(&ops).expect_err("must reject");
            assert!(matches!(err, DurabilityError::InvalidOp { .. }), "{err}");
        }
        assert_eq!(db.wal_stats().appends, wal_before, "rejected batches must not log");
        assert_eq!(db.applied_txns(), 0);
    }

    #[test]
    fn file_mode_round_trips() {
        let dir = std::env::temp_dir().join(format!("pcube-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = DurableDb::create_at(
            &dir,
            seed_relation(48),
            &PCubeConfig::default(),
            DurabilityOptions::default(),
        )
        .expect("create_at");
        for round in 0..3 {
            db.apply(&some_ops(&db, round)).expect("apply");
        }
        let want = skyline_tids(db.db());
        drop(db);

        let (recovered, report) =
            DurableDb::open_or_recover(&dir, DurabilityOptions::default()).expect("open");
        assert_eq!(report.txns_replayed, 3);
        assert_eq!(skyline_tids(recovered.db()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_header_watermark_is_detected() {
        let mut db = DurableDb::create(seed_relation(32), &PCubeConfig::default(), DurabilityOptions::default());
        db.apply(&some_ops(&db, 0)).expect("apply");
        db.checkpoint().expect("checkpoint");
        let clean = db.durable_state();
        // Flip a bit in each watermark word (epoch, txns, next_txn,
        // next_lsn): the header CRC must catch all of them — a skewed txns
        // watermark silently skips replay, a zeroed next_lsn underflows.
        for byte in [8usize, 16, 24, 32] {
            let mut state = clean.clone();
            state.checkpoint[byte] ^= 0xFF;
            let err = match DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default()) {
                Ok(_) => panic!("must detect header corruption"),
                Err(e) => e,
            };
            assert!(
                matches!(err, DurabilityError::Corrupt { ref store, .. } if store == "checkpoint-header"),
                "byte {byte}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn recovered_wal_drops_torn_tail_so_later_commits_survive() {
        let mut db = DurableDb::create(seed_relation(48), &PCubeConfig::default(), DurabilityOptions::default());
        db.apply(&some_ops(&db, 0)).expect("apply");
        db.apply(&some_ops(&db, 1)).expect("apply");

        // A torn fsync left half a frame at the durable tail.
        let mut state = db.durable_state();
        state.wal.extend_from_slice(&[0xEE; 11]);
        let (mut recovered, report) =
            DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
                .expect("recover");
        assert!(report.torn_tail_bytes > 0);
        assert_eq!(recovered.applied_txns(), 2);

        // A commit acked durable after recovery must survive the next crash:
        // the re-opened log may not still carry the rejected tail, or replay
        // would stop at it and drop everything after.
        let receipt = recovered
            .apply(&[MaintenanceOp::Insert { codes: vec![0, 0], coords: vec![0.3, 0.7] }])
            .expect("post-recovery apply");
        assert!(receipt.durable);
        let (second, report2) =
            DurableDb::open_or_recover_from_state(&recovered.durable_state(), DurabilityOptions::default())
                .expect("second recovery");
        assert_eq!(report2.torn_tail_bytes, 0, "recovered WAL still carries the torn tail");
        assert_eq!(second.applied_txns(), 3, "acked-durable txn lost behind the torn tail");
        assert_eq!(skyline_tids(second.db()), skyline_tids(recovered.db()));
    }

    #[test]
    fn corrupt_checkpoint_page_is_detected() {
        let mut db = DurableDb::create(seed_relation(32), &PCubeConfig::default(), DurabilityOptions::default());
        db.apply(&some_ops(&db, 0)).expect("apply");
        db.checkpoint().expect("checkpoint");
        let mut state = db.durable_state();
        // Flip a byte deep inside the image body (past the header/meta).
        let mid = state.checkpoint.len() / 2;
        state.checkpoint[mid] ^= 0xFF;
        let err = match DurableDb::open_or_recover_from_state(&state, DurabilityOptions::default())
        {
            Ok(_) => panic!("must detect corruption"),
            Err(e) => e,
        };
        match err {
            DurabilityError::Corrupt { .. } | DurabilityError::Persist(_) => {}
            other => panic!("unexpected error: {other}"),
        }
    }
}
