//! P-Cube: the signature measure and the signature-guided preference query
//! processor (Xin & Han, ICDE 2008).
//!
//! A **signature** summarizes, for one cube cell (a boolean selection such as
//! `A = a1`), which parts of a shared R-tree partition contain tuples of that
//! cell: one bit per node slot, mirroring the R-tree's topology (§IV-B). The
//! **P-Cube** materializes signatures for a set of cuboids (by default the
//! atomic, one-dimensional ones), compressed per node and decomposed into
//! page-sized *partial signatures* indexed by `(cell id, subtree-root SID)`.
//!
//! At query time, Algorithm 1 runs a branch-and-bound search over the R-tree
//! that pushes **both** prunings into the traversal:
//!
//! * *preference pruning* — dominance against discovered skylines, or ranking
//!   lower bounds against the current top-k;
//! * *boolean pruning* — a node or tuple whose signature bit is 0 cannot
//!   contribute to the selection, so its subtree is skipped without touching
//!   the R-tree or the base table.
//!
//! The crate is organized as the paper's §IV–V:
//!
//! | module | paper | contents |
//! |---|---|---|
//! | [`signature`] | IV-B.1 | [`Signature`]: generation, union, intersection |
//! | [`encode`] | IV-B.1 | node-level compression + page-sized decomposition |
//! | [`store`] | IV-B.2 | on-disk partial signatures, lazy [`SignatureCursor`] |
//! | [`pcube`] | IV, IV-B.3 | [`PCube`] build + incremental maintenance, [`PCubeDb`] |
//! | [`rank`] | III, V-B | ranking functions with MBR lower bounds |
//! | [`query`] | V | Algorithm 1 for skylines and top-k, drill-down/roll-up |
//! | [`plan`] | VI | cost-based planner choosing P-Cube vs baseline engines |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod bloom;
pub mod durable;
pub mod encode;
pub mod pcube;
pub mod persist;
pub mod plan;
pub mod query;
pub mod rank;
pub mod scrub;
pub mod signature;
pub mod store;

pub use admission::{AdmissionError, AdmissionGate, AdmissionPermit};
pub use bloom::BloomSignature;
pub use durable::{
    CheckpointImage, CheckpointOutcome, CommitError, CommitQueue, CommitQueuePolicy,
    CommitReceipt, DurabilityError, DurabilityOptions, DurableDb, DurableState, EpochReader,
    EpochSnapshot, GroupCommitStats, MaintenanceOp, RecoveryReport, RepairOutcome,
};
pub use pcube::{PCube, PCubeConfig, PCubeDb, SigTouch};
pub use persist::PersistError;
pub use plan::{
    CostEstimate, EngineKind, Executor, PCubeExecutor, PlanDecision, PlanError, Planner, QuerySpec,
    SkylineRows, TopKRows,
};
pub use query::{
    convex_hull_query, convex_hull_query_governed, dynamic_skyline_query,
    dynamic_skyline_query_governed, par_convex_hull_query, par_convex_hull_query_governed,
    par_dynamic_skyline_query, par_dynamic_skyline_query_governed, par_skyline_query,
    par_skyline_query_governed, par_topk_query, par_topk_query_governed, skyline_drill_down,
    skyline_query, skyline_query_governed, skyline_query_probed, skyline_roll_up,
    topk_drill_down, topk_query, topk_query_governed, topk_query_probed, topk_roll_up,
    CancelToken, ClassOutcome, DynamicSkylineClass, HullClass, PSkylineClass,
    ParDynamicSkylineOutcome, ParHullOutcome, ParSkylineOutcome, ParTopKOutcome, ParallelOptions,
    PriorityGraph, PriorityGraphError, Progress, QueryBudget, QueryClass, QueryOutcome,
    QueryStats, SkyPoint, SkylineClass, SkylineOutcome, SkylineState, StageTimes, StopReason,
    SubspaceSkylineClass, TopKClass, TopKOutcome, TopKState,
};
pub use rank::{LinearFn, MinCoordSum, RankingFunction, WeightedDistanceFn};
pub use scrub::{scrub, ScrubFinding, ScrubReport};
pub use signature::Signature;
pub use store::{BooleanProbe, SignatureCursor, SignatureStore};
