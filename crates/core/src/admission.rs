//! Admission control for the query facade: a bounded gate on in-flight
//! queries with shed-on-timeout semantics.
//!
//! A multi-client server fronting one [`PCubeDb`](crate::PCubeDb) wants
//! back-pressure, not an unbounded pile-up: when every slot is busy, an
//! arriving query waits a bounded time for one to free and is **shed** (an
//! explicit, cheap rejection the client can retry) if none does. The gate
//! is a counter behind a mutex/condvar pair — queries are admitted in
//! condvar wake order, the permit is RAII so a panicking query still
//! releases its slot, and admit/shed tallies feed the `serve_bench` /
//! `soak_bench` reports.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// Every slot stayed busy for the whole bounded wait; the query was
    /// shed without running.
    ShedTimeout {
        /// How long the query waited before being shed.
        waited: Duration,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::ShedTimeout { waited } => {
                write!(f, "query shed: no slot freed within {:.3}s", waited.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A bounded-concurrency gate: at most `max_in_flight` admitted queries at
/// once, arrivals beyond that wait up to `max_wait` and are shed after.
pub struct AdmissionGate {
    max_in_flight: usize,
    max_wait: Duration,
    in_flight: Mutex<usize>,
    freed: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl std::fmt::Debug for AdmissionGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionGate")
            .field("max_in_flight", &self.max_in_flight)
            .field("max_wait", &self.max_wait)
            .field("admitted", &self.admitted_total())
            .field("shed", &self.shed_total())
            .finish()
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max_in_flight` concurrent queries, each
    /// arrival waiting at most `max_wait` for a slot.
    ///
    /// # Panics
    /// Panics if `max_in_flight` is zero (a gate that can admit nothing
    /// sheds every query — surely a configuration bug).
    pub fn new(max_in_flight: usize, max_wait: Duration) -> Self {
        assert!(max_in_flight > 0, "admission gate needs at least one slot");
        AdmissionGate {
            max_in_flight,
            max_wait,
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Acquires a slot, blocking up to the gate's `max_wait`. The returned
    /// permit releases the slot when dropped.
    pub fn admit(&self) -> Result<AdmissionPermit<'_>, AdmissionError> {
        let started = Instant::now();
        let mut in_flight = self.lock();
        while *in_flight >= self.max_in_flight {
            let waited = started.elapsed();
            let Some(left) = self.max_wait.checked_sub(waited) else {
                drop(in_flight);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::ShedTimeout { waited });
            };
            let (guard, timeout) = self
                .freed
                .wait_timeout(in_flight, left)
                // Same poison policy as `Self::lock`.
                .unwrap_or_else(|e| e.into_inner());
            in_flight = guard;
            if timeout.timed_out() && *in_flight >= self.max_in_flight {
                drop(in_flight);
                let waited = started.elapsed();
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(AdmissionError::ShedTimeout { waited });
            }
        }
        *in_flight += 1;
        drop(in_flight);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(AdmissionPermit { gate: self })
    }

    /// The concurrency limit.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// The bounded wait before a query is shed.
    pub fn max_wait(&self) -> Duration {
        self.max_wait
    }

    /// Queries currently holding a slot.
    pub fn in_flight(&self) -> usize {
        *self.lock()
    }

    /// Total queries admitted so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Total queries shed so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    fn release(&self) {
        let mut in_flight = self.lock();
        *in_flight = in_flight.saturating_sub(1);
        drop(in_flight);
        self.freed.notify_one();
    }

    /// Locks the in-flight count, recovering from lock poisoning: the count
    /// is a plain integer (never left mid-update by a panicking holder), and
    /// `AdmissionPermit::drop` still releases slots during unwinding, so the
    /// gate stays correct — refusing every later query over a stale
    /// `PoisonError` would not.
    fn lock(&self) -> std::sync::MutexGuard<'_, usize> {
        self.in_flight.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An admitted query's slot; dropping it (normally or by unwinding) frees
/// the slot and wakes one waiter.
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit").finish()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn permits_bound_concurrency_and_release_on_drop() {
        let gate = AdmissionGate::new(2, Duration::from_millis(1));
        let p1 = gate.admit().expect("slot 1");
        let p2 = gate.admit().expect("slot 2");
        assert_eq!(gate.in_flight(), 2);
        let err = gate.admit().expect_err("full gate sheds");
        assert!(matches!(err, AdmissionError::ShedTimeout { .. }));
        drop(p1);
        let p3 = gate.admit().expect("freed slot readmits");
        assert_eq!(gate.in_flight(), 2);
        drop(p2);
        drop(p3);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted_total(), 3);
        assert_eq!(gate.shed_total(), 1);
    }

    #[test]
    fn waiting_arrival_is_admitted_when_a_slot_frees() {
        let gate = AdmissionGate::new(1, Duration::from_secs(5));
        let permit = gate.admit().expect("first slot");
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| gate.admit().map(drop).is_ok());
            // Give the waiter time to block, then free the slot.
            std::thread::sleep(Duration::from_millis(20));
            drop(permit);
            assert!(waiter.join().expect("waiter thread"), "waiter admitted after release");
        });
        assert_eq!(gate.shed_total(), 0);
    }

    #[test]
    fn unwinding_query_still_frees_its_slot() {
        let gate = AdmissionGate::new(1, Duration::from_millis(1));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.admit().expect("slot");
            panic!("query exploded");
        }));
        assert!(result.is_err());
        assert_eq!(gate.in_flight(), 0, "panic released the slot");
        drop(gate.admit().expect("gate still usable"));
        assert_eq!(gate.admitted_total(), 2);
    }

    #[test]
    fn shed_counter_is_thread_safe() {
        let gate = AdmissionGate::new(1, Duration::from_millis(1));
        let held = gate.admit().expect("hold the only slot");
        let sheds = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    if gate.admit().is_err() {
                        sheds.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        drop(held);
        assert_eq!(sheds.load(Ordering::Relaxed), 4);
        assert_eq!(gate.shed_total(), 4);
    }
}
