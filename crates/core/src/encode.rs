//! Compressing signatures and decomposing them into page-sized partials.
//!
//! The paper compresses each node's bit array individually (adaptive,
//! node-level — §IV-B.1 gives three reasons) and then decomposes a signature
//! tree into *partial signatures*, each fitting a disk page: a breadth-first
//! traversal from the root is cut when the page fills; the process restarts
//! from the root's first child, then its following children, then the next
//! level, skipping nodes already coded. Each partial is a subtree fragment
//! referenced by the SID of its root.

use std::collections::{HashSet, VecDeque};

use pcube_bitmap::{decode, AdaptiveCodec, BitArray, Codec};
use pcube_rtree::{Path, Sid};

use crate::signature::Signature;

/// One page-sized fragment of a signature: the nodes (in BFS order) of a
/// subtree rooted at `root_sid`, minus any nodes coded by earlier partials.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialSignature {
    /// SID of the subtree root this partial is referenced by.
    pub root_sid: Sid,
    /// `(sid, bits)` pairs in BFS order.
    pub nodes: Vec<(Sid, BitArray)>,
}

fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn encoded_node_len(sid: Sid, bits: &BitArray) -> usize {
    varint_len(sid.0) + AdaptiveCodec.encode(bits).len()
}

/// Serializes a partial: `[root_sid][n_nodes]` then `[sid][encoded bits]`
/// per node, all varint/self-describing.
pub fn encode_partial(partial: &PartialSignature) -> Vec<u8> {
    let mut out = Vec::new();
    pcube_bitmap::write_varint(&mut out, partial.root_sid.0);
    pcube_bitmap::write_varint(&mut out, partial.nodes.len() as u64);
    for (sid, bits) in &partial.nodes {
        pcube_bitmap::write_varint(&mut out, sid.0);
        AdaptiveCodec.encode_into(bits, &mut out);
    }
    out
}

/// Inverse of [`encode_partial`]. Returns `None` on malformed input.
pub fn decode_partial(buf: &[u8]) -> Option<PartialSignature> {
    let mut pos = 0usize;
    let root_sid = Sid(pcube_bitmap::read_varint(buf, &mut pos)?);
    let n = pcube_bitmap::read_varint(buf, &mut pos)? as usize;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let sid = Sid(pcube_bitmap::read_varint(buf, &mut pos)?);
        let (bits, used) = decode(&buf[pos..])?;
        pos += used;
        nodes.push((sid, bits));
    }
    Some(PartialSignature { root_sid, nodes })
}

/// Decomposes a signature into partials no larger than `payload_limit`
/// bytes each (§IV-B.1).
///
/// `height` is the R-tree height (node levels), needed to know where bits
/// stop referring to child nodes.
///
/// # Panics
/// Panics if a single node's encoding exceeds `payload_limit` (cannot
/// happen for sane page sizes: an M=204 literal array is ~30 bytes).
pub fn decompose(sig: &Signature, height: usize, payload_limit: usize) -> Vec<PartialSignature> {
    let m = sig.m_max();
    let mut partials = Vec::new();
    if sig.is_empty() {
        return partials;
    }
    let mut coded: HashSet<Sid> = HashSet::new();
    let mut frontier: Vec<Path> = vec![Path::root()];
    let total = sig.node_count();

    while !frontier.is_empty() && coded.len() < total {
        let mut next: Vec<Path> = Vec::new();
        for root in &frontier {
            let root_sid = root.sid(m);
            // BFS within the subtree under `root`, skipping coded nodes and
            // cutting when the page payload would overflow.
            let mut queue: VecDeque<Path> = VecDeque::new();
            queue.push_back(root.clone());
            let mut nodes: Vec<(Sid, BitArray)> = Vec::new();
            let mut size = varint_len(root_sid.0) + 3; // header: root sid + node-count varint
            'bfs: while let Some(p) = queue.pop_front() {
                let sid = p.sid(m);
                let Some(bits) = sig.node(sid) else { continue };
                if !coded.contains(&sid) {
                    let len = encoded_node_len(sid, bits);
                    assert!(
                        varint_len(root_sid.0) + 3 + len <= payload_limit,
                        "single node encoding ({len} B) exceeds page payload {payload_limit}"
                    );
                    if size + len > payload_limit {
                        break 'bfs;
                    }
                    size += len;
                    coded.insert(sid);
                    nodes.push((sid, bits.clone()));
                }
                if p.depth() + 1 < height {
                    for pos in bits.iter_ones() {
                        queue.push_back(p.child(pos as u16 + 1));
                    }
                }
            }
            if !nodes.is_empty() {
                partials.push(PartialSignature { root_sid, nodes });
            }
            // Next round restarts from this root's children.
            if root.depth() + 1 < height {
                if let Some(bits) = sig.node(root_sid) {
                    for pos in bits.iter_ones() {
                        next.push(root.child(pos as u16 + 1));
                    }
                }
            }
        }
        frontier = next;
    }
    debug_assert_eq!(coded.len(), total, "decomposition must cover every node");
    partials
}

/// Reassembles a signature from all of its partials.
pub fn reassemble(m_max: usize, partials: &[PartialSignature]) -> Signature {
    let mut sig = Signature::empty(m_max);
    for p in partials {
        for (sid, bits) in &p.nodes {
            let mut b = bits.clone();
            b.grow(m_max);
            sig.insert_node(*sid, b);
        }
    }
    sig
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn table1_a1() -> Signature {
        // (A = a1): t1 <1,1,1>, t3 <1,2,1>.
        Signature::from_paths(2, [Path(vec![1, 1, 1]), Path(vec![1, 2, 1])].iter())
    }

    #[test]
    fn paper_decomposition_example() {
        // §IV-B.1 walks Fig 2.a with a page that fits two nodes: the first
        // partial holds the root (10) and N1 (11), referenced by SID 0; the
        // second holds leaves N3, N4, referenced by N1 whose SID = 1.
        let sig = table1_a1();
        // Two nodes of M=2 cost ~5 bytes each encoded; pick a limit that
        // fits exactly two.
        let one = encoded_node_len(Sid(0), sig.node(Sid(0)).unwrap());
        let limit = 4 + 2 * one; // header estimate (4) + exactly two nodes
        let partials = decompose(&sig, 3, limit);
        assert_eq!(partials.len(), 2, "{partials:?}");
        assert_eq!(partials[0].root_sid, Sid(0));
        assert_eq!(partials[0].nodes.len(), 2);
        assert_eq!(partials[0].nodes[0].0, Sid(0));
        assert_eq!(partials[0].nodes[1].0, Path(vec![1]).sid(2));
        assert_eq!(partials[1].root_sid, Path(vec![1]).sid(2), "referenced by N1, SID 1");
        let sids: Vec<Sid> = partials[1].nodes.iter().map(|(s, _)| *s).collect();
        assert_eq!(sids, vec![Path(vec![1, 1]).sid(2), Path(vec![1, 2]).sid(2)]);
    }

    #[test]
    fn single_page_when_it_fits() {
        let sig = table1_a1();
        let partials = decompose(&sig, 3, 4096);
        assert_eq!(partials.len(), 1);
        assert_eq!(partials[0].nodes.len(), sig.node_count());
    }

    #[test]
    fn decompose_reassemble_roundtrip_various_limits() {
        let mut sig = Signature::empty(4);
        // A bushy 3-level signature.
        for a in 1..=4u16 {
            for b in 1..=4u16 {
                for c in [1u16, 3] {
                    sig.set_path(&Path(vec![a, b, c]));
                }
            }
        }
        sig.validate(3);
        for limit in [24usize, 40, 64, 128, 4096] {
            let partials = decompose(&sig, 3, limit);
            let back = reassemble(4, &partials);
            assert_eq!(back, sig, "limit {limit}");
            // Each node coded exactly once.
            let coded: usize = partials.iter().map(|p| p.nodes.len()).sum();
            assert_eq!(coded, sig.node_count(), "limit {limit}");
            // Every partial's nodes are under its root.
            for p in &partials {
                let root = Path::from_sid(p.root_sid, 4);
                for (sid, _) in &p.nodes {
                    let path = Path::from_sid(*sid, 4);
                    assert!(root.is_prefix_of(&path), "{root} not prefix of {path}");
                }
            }
        }
    }

    #[test]
    fn partials_respect_size_limit() {
        let mut sig = Signature::empty(8);
        for a in 1..=8u16 {
            for b in 1..=8u16 {
                sig.set_path(&Path(vec![a, b]));
            }
        }
        let limit = 48;
        for p in decompose(&sig, 2, limit) {
            let enc = encode_partial(&p);
            assert!(enc.len() <= limit, "partial of {} bytes exceeds {limit}", enc.len());
        }
    }

    #[test]
    fn encode_decode_partial_roundtrip() {
        let sig = table1_a1();
        for p in decompose(&sig, 3, 4096) {
            let enc = encode_partial(&p);
            let dec = decode_partial(&enc).expect("decodes");
            assert_eq!(dec.root_sid, p.root_sid);
            assert_eq!(dec.nodes.len(), p.nodes.len());
            for ((s1, b1), (s2, b2)) in dec.nodes.iter().zip(&p.nodes) {
                assert_eq!(s1, s2);
                assert_eq!(b1, b2);
            }
        }
    }

    #[test]
    fn decode_partial_rejects_garbage() {
        assert!(decode_partial(&[]).is_none());
        let sig = table1_a1();
        let mut enc = encode_partial(&decompose(&sig, 3, 4096).remove(0));
        enc.truncate(enc.len() - 2);
        assert!(decode_partial(&enc).is_none());
    }

    #[test]
    fn empty_signature_has_no_partials() {
        let sig = Signature::empty(4);
        assert!(decompose(&sig, 3, 100).is_empty());
        assert!(reassemble(4, &[]).is_empty());
    }
}
