//! Online integrity scrubbing for the signature store.
//!
//! The P-Cube keeps answers exact even when a signature page is unreadable
//! (§VII base-table verification), but degraded cells pay the verification
//! cost on every query until the damage is found and repaired. The scrubber
//! is the *finding* half of self-healing: an online, rate-limited walker
//! that verifies every signature page (CRC32 when checksums are on) and
//! every cell's structural invariants (directory locators in bounds,
//! records decodable), quarantining each deterministic failure exactly once
//! so later probes skip the page in O(1).
//!
//! Scrubbing takes only `&PCubeDb` — the same shared-reference discipline
//! as the `par_*` query paths — so it can run concurrently with readers.
//! Rate limiting reuses the [`QueryBudget`] machinery: a deadline and/or a
//! block budget bound the sweep, and a truncated sweep reports how far it
//! got plus the [`StopReason`] that tripped.

use pcube_storage::{PageId, StorageError};

use crate::pcube::PCubeDb;
use crate::query::{Governor, QueryBudget, StopReason};

/// One deterministic failure found (and quarantined) by a scrub pass.
#[derive(Debug, Clone, PartialEq)]
pub struct ScrubFinding {
    /// The damaged signature page.
    pub page: PageId,
    /// The typed error the probe surfaced.
    pub error: StorageError,
}

/// What a scrub pass saw: coverage counters, the failures it quarantined,
/// and whether the sweep ran to completion or was cut short by its budget.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScrubReport {
    /// Signature pages probed this pass (physical reads issued).
    pub pages_scanned: u64,
    /// Pages whose bytes read back clean.
    pub pages_ok: u64,
    /// Pages already quarantined before this pass (skipped, not re-read).
    pub already_quarantined: u64,
    /// Pages this pass moved into quarantine.
    pub newly_quarantined: u64,
    /// Cells whose directory locators and record encodings were verified.
    pub cells_checked: u64,
    /// Partial-signature records decoded successfully.
    pub partials_verified: u64,
    /// The failures found this pass, in page order per phase.
    pub findings: Vec<ScrubFinding>,
    /// `Some` when the budget tripped before the sweep finished; the
    /// counters then describe a prefix of the store.
    pub stopped: Option<StopReason>,
    /// Whether per-page CRC32 verification was armed on the signature
    /// pager. Without it the page sweep only proves readability — the
    /// structural walk still catches malformed records either way.
    pub checksums_enabled: bool,
}

impl ScrubReport {
    /// `true` when the sweep covered the whole store and found nothing bad.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stopped.is_none()
    }

    /// The report as one JSON object (hand-rolled, like the bench
    /// emitters), for the CI artifact and `recovery_bench`.
    pub fn to_json(&self) -> String {
        let findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| format!("{{\"page\":{},\"error\":\"{}\"}}", f.page.0, f.error))
            .collect();
        format!(
            "{{\"pages_scanned\":{},\"pages_ok\":{},\"already_quarantined\":{},\
             \"newly_quarantined\":{},\"cells_checked\":{},\"partials_verified\":{},\
             \"stopped\":{},\"checksums_enabled\":{},\"findings\":[{}]}}",
            self.pages_scanned,
            self.pages_ok,
            self.already_quarantined,
            self.newly_quarantined,
            self.cells_checked,
            self.partials_verified,
            self.stopped.map_or("null".to_string(), |r| format!("\"{r}\"")),
            self.checksums_enabled,
            findings.join(",")
        )
    }
}

impl std::fmt::Display for ScrubReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scrub: {} pages scanned ({} ok, {} newly quarantined, {} already quarantined), \
             {} cells checked, {} partials verified",
            self.pages_scanned,
            self.pages_ok,
            self.newly_quarantined,
            self.already_quarantined,
            self.cells_checked,
            self.partials_verified
        )?;
        if let Some(reason) = self.stopped {
            write!(f, " — stopped early: {reason}")?;
        }
        if !self.checksums_enabled {
            write!(f, " (checksums off: page sweep proves readability only)")?;
        }
        Ok(())
    }
}

/// Scrubs the signature store: a page sweep (phase 1) followed by a
/// structural walk of every materialized cell (phase 2).
///
/// Phase 1 reads every live signature page once — with checksums armed the
/// pager verifies CRC32 and quarantines mismatches itself. Phase 2 runs
/// [`SignatureStore::verify_cell`](crate::SignatureStore::verify_cell) per
/// registered cell, catching structural damage checksums cannot (stale
/// locators, malformed records) and quarantining those pages too.
///
/// The `budget`'s deadline and block budget are enforced between pages and
/// between cells (the same cooperative cadence as query governance); an
/// exhausted budget truncates the sweep and sets [`ScrubReport::stopped`].
pub fn scrub(db: &PCubeDb, budget: &QueryBudget) -> ScrubReport {
    let store = db.pcube().store();
    let (sig_pager, ..) = store.parts_ref();
    let stats = db.stats().clone();
    let base = stats.snapshot();
    let mut governor =
        Governor::new(budget).with_ledger(stats.clone(), base.total_reads());
    let mut report = ScrubReport {
        checksums_enabled: sig_pager.checksums_enabled(),
        ..ScrubReport::default()
    };

    // Phase 1: the page sweep. Already-quarantined pages are skipped — their
    // failure is memoized; re-probing them would only burn budget.
    for pid in sig_pager.live_page_ids() {
        if let Some(reason) = governor.check(0) {
            report.stopped = Some(reason);
            return report;
        }
        if sig_pager.is_quarantined(pid) {
            report.already_quarantined += 1;
            continue;
        }
        report.pages_scanned += 1;
        match sig_pager.try_read(pid) {
            Ok(_) => report.pages_ok += 1,
            Err(error) => {
                // Deterministic failures were quarantined by the pager (or
                // stay transient, e.g. injected I/O errors — those are not).
                if sig_pager.is_quarantined(pid) {
                    report.newly_quarantined += 1;
                }
                report.findings.push(ScrubFinding { page: pid, error });
            }
        }
    }

    // Phase 2: the structural walk. Registry codes are dense, so every
    // materialized cell is 0..len. `verify_cell` quarantines malformed
    // pages itself; a cell whose pages are already quarantined fails fast
    // on the memoized error without physical reads.
    let n_cells = db.pcube().registry().len() as u32;
    for cell in 0..n_cells {
        if let Some(reason) = governor.check(0) {
            report.stopped = Some(reason);
            return report;
        }
        let before = sig_pager.quarantine_len();
        match store.verify_cell(cell) {
            Ok(partials) => {
                report.cells_checked += 1;
                report.partials_verified += partials;
            }
            Err(error) => {
                if sig_pager.quarantine_len() > before {
                    report.newly_quarantined += 1;
                }
                // One finding per distinct page: many cells can share a
                // damaged page, and quarantined pages answer every later
                // cell with the same memoized error.
                if let Some(page) = error_page(&error) {
                    if report.findings.iter().all(|f| f.page != page) {
                        report.findings.push(ScrubFinding { page, error });
                    }
                }
            }
        }
    }
    report
}

/// The page an error implicates, when it names one.
fn error_page(error: &StorageError) -> Option<PageId> {
    match error {
        StorageError::Io { pid, .. }
        | StorageError::Corrupt { pid, .. }
        | StorageError::Malformed { pid, .. }
        | StorageError::DeadPage { pid, .. } => Some(*pid),
        _ => None,
    }
}
