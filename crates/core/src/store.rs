//! On-disk signature storage and lazy retrieval (§IV-B.2).
//!
//! "All signatures are stored on disk and indexed by the cell ID and the
//! root (of the sub-tree) SID. During query processing, we load the partial
//! signatures p only if the node encoded within p is requested."
//!
//! Each partial signature occupies one page of a dedicated pager (charged to
//! [`IoCategory::SignaturePage`]); the directory mapping
//! `(cell id, reference SID) → page` is a [`BPlusTree`] charged to
//! [`IoCategory::BptreePage`]. A [`SignatureCursor`] loads partials on
//! demand following the paper's rule: to resolve a node, try the partial
//! referenced by the root, then by the first-level ancestor on the node's
//! path, then the second level, and so on.

use std::collections::{HashMap, HashSet};

use pcube_bitmap::BitArray;
use pcube_bptree::{composite_key, split_key, BPlusTree};
use pcube_rtree::{Path, Sid};
use pcube_storage::{read_u32, write_u32, IoCategory, Pager, StorageError};

use crate::encode::{decode_partial, decompose, encode_partial, PartialSignature};
use crate::signature::Signature;

const RECORD_HEADER: usize = 4; // per-partial payload length u32

/// Disk-resident store of compressed, decomposed signatures for many cells.
///
/// Partial signatures of one cell are packed contiguously: several small
/// partials may share a page (each is still no larger than a page, as the
/// decomposition guarantees). The directory value encodes `(page, offset)`
/// so a partial load is exactly one signature-page read.
///
/// `Clone` is a deep copy (cloned pagers sharing the I/O ledger, directory
/// clone with a cold pin cache) — the building block of epoch snapshots.
#[derive(Clone)]
pub struct SignatureStore {
    pager: Pager,
    directory: BPlusTree,
    m_max: usize,
    height: usize,
    payload_limit: usize,
}

impl SignatureStore {
    /// Creates an empty store.
    ///
    /// `sig_pager` holds partial-signature pages (category
    /// [`IoCategory::SignaturePage`]); `dir_pager` backs the directory
    /// B+-tree. `m_max`/`height` are the R-tree fanout and height the
    /// signatures were generated over.
    pub fn new(sig_pager: Pager, dir_pager: Pager, m_max: usize, height: usize) -> Self {
        assert_eq!(
            sig_pager.category(),
            IoCategory::SignaturePage,
            "signature pages must be charged to the SignaturePage category"
        );
        let payload_limit = sig_pager.page_size() - RECORD_HEADER;
        // Directory upper levels are pinned: the buffer-pool assumption any
        // 2008-era system would make for a hot index's internal pages.
        let mut directory = BPlusTree::new(dir_pager);
        directory.set_internal_pinning(true);
        SignatureStore {
            pager: sig_pager,
            directory,
            m_max,
            height,
            payload_limit,
        }
    }

    /// Decomposes the store for persistence: `(signature pager, directory
    /// tree, m_max, height)`.
    pub fn into_parts(self) -> (Pager, BPlusTree, usize, usize) {
        (self.pager, self.directory, self.m_max, self.height)
    }

    /// Borrowed view of the parts (for serialization without consuming).
    pub fn parts_ref(&self) -> (&Pager, &BPlusTree, usize, usize) {
        (&self.pager, &self.directory, self.m_max, self.height)
    }

    /// Re-opens a store from deserialized parts.
    pub fn from_parts(pager: Pager, mut directory: BPlusTree, m_max: usize, height: usize) -> Self {
        directory.set_internal_pinning(true);
        let payload_limit = pager.page_size() - RECORD_HEADER;
        SignatureStore { pager, directory, m_max, height, payload_limit }
    }

    /// The R-tree fanout signatures are sized for.
    pub fn m_max(&self) -> usize {
        self.m_max
    }

    /// The R-tree height used for decomposition and intersection.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Updates the height (after R-tree growth during maintenance).
    pub fn set_height(&mut self, height: usize) {
        self.height = height;
    }

    /// Total bytes of live signature pages plus the directory.
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes() + self.directory.pager().size_bytes()
    }

    /// Number of stored partial signatures.
    pub fn partial_count(&self) -> u64 {
        self.directory.len()
    }

    /// The shared I/O ledger the signature pager charges to.
    pub fn stats(&self) -> &pcube_storage::SharedStats {
        self.pager.stats()
    }

    /// Mutable access to the signature pager (chaos-testing hook: install a
    /// [`pcube_storage::FaultPlan`], enable checksums, or corrupt pages).
    pub fn sig_pager_mut(&mut self) -> &mut Pager {
        &mut self.pager
    }

    /// Mutable access to the directory pager (chaos-testing hook).
    pub fn dir_pager_mut(&mut self) -> &mut Pager {
        self.directory.pager_mut()
    }

    fn dir_key(cell: u32, sid: Sid) -> u64 {
        let sid32 = u32::try_from(sid.0)
            .expect("partial-root SID exceeds u32 — tree too deep for the directory key layout");
        composite_key(cell, sid32)
    }

    fn locator(page: pcube_storage::PageId, offset: usize) -> u64 {
        (u64::from(page.0) << 32) | offset as u64
    }

    fn unpack_locator(loc: u64) -> (pcube_storage::PageId, usize) {
        (pcube_storage::PageId((loc >> 32) as u32), (loc & 0xFFFF_FFFF) as usize)
    }

    /// Writes (or replaces) the signature of `cell`, packing its partials
    /// contiguously across as few pages as possible.
    pub fn write_signature(&mut self, cell: u32, sig: &Signature) {
        assert_eq!(sig.m_max(), self.m_max, "fanout mismatch");
        self.delete_signature(cell);
        let page_size = self.pager.page_size();
        let mut page = vec![0u8; page_size];
        let mut used = 0usize;
        let mut pid: Option<pcube_storage::PageId> = None;
        for partial in decompose(sig, self.height, self.payload_limit) {
            let bytes = encode_partial(&partial);
            assert!(bytes.len() <= self.payload_limit, "partial exceeds page payload");
            if pid.is_none() || used + RECORD_HEADER + bytes.len() > page_size {
                if let Some(full) = pid.take() {
                    self.pager.write(full, &page);
                }
                page.fill(0);
                used = 0;
                pid = Some(self.pager.allocate());
            }
            write_u32(&mut page, used, bytes.len() as u32);
            page[used + RECORD_HEADER..used + RECORD_HEADER + bytes.len()]
                .copy_from_slice(&bytes);
            let old = self.directory.insert(
                Self::dir_key(cell, partial.root_sid),
                Self::locator(pid.expect("set by the `is_none()` branch above"), used),
            );
            assert!(old.is_none(), "duplicate partial reference for cell {cell}");
            used += RECORD_HEADER + bytes.len();
        }
        if let Some(last) = pid {
            self.pager.write(last, &page);
        }
    }

    /// Removes all partials of `cell` (no-op if absent).
    pub fn delete_signature(&mut self, cell: u32) {
        let keys: Vec<(u64, u64)> = self
            .directory
            .range(composite_key(cell, 0)..=composite_key(cell, u32::MAX))
            .collect();
        let mut freed = std::collections::HashSet::new();
        for (key, loc) in keys {
            self.directory.remove(key);
            let (page, _) = Self::unpack_locator(loc);
            if freed.insert(page) {
                self.pager.free(page);
            }
        }
    }

    /// Loads one partial by its reference SID, charging one signature-page
    /// read (plus the directory descent). `None` if no such partial.
    ///
    /// Infallible [`SignatureStore::try_load_partial`]; panics where that
    /// errors.
    #[inline]
    pub fn load_partial(&self, cell: u32, ref_sid: Sid) -> Option<PartialSignature> {
        self.try_load_partial(cell, ref_sid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SignatureStore::load_partial`]: surfaces directory-descent
    /// failures, unreadable signature pages and undecodable records.
    pub fn try_load_partial(
        &self,
        cell: u32,
        ref_sid: Sid,
    ) -> Result<Option<PartialSignature>, StorageError> {
        match self.directory.try_get(Self::dir_key(cell, ref_sid))? {
            Some(loc) => Ok(Some(self.try_load_partial_at(loc)?)),
            None => Ok(None),
        }
    }

    /// Loads a partial straight from its locator (one signature-page read),
    /// validating the record bounds before decoding so a corrupt locator or
    /// length field yields a typed error instead of a slice panic.
    fn try_load_partial_at(&self, loc: u64) -> Result<PartialSignature, StorageError> {
        let (pid, offset) = Self::unpack_locator(loc);
        let page = self.pager.try_read(pid)?;
        if offset + RECORD_HEADER > page.len() {
            return Err(self.malformed(pid, "partial-signature locator points outside the page"));
        }
        let len = read_u32(page, offset) as usize;
        if len > page.len() - offset - RECORD_HEADER {
            return Err(self.malformed(pid, "partial-signature length exceeds the page"));
        }
        match decode_partial(&page[offset + RECORD_HEADER..offset + RECORD_HEADER + len]) {
            Some(partial) => Ok(partial),
            None => Err(self.malformed(pid, "undecodable partial signature")),
        }
    }

    /// A structural failure on a signature page: the bytes read back fine
    /// but cannot be a partial-signature record. Deterministic, so the page
    /// is quarantined — later probes get the memoized error in O(1) instead
    /// of re-reading and re-failing.
    fn malformed(&self, pid: pcube_storage::PageId, what: &'static str) -> StorageError {
        let err = StorageError::Malformed { pid, what };
        self.pager.quarantine(pid, err.clone());
        err
    }

    /// All `(reference SID, locator)` pairs of a cell, via one directory
    /// range scan (the refs are contiguous in key space, so this typically
    /// costs a descent plus one leaf page).
    fn try_locators_of(&self, cell: u32) -> Result<HashMap<Sid, u64>, StorageError> {
        Ok(self
            .directory
            .try_range_collect(composite_key(cell, 0)..=composite_key(cell, u32::MAX))?
            .into_iter()
            .map(|(k, loc)| (Sid(u64::from(split_key(k).1)), loc))
            .collect())
    }

    /// Verifies every partial signature of `cell` end to end: the directory
    /// scan, each signature-page read (CRC-checked when checksums are on)
    /// and each record decode. Returns the number of partials verified.
    ///
    /// The first failure aborts the walk with its typed error; deterministic
    /// failures (corrupt or malformed pages) land the page in the pager's
    /// quarantine as a side effect, which is exactly what the scrubber is
    /// after.
    pub fn verify_cell(&self, cell: u32) -> Result<u64, StorageError> {
        let locators = self.try_locators_of(cell)?;
        let mut verified = 0u64;
        for &loc in locators.values() {
            self.try_load_partial_at(loc)?;
            verified += 1;
        }
        Ok(verified)
    }

    /// The cells having at least one partial stored on any page in `pages`,
    /// ascending and deduplicated — the blast radius of a set of bad pages,
    /// and therefore the rebuild set for repair. Costs one full directory
    /// scan; touches no signature pages.
    pub fn cells_on_pages(&self, pages: &HashSet<u32>) -> Result<Vec<u32>, StorageError> {
        let mut cells: Vec<u32> = self
            .directory
            .try_range_collect(..)?
            .into_iter()
            .filter(|(_, loc)| pages.contains(&((loc >> 32) as u32)))
            .map(|(key, _)| split_key(key).0)
            .collect();
        cells.dedup();
        Ok(cells)
    }

    /// Loads and reassembles the complete signature of `cell` (used by
    /// maintenance and eager multi-predicate assembly). Charges one read per
    /// partial plus the directory scan.
    ///
    /// Infallible [`SignatureStore::try_load_full`]; panics where that
    /// errors.
    #[inline]
    pub fn load_full(&self, cell: u32) -> Signature {
        self.try_load_full(cell).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`SignatureStore::load_full`]: any unreadable page or
    /// undecodable record along the way aborts the assembly with the error.
    pub fn try_load_full(&self, cell: u32) -> Result<Signature, StorageError> {
        let mut sig = Signature::empty(self.m_max);
        for (_, loc) in self
            .directory
            .try_range_collect(composite_key(cell, 0)..=composite_key(cell, u32::MAX))?
        {
            let partial = self.try_load_partial_at(loc)?;
            for (sid, bits) in partial.nodes {
                let mut b = bits;
                b.grow(self.m_max);
                sig.insert_node(sid, b);
            }
        }
        Ok(sig)
    }

    /// The paper's in-place maintenance fast path for pure insertions
    /// (§IV-B.3): "we then load those partial signatures containing the
    /// path, and flip the corresponding entries from 0 to 1."
    ///
    /// Flips the bits along every path in `sets` inside the partials that
    /// already encode the touched nodes; nodes the cell never reached before
    /// are appended as fresh partials (referenced by the first new node on
    /// the path, so the cursor's root-then-deeper retrieval rule still finds
    /// them). Returns `false` — leaving the store completely untouched — if
    /// the edit cannot be done in place (a rewritten page would overflow, or
    /// the cell has no signature yet); callers then fall back to
    /// [`SignatureStore::write_signature`].
    pub fn apply_sets_in_place(&mut self, cell: u32, sets: &[Path]) -> bool {
        if sets.is_empty() {
            return true;
        }
        // Locators of every existing partial of the cell.
        let locators: Vec<(Sid, (pcube_storage::PageId, usize))> = self
            .directory
            .range(composite_key(cell, 0)..=composite_key(cell, u32::MAX))
            .map(|(k, loc)| (Sid(u64::from(split_key(k).1)), Self::unpack_locator(loc)))
            .collect();
        if locators.is_empty() {
            return false;
        }
        let ref_set: HashMap<Sid, (pcube_storage::PageId, usize)> =
            locators.iter().copied().collect();

        // Lazily loaded partials by reference, plus which got modified.
        let mut loaded: HashMap<Sid, PartialSignature> = HashMap::new();
        let mut modified: HashSet<Sid> = HashSet::new();
        // Brand-new nodes created by this batch, keyed by node SID.
        let mut added: HashMap<Sid, BitArray> = HashMap::new();
        let mut added_order: Vec<Sid> = Vec::new();

        for path in sets {
            for level in 0..path.depth() {
                let node_sid = path.prefix_sid(level, self.m_max);
                let pos = path.0[level] as usize - 1;
                if let Some(bits) = added.get_mut(&node_sid) {
                    bits.set(pos, true);
                    continue;
                }
                // Find the partial encoding this node by the retrieval rule.
                let mut found: Option<Sid> = None;
                for l in 0..=level {
                    let r = path.prefix_sid(l, self.m_max);
                    if !ref_set.contains_key(&r) {
                        continue;
                    }
                    let partial = match loaded.entry(r) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(v) => {
                            let p = self
                                .load_partial(cell, r)
                                // invariant: `r` came from `ref_set`, which
                                // was just scanned out of the directory.
                                .expect("directory entry must resolve");
                            v.insert(p)
                        }
                    };
                    if partial.nodes.iter().any(|(s, _)| *s == node_sid) {
                        found = Some(r);
                        break;
                    }
                }
                match found {
                    Some(r) => {
                        // invariant: `found = Some(r)` only after `loaded[r]`
                        // was inserted and seen to contain `node_sid`.
                        let partial = loaded.get_mut(&r).expect("loaded[r] inserted above");
                        let (_, bits) = partial
                            .nodes
                            .iter_mut()
                            .find(|(s, _)| *s == node_sid)
                            .expect("found only set when the node is present");
                        bits.grow(self.m_max);
                        bits.set(pos, true);
                        modified.insert(r);
                    }
                    None => {
                        // New node for this cell.
                        let mut bits = BitArray::zeros(self.m_max);
                        bits.set(pos, true);
                        added.insert(node_sid, bits);
                        added_order.push(node_sid);
                    }
                }
            }
        }

        // Re-encode every page that hosts a modified partial and verify it
        // still fits BEFORE touching the store.
        let mut pages: HashMap<pcube_storage::PageId, Vec<Sid>> = HashMap::new();
        for (r, (pid, _)) in &ref_set {
            pages.entry(*pid).or_default().push(*r);
        }
        // (page, new contents, per-record (ref, new offset)) per rewritten page
        type PageRewrite = (pcube_storage::PageId, Vec<u8>, Vec<(Sid, usize)>);
        let mut page_rewrites: Vec<PageRewrite> = Vec::new();
        let affected_pages: HashSet<pcube_storage::PageId> =
            modified.iter().map(|r| ref_set[r].0).collect();
        for pid in affected_pages {
            let mut refs = pages.remove(&pid).unwrap_or_default();
            refs.sort_by_key(|r| ref_set[r].1); // original record order
            let mut new_page = vec![0u8; self.pager.page_size()];
            let mut used = 0usize;
            let mut new_offsets = Vec::with_capacity(refs.len());
            for r in refs {
                let bytes = if modified.contains(&r) {
                    encode_partial(&loaded[&r])
                } else {
                    // Copy the untouched record verbatim.
                    let (p, off) = ref_set[&r];
                    let page = self.pager.read_uncounted(p);
                    let len = read_u32(page, off) as usize;
                    page[off + RECORD_HEADER..off + RECORD_HEADER + len].to_vec()
                };
                if used + RECORD_HEADER + bytes.len() > new_page.len() {
                    return false; // would overflow: fall back to full rewrite
                }
                write_u32(&mut new_page, used, bytes.len() as u32);
                new_page[used + RECORD_HEADER..used + RECORD_HEADER + bytes.len()]
                    .copy_from_slice(&bytes);
                new_offsets.push((r, used));
                used += RECORD_HEADER + bytes.len();
            }
            page_rewrites.push((pid, new_page, new_offsets));
        }

        // Group new nodes into chain partials headed by the shallowest new
        // node on each path, and verify each fits a page.
        let mut new_partials: Vec<PartialSignature> = Vec::new();
        let mut claimed: HashSet<Sid> = HashSet::new();
        for &head in &added_order {
            if claimed.contains(&head) {
                continue;
            }
            let head_path = Path::from_sid(head, self.m_max);
            let mut nodes: Vec<(Sid, BitArray)> = Vec::new();
            // BFS order over this batch's new nodes under `head`.
            let mut members: Vec<(Path, Sid)> = added_order
                .iter()
                .filter(|s| !claimed.contains(s))
                .map(|&s| (Path::from_sid(s, self.m_max), s))
                .filter(|(p, _)| head_path.is_prefix_of(p))
                .collect();
            members.sort_by_key(|(p, _)| p.depth());
            for (_, s) in members {
                claimed.insert(s);
                nodes.push((s, added[&s].clone()));
            }
            let partial = PartialSignature { root_sid: head, nodes };
            if encode_partial(&partial).len() > self.payload_limit
                || u32::try_from(head.0).is_err()
            {
                return false;
            }
            new_partials.push(partial);
        }

        // All feasible: commit. 1) rewrite pages + fix shifted offsets.
        for (pid, page, offsets) in page_rewrites {
            self.pager.write(pid, &page);
            for (r, off) in offsets {
                if ref_set[&r].1 != off {
                    self.directory.insert(Self::dir_key(cell, r), Self::locator(pid, off));
                }
            }
        }
        // 2) append new partials, packed onto fresh pages.
        if !new_partials.is_empty() {
            let page_size = self.pager.page_size();
            let mut page = vec![0u8; page_size];
            let mut used = 0usize;
            let mut pid: Option<pcube_storage::PageId> = None;
            for partial in &new_partials {
                let bytes = encode_partial(partial);
                if pid.is_none() || used + RECORD_HEADER + bytes.len() > page_size {
                    if let Some(full) = pid.take() {
                        self.pager.write(full, &page);
                    }
                    page.fill(0);
                    used = 0;
                    pid = Some(self.pager.allocate());
                }
                write_u32(&mut page, used, bytes.len() as u32);
                page[used + RECORD_HEADER..used + RECORD_HEADER + bytes.len()]
                    .copy_from_slice(&bytes);
                let old = self.directory.insert(
                    Self::dir_key(cell, partial.root_sid),
                    Self::locator(pid.expect("set by the `is_none()` branch above"), used),
                );
                assert!(old.is_none(), "new partial must have a fresh reference");
                used += RECORD_HEADER + bytes.len();
            }
            if let Some(last) = pid {
                self.pager.write(last, &page);
            }
        }
        true
    }

    /// All reference SIDs stored for `cell` (test/diagnostic helper).
    pub fn partial_refs(&self, cell: u32) -> Vec<Sid> {
        self.directory
            .range(composite_key(cell, 0)..=composite_key(cell, u32::MAX))
            .map(|(k, _)| Sid(u64::from(split_key(k).1)))
            .collect()
    }

    /// Opens a lazily-loading cursor over `cell`'s signature.
    pub fn cursor(&self, cell: u32) -> SignatureCursor<'_> {
        SignatureCursor {
            store: self,
            cell,
            nodes: HashMap::new(),
            tried_refs: HashSet::new(),
            locators: None,
            partials_loaded: 0,
            degraded: false,
        }
    }
}

/// Lazily materializes one cell's signature during query processing,
/// loading a partial only when a node it encodes is first requested.
///
/// A storage failure (unreadable page, checksum mismatch, undecodable
/// record) does not abort the query: the cursor marks itself *degraded* and
/// thereafter refuses to prune any node it has no loaded bits for. Queries
/// stay correct — they just traverse more of the R-tree — and every result
/// candidate must be re-verified against the base table (the probe reports
/// itself lossy). Each failure is tallied on [`pcube_storage::IoStats`] as a
/// degraded read.
pub struct SignatureCursor<'a> {
    store: &'a SignatureStore,
    cell: u32,
    nodes: HashMap<Sid, BitArray>,
    tried_refs: HashSet<Sid>,
    /// Reference→locator map, fetched with one directory range scan on
    /// first use (a cell's directory entries are contiguous).
    locators: Option<HashMap<Sid, u64>>,
    partials_loaded: u64,
    degraded: bool,
}

impl SignatureCursor<'_> {
    /// Number of partial signatures loaded so far (the `SSig` metric).
    pub fn partials_loaded(&self) -> u64 {
        self.partials_loaded
    }

    /// `true` if a partial failed to load and the cursor fell back to
    /// conservative (prune-nothing-unknown) answers.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    fn mark_degraded(&mut self) {
        self.degraded = true;
        self.store.pager.stats().record_degraded_reads(1);
    }

    /// `true` if the subtree/tuple at `path` contains data of this cell —
    /// the boolean-prune test of Algorithm 1. Loads partials on demand.
    ///
    /// On a degraded cursor the answer may be a false positive (a node whose
    /// bits were lost is never pruned), but it is never a false negative:
    /// an explicit 0 bit from a successfully loaded partial is still trusted.
    pub fn contains(&mut self, path: &Path) -> bool {
        // Ancestor SIDs accumulate incrementally (`sid(l+1) = sid(l)·(M+1) +
        // pos`): this runs once per kernel pop, and re-encoding each prefix
        // would allocate a Vec per level under concurrency.
        let base = self.store.m_max as u64 + 1;
        let mut sid = Sid::ROOT;
        for level in 0..path.depth() {
            let pos = path.0[level] as usize - 1;
            // Bind the bit by value so the borrow of `self` ends before the
            // `self.degraded` read below.
            let bit = self.node_bits(path, level, sid).map(|bits| bits.get(pos));
            match bit {
                Some(true) => {}
                Some(false) => return false,
                // No bits for this node: normally that proves emptiness, but
                // a degraded cursor may simply have failed to load them, so
                // it must keep the path (pruning lost, correctness kept).
                None if self.degraded => {}
                None => return false,
            }
            sid = Sid(
                sid.0
                    .checked_mul(base)
                    .and_then(|s| s.checked_add(u64::from(path.0[level])))
                    .expect("SID overflow: tree too deep for u64 signature IDs"),
            );
        }
        true
    }

    /// The bit array of the node at `path.prefix(len)`, if the cell has data
    /// there. `sid` must be that prefix's SID (the caller accumulates it
    /// incrementally, so no prefix `Path` is ever materialized).
    ///
    /// Load failures mark the cursor degraded instead of propagating; the
    /// caller then treats "no bits" as "unknown" rather than "empty".
    fn node_bits(&mut self, path: &Path, len: usize, sid: Sid) -> Option<&BitArray> {
        debug_assert_eq!(sid, path.prefix_sid(len, self.store.m_max));
        if !self.nodes.contains_key(&sid) {
            if self.locators.is_none() {
                self.locators = Some(match self.store.try_locators_of(self.cell) {
                    Ok(map) => map,
                    Err(_) => {
                        // Directory unreadable: no locators at all, every
                        // node is unknown from here on.
                        self.mark_degraded();
                        HashMap::new()
                    }
                });
            }
            // Paper's retrieval rule: try the partial referenced by the
            // root, then by deeper and deeper ancestors along the path
            // (reference SIDs accumulated incrementally, like the caller's).
            let base = self.store.m_max as u64 + 1;
            let mut ref_sid = Sid::ROOT;
            for level in 0..=len {
                let this_ref = ref_sid;
                if level < len {
                    ref_sid = Sid(
                        ref_sid.0
                            .checked_mul(base)
                            .and_then(|s| s.checked_add(u64::from(path.0[level])))
                            .expect("SID overflow: tree too deep for u64 signature IDs"),
                    );
                }
                let ref_sid = this_ref;
                if !self.tried_refs.insert(ref_sid) {
                    continue;
                }
                let locators = self.locators.as_ref().expect("populated above");
                if let Some(&loc) = locators.get(&ref_sid) {
                    match self.store.try_load_partial_at(loc) {
                        Ok(partial) => {
                            self.partials_loaded += 1;
                            for (s, bits) in partial.nodes {
                                let mut b = bits;
                                b.grow(self.store.m_max);
                                self.nodes.entry(s).or_insert(b);
                            }
                        }
                        Err(_) => self.mark_degraded(),
                    }
                }
                if self.nodes.contains_key(&sid) {
                    break;
                }
            }
        }
        self.nodes.get(&sid)
    }
}

/// The boolean-pruning side of Algorithm 1: answers "may the subtree/tuple
/// at this path contain data satisfying the selection?".
///
/// * [`BooleanProbe::All`] — no predicates (`BP = ∅`), prunes nothing.
/// * [`BooleanProbe::Single`] — one predicate, one lazily-loaded signature.
/// * [`BooleanProbe::IntersectLazy`] — k predicates ANDed across k lazy
///   cursors. Exact for tuples; conservative (never over-prunes) for
///   internal nodes because the recursive emptiness fix-up is skipped.
/// * [`BooleanProbe::Assembled`] — k signatures loaded fully and intersected
///   with the fix-up (Fig 3.c) before the search; tightest pruning, highest
///   up-front load cost. The `assemble-eager` ablation compares the two.
/// * [`BooleanProbe::Bloom`] — the lossy Bloom-filter summaries of §VII,
///   ANDed across predicates; sound but with false positives.
pub enum BooleanProbe<'a> {
    /// No boolean predicate.
    All,
    /// Exactly one predicate.
    Single(SignatureCursor<'a>),
    /// Conjunction evaluated lazily across per-predicate cursors.
    IntersectLazy(Vec<SignatureCursor<'a>>),
    /// Conjunction assembled eagerly into one in-memory signature.
    Assembled(Signature),
    /// Lossy Bloom summaries (§VII), one per predicate, ANDed.
    Bloom(Vec<crate::bloom::BloomSignature>),
}

impl BooleanProbe<'_> {
    /// `true` if the path may contain qualifying data (never a false
    /// negative; see the variant docs for false-positive behaviour).
    pub fn contains(&mut self, path: &Path) -> bool {
        match self {
            BooleanProbe::All => true,
            BooleanProbe::Single(c) => c.contains(path),
            BooleanProbe::IntersectLazy(cs) => cs.iter_mut().all(|c| c.contains(path)),
            BooleanProbe::Assembled(sig) => sig.contains(path),
            BooleanProbe::Bloom(filters) => filters.iter().all(|f| f.contains(path)),
        }
    }

    /// `true` if the probe can report false positives — lossy Bloom
    /// summaries, or a cursor that degraded after a storage failure. Query
    /// processors must then verify candidate result tuples against the base
    /// table before emitting them.
    pub fn is_lossy(&self) -> bool {
        match self {
            BooleanProbe::All | BooleanProbe::Assembled(_) => false,
            BooleanProbe::Single(c) => c.is_degraded(),
            BooleanProbe::IntersectLazy(cs) => cs.iter().any(SignatureCursor::is_degraded),
            BooleanProbe::Bloom(_) => true,
        }
    }

    /// Partial signatures loaded by the underlying cursors.
    pub fn partials_loaded(&self) -> u64 {
        match self {
            BooleanProbe::All | BooleanProbe::Assembled(_) | BooleanProbe::Bloom(_) => 0,
            BooleanProbe::Single(c) => c.partials_loaded(),
            BooleanProbe::IntersectLazy(cs) => cs.iter().map(|c| c.partials_loaded()).sum(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use pcube_storage::{IoStats, SharedStats, PAGE_SIZE};

    fn store_with(page_size: usize) -> (SignatureStore, SharedStats) {
        let stats = IoStats::new_shared();
        let sig_pager = Pager::new(page_size, IoCategory::SignaturePage, stats.clone());
        let dir_pager = Pager::new(PAGE_SIZE, IoCategory::BptreePage, stats.clone());
        (SignatureStore::new(sig_pager, dir_pager, 2, 3), stats)
    }

    fn a1_signature() -> Signature {
        Signature::from_paths(2, [Path(vec![1, 1, 1]), Path(vec![1, 2, 1])].iter())
    }

    #[test]
    fn write_then_load_full_roundtrips() {
        let (mut store, _) = store_with(PAGE_SIZE);
        let sig = a1_signature();
        store.write_signature(7, &sig);
        assert_eq!(store.load_full(7), sig);
        assert!(store.load_full(8).is_empty(), "unknown cell is empty");
    }

    #[test]
    fn rewrite_replaces_old_partials() {
        let (mut store, _) = store_with(PAGE_SIZE);
        store.write_signature(1, &a1_signature());
        let sig2 = Signature::from_paths(2, [Path(vec![2, 2, 2])].iter());
        store.write_signature(1, &sig2);
        assert_eq!(store.load_full(1), sig2);
        assert_eq!(store.partial_count(), 1);
    }

    #[test]
    fn tiny_pages_force_multiple_partials_and_cursor_follows_refs() {
        // 20-byte pages (16-byte payload): each partial holds ~2 tiny nodes.
        let (mut store, stats) = store_with(20);
        let sig = a1_signature();
        store.write_signature(3, &sig);
        assert!(store.partial_count() >= 2, "expected decomposition, got {}", store.partial_count());
        assert_eq!(store.load_full(3), sig);

        stats.reset();
        let mut cursor = store.cursor(3);
        // Probing the root region loads only the first partial.
        assert!(cursor.contains(&Path(vec![1])));
        let after_root = cursor.partials_loaded();
        assert_eq!(after_root, 1);
        // A pruned branch needs no further loads.
        assert!(!cursor.contains(&Path(vec![2])));
        assert_eq!(cursor.partials_loaded(), after_root);
        // Descending to a leaf bit may load deeper partials.
        assert!(cursor.contains(&Path(vec![1, 2, 1])));
        assert!(!cursor.contains(&Path(vec![1, 2, 2])));
        assert_eq!(
            stats.reads(IoCategory::SignaturePage),
            cursor.partials_loaded(),
            "every partial load is one signature-page read"
        );
    }

    #[test]
    fn cursor_on_missing_cell_contains_nothing() {
        let (store, _) = store_with(PAGE_SIZE);
        let mut cursor = store.cursor(42);
        assert!(!cursor.contains(&Path(vec![1])));
        assert!(cursor.contains(&Path::root()), "root is vacuously contained");
    }

    #[test]
    fn cursor_matches_full_signature_on_every_path() {
        let (mut store, _) = store_with(48);
        let mut sig = Signature::empty(2);
        for a in 1..=2u16 {
            for b in 1..=2u16 {
                if (a + b) % 2 == 0 {
                    sig.set_path(&Path(vec![a, b, 1]));
                }
            }
        }
        store.write_signature(5, &sig);
        let mut cursor = store.cursor(5);
        for a in 1..=2u16 {
            for b in 1..=2u16 {
                for c in 1..=2u16 {
                    let p = Path(vec![a, b, c]);
                    assert_eq!(cursor.contains(&p), sig.contains(&p), "path {p}");
                }
            }
        }
    }

    #[test]
    fn probe_variants_agree_on_tuples() {
        let (mut store, _) = store_with(PAGE_SIZE);
        // a2 = {t2 <1,1,2>, t6 <2,1,2>}, b2 = {t2 <1,1,2>, t7 <2,2,1>}.
        let a2 = Signature::from_paths(2, [Path(vec![1, 1, 2]), Path(vec![2, 1, 2])].iter());
        let b2 = Signature::from_paths(2, [Path(vec![1, 1, 2]), Path(vec![2, 2, 1])].iter());
        store.write_signature(0, &a2);
        store.write_signature(1, &b2);

        let mut lazy = BooleanProbe::IntersectLazy(vec![store.cursor(0), store.cursor(1)]);
        let assembled = a2.intersect(&b2, 3);
        let mut eager = BooleanProbe::Assembled(assembled);
        for a in 1..=2u16 {
            for b in 1..=2u16 {
                for c in 1..=2u16 {
                    let p = Path(vec![a, b, c]);
                    assert_eq!(lazy.contains(&p), eager.contains(&p), "tuple path {p}");
                }
            }
        }
        // Internal nodes: lazy may be looser, never tighter.
        for a in 1..=2u16 {
            for b in 1..=2u16 {
                let p = Path(vec![a, b]);
                if eager.contains(&p) {
                    assert!(lazy.contains(&p), "lazy must not over-prune {p}");
                }
            }
        }
        // The N2 subtree is the paper's example of lazy being looser: both
        // cells have data under <2>, but no shared tuple.
        assert!(lazy.contains(&Path(vec![2])));
        assert!(!eager.contains(&Path(vec![2])));
    }

    #[test]
    fn in_place_sets_match_full_rewrite() {
        // Apply the same insertions via the fast path and via rewrite; the
        // stored signatures must be identical, across page sizes that force
        // different decomposition shapes.
        for page in [24usize, 48, 4096] {
            let (mut fast, _) = store_with(page);
            let (mut slow, _) = store_with(page);
            let base = a1_signature();
            fast.write_signature(1, &base);
            slow.write_signature(1, &base);
            let new_paths = vec![
                Path(vec![1, 1, 2]), // flips bits in existing nodes only
                Path(vec![2, 2, 1]), // creates a brand-new chain under <2>
                Path(vec![2, 2, 2]), // extends that new chain
            ];
            let ok = fast.apply_sets_in_place(1, &new_paths);
            let mut sig = slow.load_full(1);
            for p in &new_paths {
                sig.set_path(p);
            }
            slow.write_signature(1, &sig);
            if ok {
                assert_eq!(fast.load_full(1), slow.load_full(1), "page {page}");
            } // else: fast path declined and left the store untouched
            if !ok {
                assert_eq!(fast.load_full(1), base, "failed fast path must not mutate");
            }
        }
    }

    #[test]
    fn in_place_set_on_missing_cell_declines() {
        let (mut store, _) = store_with(4096);
        assert!(!store.apply_sets_in_place(9, &[Path(vec![1, 1, 1])]));
    }

    #[test]
    fn in_place_new_nodes_are_found_by_cursor() {
        let (mut store, _) = store_with(32); // tiny pages: several partials
        store.write_signature(2, &a1_signature());
        let fresh = Path(vec![2, 1, 1]);
        assert!(store.apply_sets_in_place(2, std::slice::from_ref(&fresh)));
        let mut cursor = store.cursor(2);
        assert!(cursor.contains(&fresh));
        assert!(cursor.contains(&Path(vec![1, 1, 1])), "old contents intact");
        assert!(!cursor.contains(&Path(vec![2, 1, 2])));
    }

    #[test]
    fn corrupt_partial_degrades_instead_of_panicking() {
        // Tiny pages force several partials; corrupt every signature page
        // under checksums and the cursor must degrade (prune nothing it
        // cannot prove empty) rather than panic or under-report.
        let (mut store, stats) = store_with(20);
        let sig = a1_signature();
        store.write_signature(5, &sig);
        store.sig_pager_mut().set_checksums(true);
        let pids = store.sig_pager_mut().live_page_ids();
        for pid in pids {
            store.sig_pager_mut().corrupt_page(pid, 2, 0x40).unwrap();
        }
        let mut cursor = store.cursor(5);
        for a in 1..=2u16 {
            for b in 1..=2u16 {
                for c in 1..=2u16 {
                    let p = Path(vec![a, b, c]);
                    if sig.contains(&p) {
                        assert!(cursor.contains(&p), "no false negatives on {p}");
                    }
                }
            }
        }
        assert!(cursor.is_degraded());
        assert!(stats.degraded_reads() > 0, "failures must be tallied");
        let probe = BooleanProbe::Single(cursor);
        assert!(probe.is_lossy(), "degraded cursors make the probe lossy");
    }

    #[test]
    fn try_load_full_surfaces_corruption_as_errors() {
        let (mut store, _) = store_with(PAGE_SIZE);
        store.write_signature(7, &a1_signature());
        store.sig_pager_mut().set_checksums(true);
        let pids = store.sig_pager_mut().live_page_ids();
        for pid in pids {
            store.sig_pager_mut().corrupt_page(pid, 9, 0x01).unwrap();
        }
        assert!(matches!(
            store.try_load_full(7),
            Err(pcube_storage::StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn directory_and_page_io_are_charged() {
        let (mut store, stats) = store_with(PAGE_SIZE);
        store.write_signature(9, &a1_signature());
        stats.reset();
        let _ = store.load_full(9);
        assert!(stats.reads(IoCategory::SignaturePage) >= 1);
        assert!(stats.reads(IoCategory::BptreePage) >= 1);
    }
}
