//! The in-memory signature: a tree of bit arrays mirroring the R-tree.

use std::collections::HashMap;

use pcube_bitmap::BitArray;
use pcube_rtree::{Path, Sid};

/// A signature for one cube cell over a shared R-tree partition (§IV-B.1).
///
/// For every R-tree node that contains at least one tuple of the cell, the
/// signature stores a bit array of length `M` (the tree fanout): bit `i` is 1
/// iff slot `i+1` of that node leads to a tuple of the cell. Nodes with no
/// such tuple are simply absent — their bit in the parent is 0.
///
/// Invariants (checked by [`Signature::validate`]):
/// * every stored array has at least one set bit;
/// * for every set bit at a non-leaf node, the child node's array is present;
/// * every stored non-root node is reachable via a set bit in its parent.
///
/// # Example — the paper's (A = a1) cell (Fig 2.a)
///
/// ```
/// use pcube_core::Signature;
/// use pcube_rtree::Path;
///
/// // t1 has path <1,1,1>, t3 has <1,2,1> in the Fig 1 R-tree (M = 2).
/// let sig = Signature::from_paths(2, [Path(vec![1, 1, 1]), Path(vec![1, 2, 1])].iter());
/// assert!(sig.contains(&Path(vec![1, 2])));      // node N4 holds a1-data
/// assert!(!sig.contains(&Path(vec![2])));        // nothing under N2
/// assert_eq!(sig.node_count(), 4);               // root, N1, N3, N4
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    m_max: usize,
    nodes: HashMap<Sid, BitArray>,
}

impl Signature {
    /// An empty signature (no tuple of the cell anywhere) for fanout `m_max`.
    pub fn empty(m_max: usize) -> Self {
        Signature { m_max, nodes: HashMap::new() }
    }

    /// Builds the signature from the cell's tuple paths.
    ///
    /// This is the tuple-oriented generation of §IV-B.1: group the relation
    /// by the cuboid, and for each cell turn its tuples' `path` column into
    /// the bit tree. (The paper describes it as a recursive sort; setting
    /// bits per path prefix computes the identical result in one pass.)
    ///
    /// # Panics
    /// Panics if a path position exceeds `m_max`.
    pub fn from_paths<'a>(m_max: usize, paths: impl IntoIterator<Item = &'a Path>) -> Self {
        let mut sig = Signature::empty(m_max);
        for path in paths {
            sig.set_path(path);
        }
        sig
    }

    /// The fanout this signature was built for (bit-array length).
    pub fn m_max(&self) -> usize {
        self.m_max
    }

    /// Number of stored node arrays.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of set bits across all nodes.
    pub fn bit_count(&self) -> usize {
        self.nodes.values().map(BitArray::count_ones).sum()
    }

    /// `true` if the signature covers no tuple.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The bit array of the node at `sid`, if present.
    pub fn node(&self, sid: Sid) -> Option<&BitArray> {
        self.nodes.get(&sid)
    }

    /// Iterates over `(sid, bits)` pairs in unspecified order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (Sid, &BitArray)> {
        self.nodes.iter().map(|(s, b)| (*s, b))
    }

    /// Inserts a decoded node array (used when reassembling from partials).
    ///
    /// # Panics
    /// Panics if the array length differs from `m_max`.
    pub fn insert_node(&mut self, sid: Sid, bits: BitArray) {
        assert_eq!(bits.len(), self.m_max, "node array length must equal M");
        self.nodes.insert(sid, bits);
    }

    /// Sets the bits for every prefix of `path` (marks the tuple present).
    pub fn set_path(&mut self, path: &Path) {
        for level in 0..path.depth() {
            let node_sid = path.prefix_sid(level, self.m_max);
            let pos = path.0[level] as usize - 1;
            assert!(pos < self.m_max, "path position exceeds fanout");
            self.nodes
                .entry(node_sid)
                .or_insert_with(|| BitArray::zeros(self.m_max))
                .set(pos, true);
        }
    }

    /// Clears the leaf-most bit of `path` and prunes emptied ancestors.
    ///
    /// Correct only when no *other* tuple of the cell shares the full path
    /// (paths are unique per tuple, so this holds by construction).
    pub fn clear_path(&mut self, path: &Path) {
        for level in (0..path.depth()).rev() {
            let node_sid = path.prefix_sid(level, self.m_max);
            let pos = path.0[level] as usize - 1;
            // Only clear the parent bit if the child subtree became empty.
            if level + 1 < path.depth() {
                let child_sid = path.prefix_sid(level + 1, self.m_max);
                if self.nodes.contains_key(&child_sid) {
                    break;
                }
            }
            let Some(bits) = self.nodes.get_mut(&node_sid) else { break };
            bits.set(pos, false);
            if bits.all_zero() {
                self.nodes.remove(&node_sid);
            } else {
                break;
            }
        }
    }

    /// `true` if every prefix bit along `path` is set — i.e. the subtree or
    /// tuple at `path` contains data of this cell.
    ///
    /// This runs once per kernel pop, so the ancestor SIDs are accumulated
    /// incrementally (`sid(l+1) = sid(l)·(M+1) + pos`) instead of re-encoding
    /// (and allocating) each prefix — no allocation, O(depth) arithmetic.
    pub fn contains(&self, path: &Path) -> bool {
        let base = self.m_max as u64 + 1;
        let mut sid = Sid::ROOT;
        for level in 0..path.depth() {
            let pos = path.0[level] as usize - 1;
            match self.nodes.get(&sid) {
                Some(bits) if bits.get(pos) => {}
                _ => return false,
            }
            sid = Sid(
                sid.0
                    .checked_mul(base)
                    .and_then(|s| s.checked_add(u64::from(path.0[level])))
                    .expect("SID overflow: tree too deep for u64 signature IDs"),
            );
        }
        true
    }

    /// The union operator: bit-or of both signatures (§IV-B.2, Fig 3.b).
    ///
    /// # Panics
    /// Panics on fanout mismatch.
    pub fn union(&self, other: &Signature) -> Signature {
        assert_eq!(self.m_max, other.m_max, "union of signatures over different partitions");
        let mut out = self.clone();
        for (sid, bits) in &other.nodes {
            match out.nodes.get_mut(sid) {
                Some(mine) => mine.or_assign(bits),
                None => {
                    out.nodes.insert(*sid, bits.clone());
                }
            }
        }
        out
    }

    /// The intersection operator with the recursive fix-up (§IV-B.2,
    /// Fig 3.c): a bit stays 1 only if it is 1 in both inputs *and* (for
    /// non-leaf levels) the intersected child subtree is non-empty.
    ///
    /// `height` is the R-tree height (1 = root is a leaf); bits at depth
    /// `height - 1` refer to tuples and need no child check.
    ///
    /// # Panics
    /// Panics on fanout mismatch.
    pub fn intersect(&self, other: &Signature, height: usize) -> Signature {
        assert_eq!(self.m_max, other.m_max, "intersection over different partitions");
        let mut out = Signature::empty(self.m_max);
        self.intersect_rec(other, &Path::root(), height, &mut out);
        out
    }

    /// Recursively intersects the subtree at `node_path`; returns `true` if
    /// any bit survives (so the parent keeps its bit).
    fn intersect_rec(
        &self,
        other: &Signature,
        node_path: &Path,
        height: usize,
        out: &mut Signature,
    ) -> bool {
        let sid = node_path.sid(self.m_max);
        let (Some(a), Some(b)) = (self.nodes.get(&sid), other.nodes.get(&sid)) else {
            return false;
        };
        let mut bits = a.clone();
        bits.and_assign(b);
        if node_path.depth() + 1 < height {
            // Internal node: verify each surviving bit's child recursively.
            let set: Vec<usize> = bits.iter_ones().collect();
            for pos in set {
                let child = node_path.child(pos as u16 + 1);
                if !self.intersect_rec(other, &child, height, out) {
                    bits.set(pos, false);
                }
            }
        }
        if bits.all_zero() {
            return false;
        }
        out.nodes.insert(sid, bits);
        true
    }

    /// Checks the structural invariants given the R-tree `height`.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn validate(&self, height: usize) {
        if self.nodes.is_empty() {
            return;
        }
        assert!(self.nodes.contains_key(&Sid::ROOT), "non-empty signature must have a root");
        let mut reachable = 0usize;
        let mut stack = vec![Path::root()];
        while let Some(p) = stack.pop() {
            let sid = p.sid(self.m_max);
            let bits = self.nodes.get(&sid).expect("set bit points at a missing child node");
            assert!(!bits.all_zero(), "stored node {sid} is all-zero");
            reachable += 1;
            if p.depth() + 1 < height {
                for pos in bits.iter_ones() {
                    stack.push(p.child(pos as u16 + 1));
                }
            }
        }
        assert_eq!(reachable, self.nodes.len(), "unreachable node arrays present");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tuple paths of Table I in the paper (M = 2).
    fn table1_paths() -> Vec<(u64, Path)> {
        vec![
            (1, Path(vec![1, 1, 1])),
            (2, Path(vec![1, 1, 2])),
            (3, Path(vec![1, 2, 1])),
            (4, Path(vec![1, 2, 2])),
            (5, Path(vec![2, 1, 1])),
            (6, Path(vec![2, 1, 2])),
            (7, Path(vec![2, 2, 1])),
            (8, Path(vec![2, 2, 2])),
        ]
    }

    fn cell_signature(tids: &[u64]) -> Signature {
        let all = table1_paths();
        let paths: Vec<Path> =
            all.iter().filter(|(t, _)| tids.contains(t)).map(|(_, p)| p.clone()).collect();
        Signature::from_paths(2, paths.iter())
    }

    fn bits(sig: &Signature, path: &[u16]) -> String {
        let sid = Path(path.to_vec()).sid(2);
        match sig.node(sid) {
            None => "--".into(),
            Some(b) => (0..2).map(|i| if b.get(i) { '1' } else { '0' }).collect(),
        }
    }

    #[test]
    fn paper_figure2a_a1_signature() {
        // Cell (A = a1) holds t1 <1,1,1> and t3 <1,2,1>. Fig 2.a: root 10,
        // N1 11, N3 10, N4 10.
        let sig = cell_signature(&[1, 3]);
        assert_eq!(bits(&sig, &[]), "10");
        assert_eq!(bits(&sig, &[1]), "11");
        assert_eq!(bits(&sig, &[1, 1]), "10");
        assert_eq!(bits(&sig, &[1, 2]), "10");
        assert_eq!(bits(&sig, &[2]), "--");
        assert_eq!(sig.node_count(), 4);
        // Fig 1's tree has three node levels (root, N1/N2, N3..N6), so
        // height = 3; bits at depth-2 nodes refer to tuples.
        sig.validate(3);
    }

    #[test]
    fn contains_follows_bits() {
        let sig = cell_signature(&[1, 3]);
        assert!(sig.contains(&Path(vec![1])));
        assert!(sig.contains(&Path(vec![1, 2])));
        assert!(sig.contains(&Path(vec![1, 2, 1]))); // t3 itself
        assert!(!sig.contains(&Path(vec![1, 2, 2]))); // t4 is a3
        assert!(!sig.contains(&Path(vec![2])));
        assert!(!sig.contains(&Path(vec![2, 1, 1])));
        assert!(sig.contains(&Path::root()), "root is vacuously contained");
    }

    #[test]
    fn paper_figure3_union_and_intersection() {
        // Fig 3: (A=a2) covers t2 <1,1,2>, t6 <2,1,2>;
        //        (B=b2) covers t2 <1,1,2>, t7 <2,2,1>.
        let a2 = cell_signature(&[2, 6]);
        let b2 = cell_signature(&[2, 7]);

        // Union (Fig 3.b): root 11, N1 10, N2 11, N3 01, N5 01, N6 10.
        let u = a2.union(&b2);
        assert_eq!(bits(&u, &[]), "11");
        assert_eq!(bits(&u, &[1]), "10");
        assert_eq!(bits(&u, &[2]), "11");
        assert_eq!(bits(&u, &[1, 1]), "01");
        assert_eq!(bits(&u, &[2, 1]), "01");
        assert_eq!(bits(&u, &[2, 2]), "10");

        // Intersection (Fig 3.c): only t2 survives; the N2 subtree dies via
        // the recursive fix-up (a2 has t6 under N5, b2 has t7 under N6 —
        // their bit-and at N2 level is 10&01 = 00).
        let i = a2.intersect(&b2, 3);
        assert_eq!(bits(&i, &[]), "10");
        assert_eq!(bits(&i, &[1]), "10");
        assert_eq!(bits(&i, &[1, 1]), "01");
        assert_eq!(bits(&i, &[2]), "--");
        i.validate(3);
        assert!(i.contains(&Path(vec![1, 1, 2])));
        assert!(!i.contains(&Path(vec![2, 1, 2])));
    }

    #[test]
    fn intersection_fixup_clears_parent_bits() {
        // a3 = {t4 <1,2,2>, t8 <2,2,2>}, b1 = {t1 <1,1,1>, t3... wait b1 = t1,t3? No:
        // From Table I: B=b1 rows are t1, t3, t5 — paths <1,1,1>, <1,2,1>, <2,1,1>.
        let a3 = cell_signature(&[4, 8]);
        let b1 = cell_signature(&[1, 3, 5]);
        // a3 ∧ b1: no tuple has both A=a3 and B=b1 → empty after fix-up,
        // even though node-level bit-ands are non-zero (both have bits under
        // N1 and the root).
        let i = a3.intersect(&b1, 3);
        assert!(i.is_empty(), "got {i:?}");
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = cell_signature(&[1, 3]);
        let e = Signature::empty(2);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
        assert!(e.intersect(&a, 3).is_empty());
    }

    #[test]
    fn set_then_clear_roundtrips_to_empty() {
        let mut sig = Signature::empty(3);
        let p1 = Path(vec![1, 2]);
        let p2 = Path(vec![1, 3]);
        sig.set_path(&p1);
        sig.set_path(&p2);
        // Depth-2 tuple paths mean two node levels: height = 2.
        sig.validate(2);
        assert!(sig.contains(&p1) && sig.contains(&p2));
        sig.clear_path(&p1);
        sig.validate(2);
        assert!(!sig.contains(&p1));
        assert!(sig.contains(&p2), "sibling must survive");
        sig.clear_path(&p2);
        assert!(sig.is_empty());
    }

    #[test]
    fn clear_path_keeps_shared_prefixes() {
        let mut sig = Signature::empty(2);
        sig.set_path(&Path(vec![1, 1, 1]));
        sig.set_path(&Path(vec![1, 1, 2]));
        sig.clear_path(&Path(vec![1, 1, 1]));
        assert!(sig.contains(&Path(vec![1, 1, 2])));
        assert!(!sig.contains(&Path(vec![1, 1, 1])));
        assert!(sig.contains(&Path(vec![1, 1])), "shared internal node stays");
        sig.validate(3);
    }

    #[test]
    fn from_paths_equals_incremental_sets() {
        let paths: Vec<Path> = table1_paths().into_iter().map(|(_, p)| p).collect();
        let bulk = Signature::from_paths(2, paths.iter());
        let mut inc = Signature::empty(2);
        for p in &paths {
            inc.set_path(p);
        }
        assert_eq!(bulk, inc);
        // Full table: every node fully set.
        assert_eq!(bulk.node_count(), 7);
        assert_eq!(bulk.bit_count(), 14);
    }

    #[test]
    #[should_panic]
    fn mismatched_fanout_union_panics() {
        let a = Signature::empty(2);
        let b = Signature::empty(3);
        let _ = a.union(&b);
    }
}
