//! Checkpointing a built database to a single file and re-opening it.
//!
//! Building a P-Cube over millions of rows takes seconds; reloading a saved
//! one takes a memcpy. [`PCubeDb::save_to_bytes`] serializes the relation
//! (schema, dictionaries, columns), the shared R-tree (pager image +
//! structural metadata), the cell registry, and the signature store (pager
//! image + directory B+-tree image) into one self-describing buffer;
//! [`PCubeDb::load_from_bytes`] restores an identical database. File-path
//! convenience wrappers are provided.
//!
//! The format is a versioned, little-endian, length-prefixed layout —
//! deliberately hand-rolled so the workspace keeps its tiny dependency
//! footprint. Version 2 (this build) frames the image into four sections
//! (`relation`, `rtree`, `cube`, `signatures`), each `[tag u8][len u64]
//! [payload][crc32 u32]`. A corrupt, truncated or oversized image yields a
//! [`PersistError`] naming the failing section and the absolute byte offset,
//! never a panic; see `DESIGN.md` §6.
//!
//! # Example
//!
//! ```
//! use pcube_core::{PCubeConfig, PCubeDb};
//! use pcube_cube::{Relation, Schema};
//!
//! let mut r = Relation::new(Schema::new(&["kind"], &["x", "y"]));
//! r.push(&["a"], &[0.1, 0.9]);
//! r.push(&["b"], &[0.7, 0.2]);
//! let db = PCubeDb::build(r, &PCubeConfig::default());
//!
//! let image = db.save_to_bytes();
//! let again = PCubeDb::load_from_bytes(&image).unwrap();
//! assert_eq!(again.relation().len(), 2);
//! ```

use std::sync::Arc;

use pcube_cube::{CellKey, CuboidMask, Relation, Schema};
use pcube_rtree::{RTree, RTreeConfig};
use pcube_storage::{crc32, IoCategory, IoStats, PageId, Pager};

use crate::pcube::{PCube, PCubeDb};
use crate::store::SignatureStore;

/// 7-byte file magic; the following byte is the format version.
const MAGIC_PREFIX: &[u8; 7] = b"PCUBEDB";
/// The format version this build writes and reads.
const VERSION: u8 = b'2';

/// Section tags, in file order.
const TAG_RELATION: u8 = 1;
const TAG_RTREE: u8 = 2;
const TAG_CUBE: u8 = 3;
const TAG_SIGNATURES: u8 = 4;

/// A serialization or deserialization failure, pinpointing the failing
/// section and the absolute byte offset in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// Which part of the image failed: `header`, `relation`, `rtree`,
    /// `cube`, `signatures`, `image` (framing), or `file` (I/O wrappers).
    pub section: &'static str,
    /// Absolute byte offset in the image where the failure was detected.
    pub offset: usize,
    /// Human-readable description of what went wrong.
    pub cause: String,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persist error: {} section, byte {}: {}", self.section, self.offset, self.cause)
    }
}

impl std::error::Error for PersistError {}

pub(crate) fn fail<T>(section: &'static str, offset: usize, cause: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError { section, offset, cause: cause.into() })
}

// ------------------------------------------------------------ wire format --

/// Reads one section's payload, carrying the section name and the payload's
/// absolute position so every error can name an exact image offset.
///
/// Crate-visible: the durable checkpoint image (`crate::durable`) reuses it
/// to parse the metadata payloads it shares with this format.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
    /// Absolute offset of `buf[0]` within the whole image.
    base: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a standalone payload (no surrounding image).
    pub(crate) fn over(buf: &'a [u8], section: &'static str) -> Self {
        Reader { buf, pos: 0, section, base: 0 }
    }

    pub(crate) fn err<T>(&self, cause: impl Into<String>) -> Result<T, PersistError> {
        fail(self.section, self.base + self.pos, cause)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => self.err("truncated input"),
        }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads exactly `n` raw bytes.
    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        self.take(n)
    }

    /// Everything from the current position to the end of the payload,
    /// consuming it.
    pub(crate) fn remaining_bytes(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, PersistError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(raw))
    }

    pub(crate) fn string(&mut self) -> Result<String, PersistError> {
        let len = self.count(8, 1, "string length")?;
        let bytes = self.take(len)?;
        match String::from_utf8(bytes.to_vec()) {
            Ok(s) => Ok(s),
            Err(_) => {
                self.pos -= len; // point the error at the string, not past it
                self.err("bad utf-8")
            }
        }
    }

    /// Reads a count (u32 when `width == 4`, u64 when `width == 8`) and
    /// rejects it if `count * min_elem_size` exceeds the remaining payload —
    /// the guard that keeps a bit-flipped length field from turning into a
    /// multi-gigabyte `Vec::with_capacity`.
    pub(crate) fn count(&mut self, width: usize, min_elem_size: usize, what: &str) -> Result<usize, PersistError> {
        let start = self.pos;
        let raw = match width {
            4 => u64::from(self.u32()?),
            _ => self.u64()?,
        };
        let remaining = self.buf.len() - self.pos;
        let plausible = usize::try_from(raw)
            .ok()
            .and_then(|c| c.checked_mul(min_elem_size))
            .is_some_and(|need| need <= remaining);
        if !plausible {
            self.pos = start;
            return self.err(format!("{what} {raw} exceeds the remaining section bytes"));
        }
        Ok(raw as usize)
    }

    /// Deserializes an embedded pager image starting at the current
    /// position, translating its [`pcube_storage::ImageError`] offset into
    /// an absolute image offset.
    pub(crate) fn pager(&mut self, category: IoCategory, stats: pcube_storage::SharedStats) -> Result<Pager, PersistError> {
        match Pager::try_deserialize_from(&self.buf[self.pos..], category, stats) {
            Ok((pager, used)) => {
                self.pos += used;
                Ok(pager)
            }
            Err(e) => fail(self.section, self.base + self.pos + e.offset, e.cause),
        }
    }

    /// Fails unless the whole payload was consumed.
    pub(crate) fn finish(self) -> Result<(), PersistError> {
        if self.pos != self.buf.len() {
            return self.err("trailing bytes inside the section");
        }
        Ok(())
    }
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Appends one framed section: `[tag][len][payload][crc32(payload)]`.
pub(crate) fn put_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    put_u32(out, crc32(payload));
}

/// Validates the framing of the next section (`tag`, length, CRC) and hands
/// back a [`Reader`] over its payload.
pub(crate) fn open_section<'a>(
    image: &'a [u8],
    pos: &mut usize,
    tag: u8,
    name: &'static str,
) -> Result<Reader<'a>, PersistError> {
    let header = *pos;
    if image.len() - header < 1 + 8 {
        return fail(name, header, "image truncated before the section header");
    }
    if image[header] != tag {
        return fail(name, header, format!("unexpected section tag {}", image[header]));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&image[header + 1..header + 9]);
    let len = u64::from_le_bytes(raw);
    let body = header + 9;
    let avail = image.len() - body;
    // Distinguish a *truncated* section (a partial write cut the payload or
    // trailing checksum short — the length field itself is fine) from an
    // *implausible* length (corruption of the length field): recovery
    // tooling treats the two very differently.
    match usize::try_from(len).ok().and_then(|l| l.checked_add(4)) {
        None => {
            return fail(name, header + 1, format!("implausible section length {len}"));
        }
        Some(need) if need > avail => {
            return fail(
                name,
                header + 1,
                format!(
                    "section truncated: {len}-byte payload plus checksum needs {need} bytes, \
                     only {avail} remain in the image"
                ),
            );
        }
        Some(_) => {}
    }
    let len = len as usize;
    let payload = &image[body..body + len];
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&image[body + len..body + len + 4]);
    let stored = u32::from_le_bytes(raw);
    let computed = crc32(payload);
    if stored != computed {
        return fail(
            name,
            body + len,
            format!("section checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"),
        );
    }
    *pos = body + len + 4;
    Ok(Reader { buf: payload, pos: 0, section: name, base: body })
}

/// Serializes a relation (schema, dictionaries, columns) into `payload` —
/// the body of the `relation` section, shared with the durable checkpoint
/// image.
pub(crate) fn write_relation_payload(relation: &Relation, payload: &mut Vec<u8>) {
    let schema = relation.schema();
    put_u32(payload, schema.n_bool() as u32);
    for d in 0..schema.n_bool() {
        put_string(payload, schema.bool_name(d));
    }
    put_u32(payload, schema.n_pref() as u32);
    for d in 0..schema.n_pref() {
        put_string(payload, schema.pref_name(d));
    }
    for d in 0..schema.n_bool() {
        let values = relation.dictionary(d).values();
        put_u64(payload, values.len() as u64);
        for v in values {
            put_string(payload, v);
        }
    }
    put_u64(payload, relation.len() as u64);
    for d in 0..schema.n_bool() {
        for c in relation.bool_column(d) {
            put_u32(payload, c);
        }
    }
    for d in 0..schema.n_pref() {
        for x in relation.pref_column(d) {
            put_f64(payload, x);
        }
    }
}

/// Restores a relation written by [`write_relation_payload`]. The returned
/// relation has no I/O ledger attached yet.
pub(crate) fn read_relation_payload(r: &mut Reader<'_>) -> Result<Relation, PersistError> {
    let n_bool = r.count(4, 8, "boolean dimension count")?;
    let mut bool_names = Vec::with_capacity(n_bool);
    for _ in 0..n_bool {
        bool_names.push(r.string()?);
    }
    let n_pref = r.count(4, 8, "preference dimension count")?;
    if n_pref == 0 {
        return r.err("no preference dimensions");
    }
    let mut pref_names = Vec::with_capacity(n_pref);
    for _ in 0..n_pref {
        pref_names.push(r.string()?);
    }
    let schema = Schema::new(
        &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &pref_names.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut relation = Relation::new(schema);
    for d in 0..n_bool {
        let n_values = r.count(8, 8, "dictionary size")?;
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(r.string()?);
        }
        relation.restore_dictionary(d, &values);
    }
    let n_rows = r.count(8, (n_bool * 4 + n_pref * 8).max(1), "row count")?;
    let mut bool_cols = vec![Vec::with_capacity(n_rows); n_bool];
    for col in bool_cols.iter_mut() {
        for _ in 0..n_rows {
            col.push(r.u32()?);
        }
    }
    let mut pref_cols = vec![Vec::with_capacity(n_rows); n_pref];
    for col in pref_cols.iter_mut() {
        for _ in 0..n_rows {
            col.push(r.f64()?);
        }
    }
    let mut codes = vec![0u32; n_bool];
    let mut coords = vec![0f64; n_pref];
    for row in 0..n_rows {
        for (d, c) in codes.iter_mut().enumerate() {
            *c = bool_cols[d][row];
        }
        for (d, x) in coords.iter_mut().enumerate() {
            *x = pref_cols[d][row];
        }
        relation.push_coded(&codes, &coords);
    }
    Ok(relation)
}

/// Serializes the cube metadata (cuboid list + cell registry in code order)
/// into `payload` — the body of the `cube` section, shared with the durable
/// checkpoint image.
pub(crate) fn write_cube_payload(pcube: &PCube, payload: &mut Vec<u8>) {
    put_u64(payload, pcube.cuboids.len() as u64);
    for m in &pcube.cuboids {
        put_u32(payload, m.0);
    }
    put_u64(payload, pcube.registry.len() as u64);
    for code in 0..pcube.registry.len() as u32 {
        let key = pcube.registry.key(code).expect("dense codes");
        put_u32(payload, key.mask.0);
        put_u64(payload, key.values.len() as u64);
        for &v in &key.values {
            put_u32(payload, v);
        }
    }
}

/// Restores the cuboid list and registry written by [`write_cube_payload`].
pub(crate) fn read_cube_payload(
    r: &mut Reader<'_>,
) -> Result<(Vec<CuboidMask>, pcube_cube::CellRegistry), PersistError> {
    let n_cuboids = r.count(8, 4, "cuboid count")?;
    let mut cuboids = Vec::with_capacity(n_cuboids);
    for _ in 0..n_cuboids {
        cuboids.push(CuboidMask(r.u32()?));
    }
    let n_cells = r.count(8, 4 + 8, "cell count")?;
    let mut registry = pcube_cube::CellRegistry::new();
    for expected in 0..n_cells as u32 {
        let mask = CuboidMask(r.u32()?);
        let n_values = r.count(8, 4, "cell value count")?;
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(r.u32()?);
        }
        let code = registry.intern(CellKey { mask, values });
        if code != expected {
            return r.err("registry codes are not dense");
        }
    }
    Ok((cuboids, registry))
}

impl PCubeDb {
    /// Serializes the whole database (relation, R-tree, signatures,
    /// registry) into one buffer in format version 2.
    pub fn save_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_PREFIX);
        out.push(VERSION);

        // --- relation ---
        let mut payload = Vec::new();
        write_relation_payload(&self.relation, &mut payload);
        put_section(&mut out, TAG_RELATION, &payload);

        // --- R-tree ---
        payload.clear();
        let (root, height, len) = self.rtree.parts();
        put_u32(&mut payload, self.rtree.dims() as u32);
        put_u32(&mut payload, self.rtree.m_max() as u32);
        put_u32(&mut payload, self.rtree.m_min() as u32);
        put_u32(&mut payload, root.0);
        put_u64(&mut payload, height as u64);
        put_u64(&mut payload, len);
        self.rtree.pager().serialize_into(&mut payload);
        put_section(&mut out, TAG_RTREE, &payload);

        // --- cube: cuboids + registry (code order) ---
        payload.clear();
        write_cube_payload(&self.pcube, &mut payload);
        put_section(&mut out, TAG_CUBE, &payload);

        // --- signature store ---
        payload.clear();
        let (sig_pager, directory, m_max, s_height) = self.pcube.store.parts_ref();
        put_u64(&mut payload, m_max as u64);
        put_u64(&mut payload, s_height as u64);
        sig_pager.serialize_into(&mut payload);
        let (d_root, d_height, d_len) = directory.parts();
        put_u32(&mut payload, d_root.0);
        put_u64(&mut payload, d_height as u64);
        put_u64(&mut payload, d_len);
        directory.pager().serialize_into(&mut payload);
        put_section(&mut out, TAG_SIGNATURES, &payload);

        out
    }

    /// Restores a database saved by [`PCubeDb::save_to_bytes`]. The restored
    /// instance has a fresh (zeroed) I/O ledger.
    ///
    /// Never panics on hostile input: truncation, bit flips, a wrong magic,
    /// or a future format version all surface as a [`PersistError`] naming
    /// the failing section and byte offset.
    pub fn load_from_bytes(image: &[u8]) -> Result<PCubeDb, PersistError> {
        if image.len() < 8 {
            return fail("header", 0, "image shorter than the magic header");
        }
        if &image[..7] != MAGIC_PREFIX {
            return fail("header", 0, "not a pcube database file");
        }
        match image[7] {
            VERSION => {}
            b'1' => {
                return fail(
                    "header",
                    7,
                    "unsupported format version 1 (this build reads version 2)",
                )
            }
            v => return fail("header", 7, format!("unknown future format version {:?}", v as char)),
        }
        let stats = IoStats::new_shared();
        let mut pos = 8usize;

        // --- relation ---
        let mut r = open_section(image, &mut pos, TAG_RELATION, "relation")?;
        let mut relation = read_relation_payload(&mut r)?;
        let n_pref = relation.schema().n_pref();
        relation.attach_stats(stats.clone());
        r.finish()?;

        // --- R-tree ---
        let mut r = open_section(image, &mut pos, TAG_RTREE, "rtree")?;
        let dims = r.u32()? as usize;
        let m_max = r.u32()? as usize;
        let m_min = r.u32()? as usize;
        let root = PageId(r.u32()?);
        let height = r.u64()? as usize;
        let len = r.u64()?;
        if dims != n_pref {
            return r.err("R-tree dimensionality does not match the schema");
        }
        // Mirror `RTreeConfig::explicit`'s invariant so garbage fanouts come
        // back as an error instead of an assertion failure.
        if m_max < 2 || m_min == 0 || 2 * m_min > m_max + 1 {
            return r.err(format!("implausible R-tree fanout (m_min {m_min}, m_max {m_max})"));
        }
        let pager = r.pager(IoCategory::RtreeBlock, stats.clone())?;
        r.finish()?;
        let config = RTreeConfig::explicit(dims, m_min, m_max);
        let rtree = RTree::from_parts(pager, config, root, height, len);

        // --- cube ---
        let mut r = open_section(image, &mut pos, TAG_CUBE, "cube")?;
        let (cuboids, registry) = read_cube_payload(&mut r)?;
        r.finish()?;

        // --- signature store ---
        let mut r = open_section(image, &mut pos, TAG_SIGNATURES, "signatures")?;
        let s_m_max = r.u64()? as usize;
        let s_height = r.u64()? as usize;
        let sig_pager = r.pager(IoCategory::SignaturePage, stats.clone())?;
        let d_root = PageId(r.u32()?);
        let d_height = r.u64()? as usize;
        let d_len = r.u64()?;
        let dir_pager = r.pager(IoCategory::BptreePage, stats.clone())?;
        r.finish()?;
        if pos != image.len() {
            return fail("image", pos, "trailing bytes after database image");
        }
        let directory = pcube_bptree::BPlusTree::from_parts(dir_pager, d_root, d_height, d_len);
        let store = SignatureStore::from_parts(sig_pager, directory, s_m_max, s_height);

        Ok(PCubeDb {
            relation,
            rtree,
            pcube: PCube { registry: Arc::new(registry), store, cuboids },
            stats,
            // Admission control is runtime configuration, not data: a
            // reopened database starts ungated.
            admission: None,
        })
    }

    /// Saves the database to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.save_to_bytes())
            .map_err(|e| PersistError { section: "file", offset: 0, cause: e.to_string() })
    }

    /// Opens a database saved with [`PCubeDb::save`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<PCubeDb, PersistError> {
        let bytes = std::fs::read(path)
            .map_err(|e| PersistError { section: "file", offset: 0, cause: e.to_string() })?;
        Self::load_from_bytes(&bytes)
    }
}
