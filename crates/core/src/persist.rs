//! Checkpointing a built database to a single file and re-opening it.
//!
//! Building a P-Cube over millions of rows takes seconds; reloading a saved
//! one takes a memcpy. [`PCubeDb::save_to_bytes`] serializes the relation
//! (schema, dictionaries, columns), the shared R-tree (pager image +
//! structural metadata), the cell registry, and the signature store (pager
//! image + directory B+-tree image) into one self-describing buffer;
//! [`PCubeDb::load_from_bytes`] restores an identical database. File-path
//! convenience wrappers are provided.
//!
//! The format is a versioned, little-endian, length-prefixed layout —
//! deliberately hand-rolled so the workspace keeps its tiny dependency
//! footprint.
//!
//! # Example
//!
//! ```
//! use pcube_core::{PCubeConfig, PCubeDb};
//! use pcube_cube::{Relation, Schema};
//!
//! let mut r = Relation::new(Schema::new(&["kind"], &["x", "y"]));
//! r.push(&["a"], &[0.1, 0.9]);
//! r.push(&["b"], &[0.7, 0.2]);
//! let db = PCubeDb::build(r, &PCubeConfig::default());
//!
//! let image = db.save_to_bytes();
//! let again = PCubeDb::load_from_bytes(&image).unwrap();
//! assert_eq!(again.relation().len(), 2);
//! ```

use pcube_cube::{CellKey, CuboidMask, Relation, Schema};
use pcube_rtree::{RTree, RTreeConfig};
use pcube_storage::{IoCategory, IoStats, PageId, Pager};

use crate::pcube::{PCube, PCubeDb};
use crate::store::SignatureStore;

const MAGIC: &[u8; 8] = b"PCUBEDB1";

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "persist error: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

fn fail<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError(msg.into()))
}

// ------------------------------------------------------------ wire format --

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => fail("truncated input"),
        }
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, PersistError> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError("bad utf-8".into()))
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

impl PCubeDb {
    /// Serializes the whole database (relation, R-tree, signatures,
    /// registry) into one buffer.
    pub fn save_to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);

        // --- relation ---
        let schema = self.relation.schema();
        put_u32(&mut out, schema.n_bool() as u32);
        for d in 0..schema.n_bool() {
            put_string(&mut out, schema.bool_name(d));
        }
        put_u32(&mut out, schema.n_pref() as u32);
        for d in 0..schema.n_pref() {
            put_string(&mut out, schema.pref_name(d));
        }
        for d in 0..schema.n_bool() {
            let values = self.relation.dictionary(d).values();
            put_u64(&mut out, values.len() as u64);
            for v in values {
                put_string(&mut out, v);
            }
        }
        put_u64(&mut out, self.relation.len() as u64);
        for d in 0..schema.n_bool() {
            for &c in self.relation.bool_column(d) {
                put_u32(&mut out, c);
            }
        }
        for d in 0..schema.n_pref() {
            for &x in self.relation.pref_column(d) {
                put_f64(&mut out, x);
            }
        }

        // --- R-tree ---
        let (root, height, len) = self.rtree.parts();
        put_u32(&mut out, self.rtree.dims() as u32);
        put_u32(&mut out, self.rtree.m_max() as u32);
        put_u32(&mut out, self.rtree.m_min() as u32);
        put_u32(&mut out, root.0);
        put_u64(&mut out, height as u64);
        put_u64(&mut out, len);
        self.rtree.pager().serialize_into(&mut out);

        // --- cube: cuboids + registry (code order) ---
        put_u64(&mut out, self.pcube.cuboids.len() as u64);
        for m in &self.pcube.cuboids {
            put_u32(&mut out, m.0);
        }
        put_u64(&mut out, self.pcube.registry.len() as u64);
        for code in 0..self.pcube.registry.len() as u32 {
            let key = self.pcube.registry.key(code).expect("dense codes");
            put_u32(&mut out, key.mask.0);
            put_u64(&mut out, key.values.len() as u64);
            for &v in &key.values {
                put_u32(&mut out, v);
            }
        }

        // --- signature store ---
        let (sig_pager, directory, m_max, s_height) = self.pcube.store.parts_ref();
        put_u64(&mut out, m_max as u64);
        put_u64(&mut out, s_height as u64);
        sig_pager.serialize_into(&mut out);
        let (d_root, d_height, d_len) = directory.parts();
        put_u32(&mut out, d_root.0);
        put_u64(&mut out, d_height as u64);
        put_u64(&mut out, d_len);
        directory.pager().serialize_into(&mut out);

        out
    }

    /// Restores a database saved by [`PCubeDb::save_to_bytes`]. The restored
    /// instance has a fresh (zeroed) I/O ledger.
    pub fn load_from_bytes(buf: &[u8]) -> Result<PCubeDb, PersistError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(8)? != MAGIC {
            return fail("not a pcube database file");
        }
        let stats = IoStats::new_shared();

        // --- relation ---
        let n_bool = r.u32()? as usize;
        let mut bool_names = Vec::with_capacity(n_bool);
        for _ in 0..n_bool {
            bool_names.push(r.string()?);
        }
        let n_pref = r.u32()? as usize;
        if n_pref == 0 {
            return fail("no preference dimensions");
        }
        let mut pref_names = Vec::with_capacity(n_pref);
        for _ in 0..n_pref {
            pref_names.push(r.string()?);
        }
        let schema = Schema::new(
            &bool_names.iter().map(String::as_str).collect::<Vec<_>>(),
            &pref_names.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let mut relation = Relation::new(schema);
        for d in 0..n_bool {
            let n_values = r.u64()? as usize;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                values.push(r.string()?);
            }
            relation.restore_dictionary(d, &values);
        }
        let n_rows = r.u64()? as usize;
        let mut bool_cols = vec![Vec::with_capacity(n_rows); n_bool];
        for col in bool_cols.iter_mut() {
            for _ in 0..n_rows {
                col.push(r.u32()?);
            }
        }
        let mut pref_cols = vec![Vec::with_capacity(n_rows); n_pref];
        for col in pref_cols.iter_mut() {
            for _ in 0..n_rows {
                col.push(r.f64()?);
            }
        }
        let mut codes = vec![0u32; n_bool];
        let mut coords = vec![0f64; n_pref];
        for row in 0..n_rows {
            for (d, c) in codes.iter_mut().enumerate() {
                *c = bool_cols[d][row];
            }
            for (d, x) in coords.iter_mut().enumerate() {
                *x = pref_cols[d][row];
            }
            relation.push_coded(&codes, &coords);
        }
        relation.attach_stats(stats.clone());

        // --- R-tree ---
        let dims = r.u32()? as usize;
        let m_max = r.u32()? as usize;
        let m_min = r.u32()? as usize;
        let root = PageId(r.u32()?);
        let height = r.u64()? as usize;
        let len = r.u64()?;
        let (pager, used) =
            Pager::deserialize_from(&buf[r.pos..], IoCategory::RtreeBlock, stats.clone())
                .ok_or_else(|| PersistError("corrupt R-tree pager".into()))?;
        r.pos += used;
        if dims != n_pref {
            return fail("R-tree dimensionality does not match the schema");
        }
        let config = RTreeConfig::explicit(dims, m_min, m_max);
        let rtree = RTree::from_parts(pager, config, root, height, len);

        // --- cube ---
        let n_cuboids = r.u64()? as usize;
        let mut cuboids = Vec::with_capacity(n_cuboids);
        for _ in 0..n_cuboids {
            cuboids.push(CuboidMask(r.u32()?));
        }
        let n_cells = r.u64()? as usize;
        let mut registry = pcube_cube::CellRegistry::new();
        for expected in 0..n_cells as u32 {
            let mask = CuboidMask(r.u32()?);
            let n_values = r.u64()? as usize;
            let mut values = Vec::with_capacity(n_values);
            for _ in 0..n_values {
                values.push(r.u32()?);
            }
            let code = registry.intern(CellKey { mask, values });
            if code != expected {
                return fail("registry codes are not dense");
            }
        }

        // --- signature store ---
        let s_m_max = r.u64()? as usize;
        let s_height = r.u64()? as usize;
        let (sig_pager, used) =
            Pager::deserialize_from(&buf[r.pos..], IoCategory::SignaturePage, stats.clone())
                .ok_or_else(|| PersistError("corrupt signature pager".into()))?;
        r.pos += used;
        let d_root = PageId(r.u32()?);
        let d_height = r.u64()? as usize;
        let d_len = r.u64()?;
        let (dir_pager, used) =
            Pager::deserialize_from(&buf[r.pos..], IoCategory::BptreePage, stats.clone())
                .ok_or_else(|| PersistError("corrupt directory pager".into()))?;
        r.pos += used;
        if r.pos != buf.len() {
            return fail("trailing bytes after database image");
        }
        let directory = pcube_bptree::BPlusTree::from_parts(dir_pager, d_root, d_height, d_len);
        let store = SignatureStore::from_parts(sig_pager, directory, s_m_max, s_height);

        Ok(PCubeDb {
            relation,
            rtree,
            pcube: PCube { registry, store, cuboids },
            stats,
        })
    }

    /// Saves the database to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        std::fs::write(path, self.save_to_bytes()).map_err(|e| PersistError(e.to_string()))
    }

    /// Opens a database saved with [`PCubeDb::save`].
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<PCubeDb, PersistError> {
        let bytes = std::fs::read(path).map_err(|e| PersistError(e.to_string()))?;
        Self::load_from_bytes(&bytes)
    }
}
