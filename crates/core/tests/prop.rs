//! Property tests for the signature life cycle: generation, boolean
//! algebra, incremental set/clear, decomposition and the lazy cursor.
//!
//! Runs are fully reproducible: the vendored proptest derives its RNG seed
//! deterministically from the test's module path and name (override with
//! `PROPTEST_SEED`), so every CI run replays the identical case sequence.

use pcube_core::encode::{decode_partial, decompose, encode_partial, reassemble};
use pcube_core::{LinearFn, MinCoordSum, RankingFunction, Signature, SignatureStore, WeightedDistanceFn};
use pcube_rtree::{Mbr, Path};
use pcube_storage::{IoCategory, IoStats, Pager};
use proptest::prelude::*;
use std::collections::HashSet;

const M: usize = 4;
const HEIGHT: usize = 3;

/// A random set of distinct depth-3 tuple paths over fanout 4.
fn arb_paths() -> impl Strategy<Value = Vec<Path>> {
    prop::collection::hash_set((1u16..=4, 1u16..=4, 1u16..=4), 0..40)
        .prop_map(|s| s.into_iter().map(|(a, b, c)| Path(vec![a, b, c])).collect())
}

fn all_tuple_paths() -> Vec<Path> {
    let mut out = Vec::new();
    for a in 1..=4u16 {
        for b in 1..=4u16 {
            for c in 1..=4u16 {
                out.push(Path(vec![a, b, c]));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn membership_matches_path_set(paths in arb_paths()) {
        let sig = Signature::from_paths(M, paths.iter());
        sig.validate(HEIGHT);
        let set: HashSet<&Path> = paths.iter().collect();
        for p in all_tuple_paths() {
            prop_assert_eq!(sig.contains(&p), set.contains(&p), "path {}", p);
        }
        // Node-level membership: a node is contained iff some tuple path
        // extends it.
        for a in 1..=4u16 {
            let node = Path(vec![a]);
            let expect = paths.iter().any(|p| node.is_prefix_of(p));
            prop_assert_eq!(sig.contains(&node), expect);
        }
    }

    #[test]
    fn union_is_set_union(a in arb_paths(), b in arb_paths()) {
        let sa = Signature::from_paths(M, a.iter());
        let sb = Signature::from_paths(M, b.iter());
        let u = sa.union(&sb);
        u.validate(HEIGHT);
        let both: HashSet<Path> = a.iter().chain(b.iter()).cloned().collect();
        let expect = Signature::from_paths(M, both.iter());
        prop_assert_eq!(u, expect);
    }

    #[test]
    fn intersection_is_set_intersection(a in arb_paths(), b in arb_paths()) {
        let sa = Signature::from_paths(M, a.iter());
        let sb = Signature::from_paths(M, b.iter());
        let i = sa.intersect(&sb, HEIGHT);
        i.validate(HEIGHT);
        let sa_set: HashSet<&Path> = a.iter().collect();
        let shared: Vec<Path> = b.iter().filter(|p| sa_set.contains(p)).cloned().collect();
        let expect = Signature::from_paths(M, shared.iter());
        prop_assert_eq!(i, expect, "intersection with fix-up must equal the shared-tuple signature");
    }

    #[test]
    fn clear_path_equals_rebuild_without_it(paths in arb_paths(), victim in any::<prop::sample::Index>()) {
        prop_assume!(!paths.is_empty());
        let v = victim.index(paths.len());
        let mut sig = Signature::from_paths(M, paths.iter());
        sig.clear_path(&paths[v]);
        sig.validate(HEIGHT);
        let rest: Vec<Path> =
            paths.iter().enumerate().filter(|(i, _)| *i != v).map(|(_, p)| p.clone()).collect();
        let expect = Signature::from_paths(M, rest.iter());
        prop_assert_eq!(sig, expect);
    }

    #[test]
    fn decompose_covers_each_node_once(paths in arb_paths(), limit in 16usize..300) {
        let sig = Signature::from_paths(M, paths.iter());
        let partials = decompose(&sig, HEIGHT, limit);
        let coded: usize = partials.iter().map(|p| p.nodes.len()).sum();
        prop_assert_eq!(coded, sig.node_count());
        let mut seen = HashSet::new();
        for p in &partials {
            let enc = encode_partial(p);
            prop_assert!(enc.len() <= limit, "partial {} bytes > {limit}", enc.len());
            let dec = decode_partial(&enc).expect("roundtrip");
            prop_assert_eq!(dec.root_sid, p.root_sid);
            for (sid, _) in &p.nodes {
                prop_assert!(seen.insert(*sid), "node {sid} coded twice");
            }
        }
        prop_assert_eq!(reassemble(M, &partials), sig);
    }

    #[test]
    fn cursor_agrees_with_signature(paths in arb_paths(), page in 24usize..200) {
        let sig = Signature::from_paths(M, paths.iter());
        let stats = IoStats::new_shared();
        let sig_pager = Pager::new(page, IoCategory::SignaturePage, stats.clone());
        let dir_pager = Pager::new(4096, IoCategory::BptreePage, stats);
        let mut store = SignatureStore::new(sig_pager, dir_pager, M, HEIGHT);
        store.write_signature(1, &sig);
        prop_assert_eq!(store.load_full(1), sig.clone());
        let mut cursor = store.cursor(1);
        for p in all_tuple_paths() {
            prop_assert_eq!(cursor.contains(&p), sig.contains(&p), "path {}", p);
        }
        for a in 1..=4u16 {
            for b in 1..=4u16 {
                let p = Path(vec![a, b]);
                prop_assert_eq!(cursor.contains(&p), sig.contains(&p), "node {}", p);
            }
        }
    }
}

/// Random boxes and contained points for lower-bound checking.
fn arb_box_and_points() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<Vec<f64>>)> {
    (
        prop::collection::vec(0.0f64..1.0, 3),
        prop::collection::vec(0.0f64..1.0, 3),
        prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..20),
    )
        .prop_map(|(a, b, fracs)| {
            let min: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.min(*y)).collect();
            let max: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x.max(*y)).collect();
            let points = fracs
                .into_iter()
                .map(|f| {
                    (0..3).map(|d| min[d] + (max[d] - min[d]) * f[d]).collect::<Vec<f64>>()
                })
                .collect();
            (min, max, points)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ranking_lower_bounds_never_exceed_contained_scores(
        (min, max, points) in arb_box_and_points(),
        weights in prop::collection::vec(-2.0f64..2.0, 3),
        target in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        let mbr = Mbr { min, max };
        let abs_weights: Vec<f64> = weights.iter().map(|w| w.abs()).collect();
        let fns: Vec<Box<dyn RankingFunction>> = vec![
            Box::new(LinearFn::new(weights.clone())),
            Box::new(WeightedDistanceFn::new(target.clone(), abs_weights)),
            Box::new(MinCoordSum::all(3)),
            Box::new(MinCoordSum::new(vec![1])),
        ];
        for f in &fns {
            let lb = f.lower_bound(&mbr);
            for p in &points {
                prop_assert!(
                    f.score(p) >= lb - 1e-9,
                    "score {} < bound {lb}",
                    f.score(p)
                );
            }
        }
    }
}
