//! Little-endian read/write helpers used by every on-page node layout.
//!
//! All multi-byte values stored on pages in this workspace use little-endian
//! encoding. These helpers panic on out-of-bounds offsets, which indicates a
//! node-layout bug rather than a recoverable condition.

/// Reads a `u16` at `offset`.
#[inline]
pub fn read_u16(buf: &[u8], offset: usize) -> u16 {
    let mut raw = [0u8; 2];
    raw.copy_from_slice(&buf[offset..offset + 2]);
    u16::from_le_bytes(raw)
}

/// Writes a `u16` at `offset`.
#[inline]
pub fn write_u16(buf: &mut [u8], offset: usize, value: u16) {
    buf[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
}

/// Reads a `u32` at `offset`.
#[inline]
pub fn read_u32(buf: &[u8], offset: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&buf[offset..offset + 4]);
    u32::from_le_bytes(raw)
}

/// Writes a `u32` at `offset`.
#[inline]
pub fn write_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

/// Reads a `u64` at `offset`.
#[inline]
pub fn read_u64(buf: &[u8], offset: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[offset..offset + 8]);
    u64::from_le_bytes(raw)
}

/// Writes a `u64` at `offset`.
#[inline]
pub fn write_u64(buf: &mut [u8], offset: usize, value: u64) {
    buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

/// Reads an `f64` at `offset`.
#[inline]
pub fn read_f64(buf: &[u8], offset: usize) -> f64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[offset..offset + 8]);
    f64::from_le_bytes(raw)
}

/// Writes an `f64` at `offset`.
#[inline]
pub fn write_f64(buf: &mut [u8], offset: usize, value: f64) {
    buf[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = [0u8; 32];
        write_u16(&mut buf, 0, 0xBEEF);
        write_u32(&mut buf, 2, 0xDEAD_BEEF);
        write_u64(&mut buf, 6, 0x0123_4567_89AB_CDEF);
        write_f64(&mut buf, 14, -1234.5678);
        assert_eq!(read_u16(&buf, 0), 0xBEEF);
        assert_eq!(read_u32(&buf, 2), 0xDEAD_BEEF);
        assert_eq!(read_u64(&buf, 6), 0x0123_4567_89AB_CDEF);
        assert_eq!(read_f64(&buf, 14), -1234.5678);
    }

    #[test]
    fn nan_and_infinities_roundtrip() {
        let mut buf = [0u8; 8];
        write_f64(&mut buf, 0, f64::INFINITY);
        assert_eq!(read_f64(&buf, 0), f64::INFINITY);
        write_f64(&mut buf, 0, f64::NEG_INFINITY);
        assert_eq!(read_f64(&buf, 0), f64::NEG_INFINITY);
        write_f64(&mut buf, 0, f64::NAN);
        assert!(read_f64(&buf, 0).is_nan());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let buf = [0u8; 4];
        let _ = read_u64(&buf, 0);
    }
}
