//! Write-ahead log: typed, CRC32-framed records with fsync batching.
//!
//! Durability in this workspace follows the classic WAL discipline: every
//! maintenance mutation appends a typed redo record *before* the in-memory
//! pages change, and a transaction is acknowledged as durable only once its
//! [`WalRecord::Commit`] frame has been fsynced. The log is the sole
//! authority on what survived a crash — recovery replays committed
//! transactions on top of the last checkpoint image and drops everything
//! else (see `pcube-core`'s `durable` module and `DESIGN.md` §10).
//!
//! The [`Wal`] models a real log file faithfully enough for crash testing:
//!
//! * appends land in an **unsynced tail** that a crash wipes out entirely;
//! * [`Wal::sync`] moves the tail to the durable prefix (one "fsync");
//!   [`Wal::sync_torn`] models a crash *mid-fsync*, persisting only a byte
//!   prefix of the tail — the torn frame is detected and dropped on replay;
//! * [`Wal::replay`] scans durable bytes frame by frame, verifying each
//!   frame's CRC32, and stops at the first torn or corrupt frame, reporting
//!   how many trailing bytes it discarded.
//!
//! Frame layout (little-endian): `[len u32][crc32 u32][payload]` where the
//! payload is `[lsn u64][kind u8][body]` and the CRC covers the payload.

use crate::crc::crc32;
use crate::bytes::{read_u32, read_u64, write_u32, write_u64};
use crate::fault::FaultPlan;
use crate::stats::SharedStats;
use std::fmt;
use std::time::Duration;

/// Maximum fsync attempts before [`Wal::sync`] gives up with a typed error.
const MAX_SYNC_ATTEMPTS: u32 = 6;

/// Backoff before the first fsync retry, in microseconds; doubles per retry
/// (20, 40, 80, 160, 320 µs — bounded at well under a millisecond total).
const SYNC_BACKOFF_BASE_US: u64 = 20;

/// The WAL could not be made durable: every fsync attempt failed, retries
/// and backoff exhausted. The unsynced tail is still pending — nothing was
/// lost, nothing was acknowledged — so the caller can surface a typed error
/// to its clients and try again later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSyncError {
    /// Fsync attempts made (initial try + retries).
    pub attempts: u32,
    /// Total microseconds spent in exponential backoff between attempts.
    pub backoff_us: u64,
}

impl fmt::Display for WalSyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wal fsync failed after {} attempts ({} us of backoff)",
            self.attempts, self.backoff_us
        )
    }
}

impl std::error::Error for WalSyncError {}

/// Log sequence number: the position of a record in the WAL, monotonically
/// increasing from 1 and never reused (truncation keeps the counter).
pub type Lsn = u64;

/// Which paged store a [`WalRecord::PageWrite`] witness refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// The shared R-tree partition's node pages.
    Rtree,
    /// Partial-signature pages.
    Signature,
    /// The signature directory B+-tree's pages.
    Directory,
}

impl StoreKind {
    /// Wire tag.
    fn code(self) -> u8 {
        match self {
            StoreKind::Rtree => 0,
            StoreKind::Signature => 1,
            StoreKind::Directory => 2,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(StoreKind::Rtree),
            1 => Some(StoreKind::Signature),
            2 => Some(StoreKind::Directory),
            _ => None,
        }
    }

    /// Human-readable store name (for reports and errors).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Rtree => "rtree",
            StoreKind::Signature => "signature",
            StoreKind::Directory => "directory",
        }
    }
}

/// The direction of a logged R-tree structural mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeOp {
    /// A tuple insertion (splits re-derived deterministically on replay).
    Insert,
    /// A tuple deletion.
    Delete,
}

/// One typed WAL record.
///
/// Redo is *logical*: a committed transaction's [`WalRecord::TreeSplit`]
/// records are re-executed against the recovered checkpoint state, which
/// deterministically reproduces every page. The remaining record kinds are
/// witnesses and markers that recovery verifies or uses as cut points.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// The logical redo record of one R-tree structural mutation: transaction
    /// `txn` inserted (or deleted) tuple `tid`. Appended **before** any page
    /// of the mutation is touched. Replay re-executes the operation; node
    /// splits and signature maintenance are re-derived deterministically.
    TreeSplit {
        /// Owning transaction.
        txn: u64,
        /// Insert or delete.
        op: TreeOp,
        /// The tuple id (for inserts: the id the replay must reproduce).
        tid: u64,
        /// Dictionary-coded boolean values (empty for deletes).
        codes: Vec<u32>,
        /// Preference coordinates of the tuple.
        coords: Vec<f64>,
    },
    /// Per-cell signature maintenance summary: transaction `txn` set
    /// `sets` bits and cleared `clears` bits of cell `cell`'s signature.
    /// Recovery uses these to cross-check replay coverage.
    SigUpdate {
        /// Owning transaction.
        txn: u64,
        /// The affected cell code.
        cell: u32,
        /// Signature bits set (paths added).
        sets: u32,
        /// Signature bits cleared (paths removed).
        clears: u32,
    },
    /// Physical witness of one page the transaction dirtied: after replaying
    /// `txn`, the page `pid` of `store` must hash to exactly `crc`. Divergence
    /// means replay did not reproduce the pre-crash state bit-for-bit and
    /// recovery fails loudly instead of serving approximately-right answers.
    PageWrite {
        /// Owning transaction.
        txn: u64,
        /// Which paged store the page belongs to.
        store: StoreKind,
        /// The page id within that store.
        pid: u32,
        /// CRC32 of the full page contents after the transaction.
        crc: u32,
    },
    /// Seals transaction `txn`. Recovery replays only sealed transactions;
    /// records of an unsealed transaction at the log tail are dropped.
    Commit {
        /// The sealed transaction.
        txn: u64,
    },
    /// Checkpoint marker: the checkpoint image now covers the first `txns`
    /// transactions, published as catalog epoch `epoch`. Replay starts after
    /// the image's transaction watermark, so this record is informational
    /// (and survives a crash between image install and log truncation).
    Checkpoint {
        /// The catalog epoch the checkpoint captured.
        epoch: u64,
        /// Committed transactions contained in the image.
        txns: u64,
    },
    /// The logical redo record of online repair: transaction `txn` rebuilt
    /// cell `cell`'s signature from the base table (quarantined pages were
    /// freed, fresh ones written). Replay re-derives the identical rebuild
    /// deterministically — the base table at that point in the log is
    /// exactly what the original rebuild read.
    SigRebuild {
        /// Owning transaction.
        txn: u64,
        /// The rebuilt cell's registry code.
        cell: u32,
    },
}

const KIND_TREE_SPLIT: u8 = 1;
const KIND_SIG_UPDATE: u8 = 2;
const KIND_PAGE_WRITE: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_CHECKPOINT: u8 = 5;
const KIND_SIG_REBUILD: u8 = 6;

/// Upper bound on one frame's payload; a length field beyond this is treated
/// as corruption rather than an allocation request.
const MAX_PAYLOAD: usize = 1 << 24;

impl WalRecord {
    /// The transaction this record belongs to (`None` for checkpoints).
    pub fn txn(&self) -> Option<u64> {
        match self {
            WalRecord::TreeSplit { txn, .. }
            | WalRecord::SigUpdate { txn, .. }
            | WalRecord::PageWrite { txn, .. }
            | WalRecord::Commit { txn }
            | WalRecord::SigRebuild { txn, .. } => Some(*txn),
            WalRecord::Checkpoint { .. } => None,
        }
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        let mut put_u32 = |out: &mut Vec<u8>, v: u32| {
            write_u32(&mut b4, 0, v);
            out.extend_from_slice(&b4);
        };
        let mut put_u64 = |out: &mut Vec<u8>, v: u64| {
            write_u64(&mut b8, 0, v);
            out.extend_from_slice(&b8);
        };
        match self {
            WalRecord::TreeSplit { txn, op, tid, codes, coords } => {
                put_u64(out, *txn);
                out.push(match op {
                    TreeOp::Insert => 0,
                    TreeOp::Delete => 1,
                });
                put_u64(out, *tid);
                put_u32(out, codes.len() as u32);
                for &c in codes {
                    put_u32(out, c);
                }
                put_u32(out, coords.len() as u32);
                for &x in coords {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            WalRecord::SigUpdate { txn, cell, sets, clears } => {
                put_u64(out, *txn);
                put_u32(out, *cell);
                put_u32(out, *sets);
                put_u32(out, *clears);
            }
            WalRecord::PageWrite { txn, store, pid, crc } => {
                put_u64(out, *txn);
                out.push(store.code());
                put_u32(out, *pid);
                put_u32(out, *crc);
            }
            WalRecord::Commit { txn } => put_u64(out, *txn),
            WalRecord::Checkpoint { epoch, txns } => {
                put_u64(out, *epoch);
                put_u64(out, *txns);
            }
            WalRecord::SigRebuild { txn, cell } => {
                put_u64(out, *txn);
                put_u32(out, *cell);
            }
        }
    }

    fn kind(&self) -> u8 {
        match self {
            WalRecord::TreeSplit { .. } => KIND_TREE_SPLIT,
            WalRecord::SigUpdate { .. } => KIND_SIG_UPDATE,
            WalRecord::PageWrite { .. } => KIND_PAGE_WRITE,
            WalRecord::Commit { .. } => KIND_COMMIT,
            WalRecord::Checkpoint { .. } => KIND_CHECKPOINT,
            WalRecord::SigRebuild { .. } => KIND_SIG_REBUILD,
        }
    }

    fn decode(kind: u8, body: &[u8]) -> Option<WalRecord> {
        let mut pos = 0usize;
        let u32_at = |pos: &mut usize| -> Option<u32> {
            let end = pos.checked_add(4)?;
            if end > body.len() {
                return None;
            }
            let v = read_u32(body, *pos);
            *pos = end;
            Some(v)
        };
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let end = pos.checked_add(8)?;
            if end > body.len() {
                return None;
            }
            let v = read_u64(body, *pos);
            *pos = end;
            Some(v)
        };
        let u8_at = |pos: &mut usize| -> Option<u8> {
            let v = *body.get(*pos)?;
            *pos += 1;
            Some(v)
        };
        let rec = match kind {
            KIND_TREE_SPLIT => {
                let txn = u64_at(&mut pos)?;
                let op = match u8_at(&mut pos)? {
                    0 => TreeOp::Insert,
                    1 => TreeOp::Delete,
                    _ => return None,
                };
                let tid = u64_at(&mut pos)?;
                let n_codes = u32_at(&mut pos)? as usize;
                if n_codes.checked_mul(4)? > body.len() - pos {
                    return None;
                }
                let mut codes = Vec::with_capacity(n_codes);
                for _ in 0..n_codes {
                    codes.push(u32_at(&mut pos)?);
                }
                let n_coords = u32_at(&mut pos)? as usize;
                if n_coords.checked_mul(8)? > body.len() - pos {
                    return None;
                }
                let mut coords = Vec::with_capacity(n_coords);
                for _ in 0..n_coords {
                    let end = pos + 8;
                    let raw: [u8; 8] = body.get(pos..end)?.try_into().ok()?;
                    coords.push(f64::from_le_bytes(raw));
                    pos = end;
                }
                WalRecord::TreeSplit { txn, op, tid, codes, coords }
            }
            KIND_SIG_UPDATE => WalRecord::SigUpdate {
                txn: u64_at(&mut pos)?,
                cell: u32_at(&mut pos)?,
                sets: u32_at(&mut pos)?,
                clears: u32_at(&mut pos)?,
            },
            KIND_PAGE_WRITE => WalRecord::PageWrite {
                txn: u64_at(&mut pos)?,
                store: StoreKind::from_code(u8_at(&mut pos)?)?,
                pid: u32_at(&mut pos)?,
                crc: u32_at(&mut pos)?,
            },
            KIND_COMMIT => WalRecord::Commit { txn: u64_at(&mut pos)? },
            KIND_CHECKPOINT => WalRecord::Checkpoint {
                epoch: u64_at(&mut pos)?,
                txns: u64_at(&mut pos)?,
            },
            KIND_SIG_REBUILD => WalRecord::SigRebuild {
                txn: u64_at(&mut pos)?,
                cell: u32_at(&mut pos)?,
            },
            _ => return None,
        };
        if pos != body.len() {
            return None; // trailing garbage inside the frame
        }
        Some(rec)
    }
}

/// Running counters of WAL activity (group-commit effectiveness metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended (durable or not).
    pub appends: u64,
    /// Completed syncs ("fsyncs").
    pub syncs: u64,
    /// Records made durable by completed syncs.
    pub records_synced: u64,
    /// Bytes made durable by completed syncs.
    pub bytes_synced: u64,
}

/// What a replay scan of durable WAL bytes produced.
#[derive(Debug, Clone, PartialEq)]
pub struct WalReplay {
    /// Every intact record, in log order, with its LSN.
    pub records: Vec<(Lsn, WalRecord)>,
    /// Bytes discarded at the tail: a frame cut short by a torn fsync or a
    /// frame whose CRC32 no longer matches. Everything after the first bad
    /// frame is untrusted and dropped.
    pub torn_tail_bytes: u64,
    /// Total bytes scanned (intact prefix + dropped tail).
    pub scanned_bytes: u64,
}

/// An append-only write-ahead log with an explicit durability boundary.
///
/// See the module docs for the crash model. The in-memory representation is
/// two buffers: `durable` (what a crash preserves) and `tail` (appended but
/// not yet synced — a crash loses it).
#[derive(Debug, Clone, Default)]
pub struct Wal {
    durable: Vec<u8>,
    tail: Vec<u8>,
    tail_records: u64,
    next_lsn: Lsn,
    stats: WalStats,
    /// Injected-fault schedule for the durability path (transient fsync
    /// failures). `None` = healthy disk.
    fault: Option<FaultPlan>,
    /// Ledger that absorbed retries are reported to (`wal_retries`,
    /// `wal_backoff_us`), so harnesses can assert they are bounded.
    io_stats: Option<SharedStats>,
}

impl Wal {
    /// An empty log; the first record gets LSN 1.
    pub fn new() -> Self {
        Wal::from_durable(Vec::new(), 1)
    }

    /// Re-opens a log over bytes recovered from durable storage. `next_lsn`
    /// must exceed every LSN in `durable` (recovery computes it from the
    /// replay scan).
    pub fn from_durable(durable: Vec<u8>, next_lsn: Lsn) -> Self {
        Wal {
            durable,
            tail: Vec::new(),
            tail_records: 0,
            next_lsn,
            stats: WalStats::default(),
            fault: None,
            io_stats: None,
        }
    }

    /// Installs a deterministic fault schedule on the durability path:
    /// [`Wal::sync`] consults it per fsync attempt and retries transient
    /// failures with exponential backoff before surfacing [`WalSyncError`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes the fault plan, returning it (with its injection counts).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// Attaches the shared I/O ledger that absorbed fsync retries and their
    /// backoff are reported to.
    pub fn attach_stats(&mut self, stats: SharedStats) {
        self.io_stats = Some(stats);
    }

    /// Appends one framed record to the unsynced tail, returning its LSN.
    /// The record is **not durable** until the next [`Wal::sync`].
    pub fn append(&mut self, rec: &WalRecord) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut payload = Vec::with_capacity(32);
        let mut b8 = [0u8; 8];
        write_u64(&mut b8, 0, lsn);
        payload.extend_from_slice(&b8);
        payload.push(rec.kind());
        rec.encode_body(&mut payload);
        let mut b4 = [0u8; 4];
        write_u32(&mut b4, 0, payload.len() as u32);
        self.tail.extend_from_slice(&b4);
        write_u32(&mut b4, 0, crc32(&payload));
        self.tail.extend_from_slice(&b4);
        self.tail.extend_from_slice(&payload);
        self.tail_records += 1;
        self.stats.appends += 1;
        lsn
    }

    /// Records appended since the last sync.
    pub fn pending_records(&self) -> u64 {
        self.tail_records
    }

    /// Bytes appended since the last sync.
    pub fn pending_bytes(&self) -> usize {
        self.tail.len()
    }

    /// Makes the tail durable (models one fsync). Returns the bytes synced.
    ///
    /// With a fault plan armed ([`Wal::set_fault_plan`]), each fsync attempt
    /// may fail transiently; failures are retried up to [`MAX_SYNC_ATTEMPTS`]
    /// times with exponential backoff (each retry recorded on the attached
    /// [`SharedStats`] ledger). When the budget is exhausted the tail stays
    /// **pending** — not durable, but not lost either — and the caller gets a
    /// typed [`WalSyncError`] instead of a panic or a silent half-sync.
    pub fn sync(&mut self) -> Result<usize, WalSyncError> {
        let mut attempts = 1u32;
        let mut backoff_total = 0u64;
        while self.fault.as_mut().is_some_and(FaultPlan::fsync_attempt_fails) {
            if attempts >= MAX_SYNC_ATTEMPTS {
                return Err(WalSyncError { attempts, backoff_us: backoff_total });
            }
            let backoff = SYNC_BACKOFF_BASE_US << (attempts - 1);
            if let Some(stats) = &self.io_stats {
                stats.record_wal_retry(backoff);
            }
            backoff_total += backoff;
            std::thread::sleep(Duration::from_micros(backoff));
            attempts += 1;
        }
        let n = self.tail.len();
        self.durable.append(&mut self.tail);
        self.stats.syncs += 1;
        self.stats.records_synced += self.tail_records;
        self.stats.bytes_synced += n as u64;
        self.tail_records = 0;
        Ok(n)
    }

    /// Models a crash **mid-fsync**: only the first `keep` bytes of the tail
    /// reach durable storage; the rest of the tail is lost. The durable log
    /// now likely ends in a torn frame, which [`Wal::replay`] detects and
    /// drops. The instance should be considered dead after this call.
    pub fn sync_torn(&mut self, keep: usize) {
        let keep = keep.min(self.tail.len());
        self.durable.extend_from_slice(&self.tail[..keep]);
        self.tail.clear();
        self.tail_records = 0;
    }

    /// The durable prefix — exactly what survives a crash right now.
    pub fn durable_bytes(&self) -> &[u8] {
        &self.durable
    }

    /// Length of the durable prefix in bytes.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Drops every durable frame with `lsn < cutoff` (checkpoint
    /// truncation). The tail is untouched. Returns the bytes reclaimed.
    ///
    /// Truncation is modeled as atomic, the way a rename-over swap of a
    /// segment file is: a crash during checkpointing either sees the whole
    /// old log or the truncated one, never a half-truncated hybrid.
    pub fn truncate_durable_before(&mut self, cutoff: Lsn) -> usize {
        let mut pos = 0usize;
        while pos < self.durable.len() {
            let Some((lsn, _, frame_len)) = peek_frame(&self.durable, pos) else {
                break; // torn tail: keep it for replay to report
            };
            if lsn >= cutoff {
                break;
            }
            pos += frame_len;
        }
        self.durable.drain(..pos);
        pos
    }

    /// Drops every durable frame with `lsn >= cutoff` and everything after
    /// it (recovery discarding an uncommitted suffix: appends are serial, so
    /// the records of unsealed transactions always trail the log). The tail
    /// is untouched. Returns the bytes dropped.
    pub fn truncate_durable_from(&mut self, cutoff: Lsn) -> usize {
        let mut pos = 0usize;
        while pos < self.durable.len() {
            let Some((lsn, _, frame_len)) = peek_frame(&self.durable, pos) else {
                break; // undecodable from here on: untrusted, drop it too
            };
            if lsn >= cutoff {
                break;
            }
            pos += frame_len;
        }
        let dropped = self.durable.len() - pos;
        self.durable.truncate(pos);
        dropped
    }

    /// Scans durable WAL bytes, yielding every intact record in order and
    /// reporting the torn/corrupt tail it dropped. Never panics on hostile
    /// input.
    pub fn replay(bytes: &[u8]) -> WalReplay {
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            match peek_frame(bytes, pos) {
                Some((lsn, rec, frame_len)) => {
                    records.push((lsn, rec));
                    pos += frame_len;
                }
                None => break,
            }
        }
        WalReplay {
            records,
            torn_tail_bytes: (bytes.len() - pos) as u64,
            scanned_bytes: bytes.len() as u64,
        }
    }
}

/// Decodes the frame at `pos`: `(lsn, record, total frame length)`. `None`
/// for a truncated, corrupt, or undecodable frame.
fn peek_frame(bytes: &[u8], pos: usize) -> Option<(Lsn, WalRecord, usize)> {
    let header_end = pos.checked_add(8)?;
    if header_end > bytes.len() {
        return None;
    }
    let len = read_u32(bytes, pos) as usize;
    if !(9..=MAX_PAYLOAD).contains(&len) {
        return None;
    }
    let stored_crc = read_u32(bytes, pos + 4);
    let payload_end = header_end.checked_add(len)?;
    if payload_end > bytes.len() {
        return None;
    }
    let payload = &bytes[header_end..payload_end];
    if crc32(payload) != stored_crc {
        return None;
    }
    let lsn = read_u64(payload, 0);
    let rec = WalRecord::decode(payload[8], &payload[9..])?;
    Some((lsn, rec, 8 + len))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::fault::WalDamage;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::TreeSplit {
                txn: 1,
                op: TreeOp::Insert,
                tid: 42,
                codes: vec![3, 0, 7],
                coords: vec![0.25, 0.5],
            },
            WalRecord::SigUpdate { txn: 1, cell: 9, sets: 4, clears: 0 },
            WalRecord::PageWrite { txn: 1, store: StoreKind::Signature, pid: 5, crc: 0xDEAD_BEEF },
            WalRecord::Commit { txn: 1 },
            WalRecord::TreeSplit {
                txn: 2,
                op: TreeOp::Delete,
                tid: 17,
                codes: vec![],
                coords: vec![0.1, 0.9],
            },
            WalRecord::Commit { txn: 2 },
            WalRecord::Checkpoint { epoch: 3, txns: 2 },
        ]
    }

    #[test]
    fn append_sync_replay_roundtrips_every_kind() {
        let mut wal = Wal::new();
        let recs = sample_records();
        for r in &recs {
            wal.append(r);
        }
        assert_eq!(wal.durable_len(), 0, "nothing durable before sync");
        assert_eq!(wal.pending_records(), recs.len() as u64);
        wal.sync().unwrap();
        assert_eq!(wal.pending_records(), 0);
        let replay = Wal::replay(wal.durable_bytes());
        assert_eq!(replay.torn_tail_bytes, 0);
        let got: Vec<WalRecord> = replay.records.iter().map(|(_, r)| r.clone()).collect();
        assert_eq!(got, recs);
        let lsns: Vec<Lsn> = replay.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (1..=recs.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn unsynced_tail_is_lost() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync().unwrap();
        wal.append(&WalRecord::Commit { txn: 2 });
        // No sync: a crash preserves only txn 1.
        let replay = Wal::replay(wal.durable_bytes());
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].1, WalRecord::Commit { txn: 1 });
    }

    #[test]
    fn torn_sync_drops_the_partial_frame() {
        let mut wal = Wal::new();
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync().unwrap();
        let durable_before = wal.durable_len();
        wal.append(&WalRecord::SigUpdate { txn: 2, cell: 1, sets: 1, clears: 0 });
        let torn_at = wal.pending_bytes() / 2;
        wal.sync_torn(torn_at);
        let replay = Wal::replay(wal.durable_bytes());
        assert_eq!(replay.records.len(), 1, "the torn frame must not replay");
        assert_eq!(replay.torn_tail_bytes as usize, wal.durable_len() - durable_before);
    }

    #[test]
    fn a_flipped_bit_stops_replay_at_that_frame() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.sync().unwrap();
        let mut bytes = wal.durable_bytes().to_vec();
        // Flip a bit somewhere in the middle of the log.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        let replay = Wal::replay(&bytes);
        assert!(replay.records.len() < sample_records().len());
        assert!(replay.torn_tail_bytes > 0);
        // The intact prefix still decodes to a prefix of the originals.
        for ((_, got), want) in replay.records.iter().zip(sample_records()) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn truncate_drops_only_frames_before_the_cutoff() {
        let mut wal = Wal::new();
        for txn in 1..=5u64 {
            wal.append(&WalRecord::Commit { txn });
        }
        wal.sync().unwrap();
        let reclaimed = wal.truncate_durable_before(4);
        assert!(reclaimed > 0);
        let replay = Wal::replay(wal.durable_bytes());
        let txns: Vec<u64> = replay.records.iter().filter_map(|(_, r)| r.txn()).collect();
        assert_eq!(txns, vec![4, 5]);
        // LSNs keep counting across truncation.
        assert_eq!(wal.next_lsn(), 6);
    }

    #[test]
    fn truncate_from_drops_the_suffix_at_the_cutoff() {
        let mut wal = Wal::new();
        for txn in 1..=5u64 {
            wal.append(&WalRecord::Commit { txn });
        }
        wal.sync().unwrap();
        let dropped = wal.truncate_durable_from(4);
        assert!(dropped > 0);
        let replay = Wal::replay(wal.durable_bytes());
        let txns: Vec<u64> = replay.records.iter().filter_map(|(_, r)| r.txn()).collect();
        assert_eq!(txns, vec![1, 2, 3]);
        assert_eq!(replay.torn_tail_bytes, 0);
        // A cutoff beyond the log is a no-op.
        assert_eq!(wal.truncate_durable_from(100), 0);
        assert_eq!(wal.next_lsn(), 6, "LSNs keep counting across truncation");
    }

    #[test]
    fn replay_survives_garbage() {
        for bytes in [&[][..], &[0xFF; 7][..], &[0u8; 64][..], &[0xAB; 129][..]] {
            let replay = Wal::replay(bytes);
            assert!(replay.records.is_empty());
            assert_eq!(replay.torn_tail_bytes as usize, bytes.len());
        }
    }

    #[test]
    fn transient_fsync_failures_are_retried_with_bounded_backoff() {
        let stats = crate::stats::IoStats::new_shared();
        let mut wal = Wal::new();
        wal.attach_stats(stats.clone());
        // ~40% per-attempt failure rate: statistically certain to hit some
        // retries over 50 syncs, statistically certain to never exhaust the
        // 6-attempt budget on every single one.
        wal.set_fault_plan(FaultPlan::seeded(77).with_fsync_failures(0.4));
        let mut ok = 0u32;
        for txn in 1..=50u64 {
            wal.append(&WalRecord::Commit { txn });
            if wal.sync().is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 0, "some syncs must eventually succeed");
        assert!(stats.wal_retries() > 0, "retries must be reported, not silent");
        assert!(stats.wal_backoff_us() > 0);
        // Backoff is exponential from the base and capped by the attempt
        // budget per sync.
        let max_per_sync: u64 = (0..MAX_SYNC_ATTEMPTS - 1).map(|i| SYNC_BACKOFF_BASE_US << i).sum();
        assert!(stats.wal_backoff_us() <= max_per_sync * 50);
        let counts = wal.take_fault_plan().unwrap().counts();
        assert_eq!(counts.fsync_failures, stats.wal_retries() + (50 - ok as u64), "every failed attempt is either retried or ends a failed sync");
    }

    #[test]
    fn exhausted_fsync_retries_keep_the_tail_pending() {
        let mut wal = Wal::new();
        wal.set_fault_plan(FaultPlan::seeded(5).with_fsync_failures(1.0));
        wal.append(&WalRecord::Commit { txn: 1 });
        let err = wal.sync().unwrap_err();
        assert_eq!(err.attempts, 6);
        assert!(err.backoff_us > 0);
        assert_eq!(wal.durable_len(), 0, "nothing became durable");
        assert_eq!(wal.pending_records(), 1, "the tail is still pending, not lost");
        // Healing the disk lets the same tail sync.
        wal.take_fault_plan();
        assert!(wal.sync().is_ok());
        assert_eq!(Wal::replay(wal.durable_bytes()).records.len(), 1);
    }

    #[test]
    fn wal_damage_tears_or_rots_deterministically_and_replay_survives() {
        let mut wal = Wal::new();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.sync().unwrap();
        let image = wal.durable_bytes().to_vec();
        let n = sample_records().len();
        for seed in 0..50u64 {
            let mut torn_plan = FaultPlan::seeded(seed).with_wal_torn(1.0);
            let mut rot_plan = FaultPlan::seeded(seed).with_wal_bit_rot(1.0);
            let mut a = image.clone();
            let mut b = image.clone();
            let da = torn_plan.damage_wal_image(&mut a).unwrap();
            let db = rot_plan.damage_wal_image(&mut b).unwrap();
            assert!(matches!(da, WalDamage::Torn { .. }));
            assert!(matches!(db, WalDamage::BitRot { .. }));
            // Determinism: the same seed reproduces the same damage.
            let mut again = FaultPlan::seeded(seed).with_wal_torn(1.0);
            assert_eq!(again.next_wal_damage(image.len()), Some(da));
            for damaged in [a, b] {
                let replay = Wal::replay(&damaged);
                assert!(replay.records.len() <= n);
                // The surviving prefix decodes to a prefix of the originals.
                for ((_, got), want) in replay.records.iter().zip(sample_records()) {
                    assert_eq!(*got, want);
                }
            }
        }
        let counts = {
            let mut p = FaultPlan::seeded(9).with_wal_torn(1.0);
            let mut img = image.clone();
            p.damage_wal_image(&mut img);
            p.counts()
        };
        assert_eq!(counts.wal_torn, 1);
        assert_eq!(counts.total(), 1);
    }

    #[test]
    fn group_commit_batches_syncs() {
        let mut wal = Wal::new();
        for txn in 1..=8u64 {
            wal.append(&WalRecord::Commit { txn });
            if txn % 4 == 0 {
                wal.sync().unwrap();
            }
        }
        let stats = wal.stats();
        assert_eq!(stats.appends, 8);
        assert_eq!(stats.syncs, 2);
        assert_eq!(stats.records_synced, 8);
        assert_eq!(Wal::replay(wal.durable_bytes()).records.len(), 8);
    }
}
