//! Typed errors for the storage substrate, shared by every index crate.

use crate::page::PageId;
use std::fmt;

/// The page operation that was in flight when an error occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOp {
    /// A counted page read.
    Read,
    /// A full-page write.
    Write,
    /// An in-place read-modify-write.
    Update,
    /// Releasing a page back to the allocator.
    Free,
}

impl fmt::Display for PageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PageOp::Read => "read",
            PageOp::Write => "write",
            PageOp::Update => "update",
            PageOp::Free => "free",
        })
    }
}

/// Errors surfaced by the fallible (`try_*`) storage APIs.
///
/// The infallible wrappers (`Pager::read`, `Pager::write`, ...) panic with
/// this error's `Display` text, so both paths report identical diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The pager cannot allocate another page: either the 32-bit page-id
    /// space is exhausted or an injected allocation budget ran out.
    OutOfPages,
    /// The operation targeted a page that is not live (never allocated, or
    /// already freed).
    DeadPage {
        /// The page the operation targeted.
        pid: PageId,
        /// The operation that failed.
        op: PageOp,
    },
    /// A page was freed twice.
    DoubleFree {
        /// The doubly-freed page.
        pid: PageId,
    },
    /// A write did not cover exactly one page.
    ShortWrite {
        /// The page the write targeted.
        pid: PageId,
        /// Length of the data supplied.
        len: usize,
        /// The pager's fixed page size.
        page_size: usize,
    },
    /// A page's stored checksum did not match its contents.
    Corrupt {
        /// The corrupt page.
        pid: PageId,
        /// The checksum recorded when the page was last written.
        expected: u32,
        /// The checksum computed from the bytes read.
        actual: u32,
    },
    /// An injected (or, in a real backend, actual) I/O failure.
    Io {
        /// The page the operation targeted.
        pid: PageId,
        /// The operation that failed.
        op: PageOp,
    },
    /// Page bytes decoded to a structurally impossible value (bad node
    /// count, out-of-range record offset, undecodable payload, ...).
    Malformed {
        /// The page holding the malformed bytes.
        pid: PageId,
        /// What was wrong, as a static description.
        what: &'static str,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::OutOfPages => f.write_str("pager full: no page can be allocated"),
            StorageError::DeadPage { pid, op } => write!(f, "{op} of dead page {pid}"),
            StorageError::DoubleFree { pid } => write!(f, "double free of {pid}"),
            StorageError::ShortWrite { pid, len, page_size } => write!(
                f,
                "write of {len} bytes to {pid} must cover the whole {page_size}-byte page"
            ),
            StorageError::Corrupt { pid, expected, actual } => write!(
                f,
                "checksum mismatch on {pid}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            StorageError::Io { pid, op } => write!(f, "i/o error during {op} of {pid}"),
            StorageError::Malformed { pid, what } => write!(f, "malformed page {pid}: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Error describing why a serialized pager image could not be rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageError {
    /// Byte offset into the image where the problem was detected.
    pub offset: usize,
    /// Human-readable cause.
    pub cause: String,
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pager image invalid at byte {}: {}", self.offset, self.cause)
    }
}

impl std::error::Error for ImageError {}
