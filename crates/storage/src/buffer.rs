//! A small LRU buffer pool layered over a [`Pager`].
//!
//! The paper's query-time I/O counts assume a cold cache per query (every node
//! visit is a block retrieval). The buffer pool exists for the ablation
//! experiments that ask how much a warm cache changes the picture: reads served
//! from the pool are *not* charged to the ledger, only misses are.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::page::PageId;
use crate::pager::Pager;

/// LRU read cache with hit/miss accounting.
///
/// Only caches reads; writes go straight through to the pager and invalidate
/// any cached copy.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Map page id -> slot in `entries`.
    map: HashMap<PageId, usize>,
    /// Cached pages in arbitrary slot order.
    entries: Vec<(PageId, Box<[u8]>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool that holds up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of read requests served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of read requests that had to touch the pager.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads `pid`, consulting the cache first. A miss charges one counted
    /// read on `pager` and installs the page, evicting the least recently
    /// used entry if the pool is full.
    ///
    /// A failed pager read (dead page, injected fault, checksum mismatch)
    /// is propagated as a typed [`crate::StorageError`] and nothing is
    /// cached, so a later retry re-reads the underlying page. There is
    /// deliberately no infallible wrapper: pool reads sit on query paths,
    /// which must surface storage errors, never panic on them.
    pub fn try_read<'a>(
        &'a mut self,
        pager: &Pager,
        pid: PageId,
    ) -> Result<&'a [u8], crate::StorageError> {
        self.clock += 1;
        if let Some(&slot) = self.map.get(&pid) {
            self.hits += 1;
            self.entries[slot].2 = self.clock;
            return Ok(&self.entries[slot].1);
        }
        self.misses += 1;
        let data: Box<[u8]> = pager.try_read(pid)?.into();
        let slot = if self.entries.len() < self.capacity {
            self.entries.push((pid, data, self.clock));
            self.entries.len() - 1
        } else {
            // Evict the entry with the smallest timestamp.
            let (victim, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .expect("capacity > 0");
            let old = self.entries[victim].0;
            self.map.remove(&old);
            self.entries[victim] = (pid, data, self.clock);
            victim
        };
        self.map.insert(pid, slot);
        Ok(&self.entries[slot].1)
    }

    /// Writes through to the pager and invalidates any cached copy of `pid`.
    pub fn write(&mut self, pager: &mut Pager, pid: PageId, data: &[u8]) {
        if let Some(slot) = self.map.remove(&pid) {
            // Keep slot layout simple: replace with the new contents rather
            // than compacting the vector.
            self.entries[slot] = (pid, data.into(), self.clock);
            self.map.insert(pid, slot);
        }
        pager.write(pid, data);
    }

    /// Drops every cached page (e.g. between queries to model a cold cache).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
    }
}

/// One lock-protected slice of a [`ShardedBufferPool`]: an independent LRU
/// cache identical in policy to [`BufferPool`], but holding `Arc<[u8]>`
/// pages so hits can hand out references without copying or pinning.
#[derive(Debug)]
struct BufferShard {
    capacity: usize,
    map: HashMap<PageId, usize>,
    entries: Vec<(PageId, Arc<[u8]>, u64)>,
    clock: u64,
    /// Pages some reader is currently fetching from the pager *outside* this
    /// shard's lock. A concurrent reader of the same page waits on the
    /// shard's condvar instead of issuing a duplicate pager read
    /// (single-flight misses).
    in_flight: HashSet<PageId>,
}

impl BufferShard {
    fn new(capacity: usize) -> Self {
        BufferShard {
            capacity,
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            clock: 0,
            in_flight: HashSet::new(),
        }
    }

    /// Cache lookup only; `None` on miss.
    fn get(&mut self, pid: PageId) -> Option<Arc<[u8]>> {
        self.clock += 1;
        let &slot = self.map.get(&pid)?;
        self.entries[slot].2 = self.clock;
        Some(self.entries[slot].1.clone())
    }

    /// Installs a page fetched by the caller, evicting the LRU entry when
    /// full.
    fn install(&mut self, pid: PageId, data: Arc<[u8]>) {
        if self.map.contains_key(&pid) {
            return; // already resident; keep the existing copy
        }
        let slot = if self.entries.len() < self.capacity {
            self.entries.push((pid, data, self.clock));
            self.entries.len() - 1
        } else {
            let (victim, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .expect("capacity > 0");
            let old = self.entries[victim].0;
            self.map.remove(&old);
            self.entries[victim] = (pid, data, self.clock);
            victim
        };
        self.map.insert(pid, slot);
    }

    fn invalidate(&mut self, pid: PageId) {
        if let Some(slot) = self.map.remove(&pid) {
            // Swap-remove keeps the vector dense; fix the moved entry's slot.
            self.entries.swap_remove(slot);
            if slot < self.entries.len() {
                let moved = self.entries[slot].0;
                self.map.insert(moved, slot);
            }
        }
    }

    fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
    }
}

/// One shard of a [`ShardedBufferPool`]: the cache state behind a mutex plus
/// a condvar that single-flight waiters park on while another reader fetches
/// the page they want.
#[derive(Debug)]
struct Shard {
    state: Mutex<BufferShard>,
    fetch_done: Condvar,
}

impl Shard {
    /// Locks the shard, recovering from lock poisoning. A shard only caches
    /// immutable copies of pages the pager can always re-serve, so the state
    /// a panicking thread abandoned is still structurally sound — dropping
    /// the cache contents (or serving them) is safe either way, and killing
    /// every later reader over a stale `PoisonError` would not be.
    fn lock(&self) -> std::sync::MutexGuard<'_, BufferShard> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A thread-safe LRU read cache: N independent shards, each behind its own
/// mutex, with lock-free hit/miss accounting.
///
/// Pages hash to a shard by page id, so concurrent readers of different
/// pages almost never contend on the same lock. Each shard runs the same
/// LRU policy as the single-threaded [`BufferPool`]; capacity is divided
/// evenly across shards (so the worst-case resident set is `capacity`
/// pages, not `capacity × shards`).
///
/// Like [`BufferPool`], only misses charge a counted read on the pager;
/// hits are free.
///
/// # Lock hierarchy
///
/// **The shard lock is never held across a pager read.** A miss releases
/// the lock, fetches, then re-locks to install — so N threads missing on N
/// different pages perform their (wall-clock-expensive) pager reads fully
/// in parallel, even when the pages share a shard. Concurrent misses of
/// *one* page stay deduplicated by single-flight: the first reader marks
/// the page in flight and fetches; the rest wait on the shard condvar and
/// take the hit path once the page is installed. Every shard-lock
/// acquisition on the read path is tallied per shard, so tests can bound
/// lock traffic and prove requests spread across shards.
#[derive(Debug)]
pub struct ShardedBufferPool {
    shards: Vec<Shard>,
    /// Power-of-two mask over the mixed page id.
    mask: u64,
    /// Per-shard hit/miss tallies (indexed like `shards`); totals are their
    /// sums. Per-shard resolution lets fault-injection suites assert that
    /// seeded faults and traffic actually spread across every shard instead
    /// of piling onto one lock.
    hits: Vec<AtomicU64>,
    misses: Vec<AtomicU64>,
    /// Shard-lock acquisitions on the read path (initial lock, post-fetch
    /// re-lock, and condvar re-acquisitions all count). The contention test
    /// asserts an upper bound per request — a change that funnels reads
    /// back through one lock, or holds a lock across a fetch and forces
    /// waiters into extra wakeups, fails that bound.
    lock_acquisitions: Vec<AtomicU64>,
}

impl ShardedBufferPool {
    /// Creates a pool of `capacity` total pages split over `shards` locks
    /// (`shards` is rounded up to a power of two so shard selection is a
    /// mask, not a division).
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        let n = shards.next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        ShardedBufferPool {
            shards: (0..n)
                .map(|_| Shard {
                    state: Mutex::new(BufferShard::new(per_shard)),
                    fetch_done: Condvar::new(),
                })
                .collect(),
            mask: n as u64 - 1,
            hits: (0..n).map(|_| AtomicU64::new(0)).collect(),
            misses: (0..n).map(|_| AtomicU64::new(0)).collect(),
            lock_acquisitions: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `pid` hashes to — the same index
    /// [`Self::shard_hits`]/[`Self::shard_misses`] tally under, so tests
    /// can predict which shard a page's traffic lands on.
    pub fn shard_index(&self, pid: PageId) -> usize {
        // Fibonacci mixing spreads sequential page ids across shards.
        let h = u64::from(pid.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h & self.mask) as usize
    }

    /// Number of read requests served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    /// Number of read requests that had to touch the pager.
    pub fn misses(&self) -> u64 {
        self.misses.iter().map(|m| m.load(Ordering::Relaxed)).sum()
    }

    /// Read requests served from shard `shard`'s cache.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    pub fn shard_hits(&self, shard: usize) -> u64 {
        self.hits[shard].load(Ordering::Relaxed)
    }

    /// Read requests shard `shard` had to forward to the pager.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    pub fn shard_misses(&self, shard: usize) -> u64 {
        self.misses[shard].load(Ordering::Relaxed)
    }

    /// Total shard-lock acquisitions on the read path, across all shards.
    /// A cache hit costs exactly one; a single-flight miss costs two (lock,
    /// fetch unlocked, re-lock to install); a waiter adds one per condvar
    /// wakeup. Contention tests assert an upper bound per request.
    pub fn lock_acquisitions(&self) -> u64 {
        self.lock_acquisitions.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Read-path lock acquisitions charged to shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    pub fn shard_lock_acquisitions(&self, shard: usize) -> u64 {
        self.lock_acquisitions[shard].load(Ordering::Relaxed)
    }

    /// Pages currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, pid: PageId) -> &Shard {
        &self.shards[self.shard_index(pid)]
    }

    /// Reads `pid`, consulting the owning shard first. A miss charges one
    /// counted read on `pager` and installs the page; a failed pager read
    /// propagates and nothing is cached, so a later retry re-reads the
    /// page. (No infallible wrapper — pool reads sit on query paths, which
    /// surface [`crate::StorageError`] rather than panic.)
    ///
    /// The pager read happens with the shard lock *released*: misses on
    /// different pages proceed fully in parallel, and concurrent misses on
    /// the same page are deduplicated by single-flight (the extra readers
    /// wait on the shard condvar, then serve the installed copy as a hit).
    /// If the flight fails, one waiter retries as the new fetcher, so an
    /// injected fault never strands the waiters or caches a bad page.
    pub fn try_read(&self, pager: &Pager, pid: PageId) -> Result<Arc<[u8]>, crate::StorageError> {
        let idx = self.shard_index(pid);
        let shard = &self.shards[idx];
        let mut state = shard.lock();
        self.lock_acquisitions[idx].fetch_add(1, Ordering::Relaxed);
        loop {
            if let Some(page) = state.get(pid) {
                self.hits[idx].fetch_add(1, Ordering::Relaxed);
                return Ok(page);
            }
            if state.in_flight.insert(pid) {
                // This reader owns the flight: count the miss, fetch with
                // the lock released, then re-lock to install and wake any
                // waiters.
                self.misses[idx].fetch_add(1, Ordering::Relaxed);
                drop(state);
                let fetched: Result<Arc<[u8]>, crate::StorageError> =
                    pager.try_read(pid).map(Arc::from);
                let mut state = shard.lock();
                self.lock_acquisitions[idx].fetch_add(1, Ordering::Relaxed);
                state.in_flight.remove(&pid);
                if let Ok(data) = &fetched {
                    state.install(pid, data.clone());
                }
                drop(state);
                // Wake waiters on failure too — one of them retries as the
                // new fetcher instead of sleeping forever.
                shard.fetch_done.notify_all();
                return fetched;
            }
            // Another reader is fetching this page: wait for the flight to
            // land, then re-check. On success the page is cached (hit); on
            // failure it is neither cached nor in flight, so this reader
            // becomes the next fetcher.
            // Same poison policy as `Shard::lock`: re-acquire the guard a
            // panicking fetcher abandoned rather than propagating the panic.
            state = shard.fetch_done.wait(state).unwrap_or_else(|e| e.into_inner());
            self.lock_acquisitions[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops any cached copy of `pid` (call after writing the page through
    /// the pager).
    pub fn invalidate(&self, pid: PageId) {
        self.shard(pid).lock().invalidate(pid);
    }

    /// Writes through to the pager and invalidates the cached copy.
    pub fn write(&self, pager: &mut Pager, pid: PageId, data: &[u8]) {
        self.invalidate(pid);
        pager.write(pid, data);
    }

    /// Drops every cached page in every shard (e.g. between experiment runs
    /// to model a cold cache).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{IoCategory, IoStats};
    use crate::Pager;

    fn setup(n_pages: usize) -> (Pager, Vec<PageId>) {
        let stats = IoStats::new_shared();
        let mut pager = Pager::new(64, IoCategory::RtreeBlock, stats);
        let pids: Vec<PageId> = (0..n_pages)
            .map(|i| {
                let pid = pager.allocate();
                pager.write(pid, &[i as u8; 64]);
                pid
            })
            .collect();
        pager.stats().reset();
        (pager, pids)
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let (pager, pids) = setup(1);
        let mut pool = BufferPool::new(4);
        for _ in 0..5 {
            let page = pool.try_read(&pager, pids[0]).expect("read");
            assert_eq!(page[0], 0);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 4);
        assert_eq!(pager.stats().reads(IoCategory::RtreeBlock), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (pager, pids) = setup(3);
        let mut pool = BufferPool::new(2);
        pool.try_read(&pager, pids[0]).expect("read"); // miss
        pool.try_read(&pager, pids[1]).expect("read"); // miss
        pool.try_read(&pager, pids[0]).expect("read"); // hit, makes 1 the LRU
        pool.try_read(&pager, pids[2]).expect("read"); // miss, evicts 1
        pool.try_read(&pager, pids[0]).expect("read"); // hit
        pool.try_read(&pager, pids[1]).expect("read"); // miss again
        assert_eq!(pool.misses(), 4);
        assert_eq!(pool.hits(), 2);
    }

    #[test]
    fn write_through_updates_cached_copy() {
        let (mut pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pool.try_read(&pager, pids[0]).expect("read");
        pool.write(&mut pager, pids[0], &[9u8; 64]);
        let page = pool.try_read(&pager, pids[0]).expect("read");
        assert_eq!(page[0], 9);
        // The post-write read must be a cache hit (write refreshed the copy).
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn failed_reads_propagate_and_are_not_cached() {
        let (mut pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pager.set_fault_plan(crate::FaultPlan::seeded(2).with_read_errors(1.0));
        assert!(pool.try_read(&pager, pids[0]).is_err());
        assert!(pool.is_empty(), "a failed read must not install a cache entry");
        pager.take_fault_plan();
        assert!(pool.try_read(&pager, pids[0]).is_ok());
    }

    #[test]
    fn clear_models_a_cold_cache() {
        let (pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pool.try_read(&pager, pids[0]).expect("read");
        pool.clear();
        pool.try_read(&pager, pids[0]).expect("read");
        assert_eq!(pool.misses(), 2);
    }

    #[test]
    fn sharded_pool_caches_and_counts_like_the_serial_pool() {
        let (pager, pids) = setup(4);
        let pool = ShardedBufferPool::new(8, 4);
        for _ in 0..3 {
            for &pid in &pids {
                let page = pool.try_read(&pager, pid).expect("read");
                assert_eq!(page.len(), 64);
            }
        }
        assert_eq!(pool.misses(), 4, "one miss per distinct page");
        assert_eq!(pool.hits(), 8);
        assert_eq!(pager.stats().reads(IoCategory::RtreeBlock), 4);
        pool.clear();
        assert!(pool.is_empty());
    }

    #[test]
    fn sharded_pool_capacity_bounds_resident_pages() {
        let (pager, pids) = setup(32);
        let pool = ShardedBufferPool::new(8, 2);
        for &pid in &pids {
            pool.try_read(&pager, pid).expect("read");
        }
        // 2 shards × ceil(8/2) pages: never more than the per-shard caps.
        assert!(pool.len() <= 8, "resident {} pages", pool.len());
    }

    #[test]
    fn sharded_pool_write_invalidates() {
        let (mut pager, pids) = setup(1);
        let pool = ShardedBufferPool::new(4, 2);
        assert_eq!(pool.try_read(&pager, pids[0]).expect("read")[0], 0);
        pool.write(&mut pager, pids[0], &[7u8; 64]);
        assert_eq!(pool.try_read(&pager, pids[0]).expect("read")[0], 7);
        assert_eq!(pool.misses(), 2, "the write invalidated the cached copy");
    }

    #[test]
    fn sharded_pool_failed_reads_are_not_cached() {
        let (mut pager, pids) = setup(1);
        let pool = ShardedBufferPool::new(4, 2);
        pager.set_fault_plan(crate::FaultPlan::seeded(2).with_read_errors(1.0));
        assert!(pool.try_read(&pager, pids[0]).is_err());
        assert!(pool.is_empty(), "a failed read must not install a cache entry");
        pager.take_fault_plan();
        assert!(pool.try_read(&pager, pids[0]).is_ok());
    }

    #[test]
    fn sharded_pool_concurrent_readers_agree_and_lose_no_counts() {
        let (pager, pids) = setup(16);
        // Per-shard capacity 16: even if every page hashed to one shard,
        // nothing would be evicted, so each page misses exactly once.
        let pool = ShardedBufferPool::new(64, 4);
        let threads = 8usize;
        let rounds = 200usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let (pool, pager, pids) = (&pool, &pager, &pids);
                s.spawn(move || {
                    for i in 0..rounds {
                        let pid = pids[(t + i) % pids.len()];
                        let page = pool.try_read(pager, pid).expect("read");
                        assert_eq!(page[0] as usize, pid.0 as usize, "wrong page contents");
                    }
                });
            }
        });
        assert_eq!(
            pool.hits() + pool.misses(),
            (threads * rounds) as u64,
            "every request is tallied exactly once"
        );
        // The pool fits every page: each page misses exactly once, because
        // single-flight dedups concurrent misses of the same page (waiters
        // park on the shard condvar instead of issuing duplicate reads).
        assert_eq!(pool.misses(), pids.len() as u64);
        assert_eq!(pager.stats().reads(IoCategory::RtreeBlock), pids.len() as u64);
    }

    #[test]
    fn sharded_pool_read_path_lock_cost_is_bounded() {
        let (pager, pids) = setup(8);
        let pool = ShardedBufferPool::new(64, 4);
        for _ in 0..3 {
            for &pid in &pids {
                pool.try_read(&pager, pid).expect("read");
            }
        }
        let requests = 3 * pids.len() as u64;
        // Serial traffic: hits take exactly 1 acquisition, misses exactly 2
        // (lock, fetch unlocked, re-lock to install) — no waiter wakeups.
        assert_eq!(
            pool.lock_acquisitions(),
            requests + pids.len() as u64,
            "hits=1 lock, misses=2 locks"
        );
        let per_shard: Vec<u64> =
            (0..pool.shard_count()).map(|i| pool.shard_lock_acquisitions(i)).collect();
        assert_eq!(per_shard.iter().sum::<u64>(), pool.lock_acquisitions());
    }

    #[test]
    fn sharded_pool_failed_flight_wakes_waiters_and_retries() {
        let (mut pager, pids) = setup(1);
        let pool = ShardedBufferPool::new(4, 2);
        // First read of the page fails; every subsequent read succeeds. The
        // failure must not strand concurrent readers of the same page or
        // cache the failed fetch.
        pager.set_fault_plan(crate::FaultPlan::seeded(9).with_read_errors(1.0));
        assert!(pool.try_read(&pager, pids[0]).is_err());
        assert!(pool.is_empty(), "a failed flight must not install a cache entry");
        pager.take_fault_plan();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (pool, pager, pid) = (&pool, &pager, pids[0]);
                s.spawn(move || {
                    let page = pool.try_read(pager, pid).expect("retry succeeds");
                    assert_eq!(page[0], 0);
                });
            }
        });
        assert_eq!(pool.len(), 1);
    }
}
