//! A small LRU buffer pool layered over a [`Pager`].
//!
//! The paper's query-time I/O counts assume a cold cache per query (every node
//! visit is a block retrieval). The buffer pool exists for the ablation
//! experiments that ask how much a warm cache changes the picture: reads served
//! from the pool are *not* charged to the ledger, only misses are.

use std::collections::HashMap;

use crate::page::PageId;
use crate::pager::Pager;

/// LRU read cache with hit/miss accounting.
///
/// Only caches reads; writes go straight through to the pager and invalidate
/// any cached copy.
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Map page id -> slot in `entries`.
    map: HashMap<PageId, usize>,
    /// Cached pages in arbitrary slot order.
    entries: Vec<(PageId, Box<[u8]>, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a pool that holds up to `capacity` pages.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity),
            entries: Vec::with_capacity(capacity),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of read requests served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of read requests that had to touch the pager.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads `pid`, consulting the cache first. A miss charges one counted
    /// read on `pager` and installs the page, evicting the least recently
    /// used entry if the pool is full.
    ///
    /// Infallible [`BufferPool::try_read`]; panics where that errors.
    #[inline]
    pub fn read<'a>(&'a mut self, pager: &Pager, pid: PageId) -> &'a [u8] {
        self.try_read(pager, pid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`BufferPool::read`]: a failed pager read (dead page,
    /// injected fault, checksum mismatch) is propagated and nothing is
    /// cached, so a later retry re-reads the underlying page.
    pub fn try_read<'a>(
        &'a mut self,
        pager: &Pager,
        pid: PageId,
    ) -> Result<&'a [u8], crate::StorageError> {
        self.clock += 1;
        if let Some(&slot) = self.map.get(&pid) {
            self.hits += 1;
            self.entries[slot].2 = self.clock;
            return Ok(&self.entries[slot].1);
        }
        self.misses += 1;
        let data: Box<[u8]> = pager.try_read(pid)?.into();
        let slot = if self.entries.len() < self.capacity {
            self.entries.push((pid, data, self.clock));
            self.entries.len() - 1
        } else {
            // Evict the entry with the smallest timestamp.
            let (victim, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .expect("capacity > 0");
            let old = self.entries[victim].0;
            self.map.remove(&old);
            self.entries[victim] = (pid, data, self.clock);
            victim
        };
        self.map.insert(pid, slot);
        Ok(&self.entries[slot].1)
    }

    /// Writes through to the pager and invalidates any cached copy of `pid`.
    pub fn write(&mut self, pager: &mut Pager, pid: PageId, data: &[u8]) {
        if let Some(slot) = self.map.remove(&pid) {
            // Keep slot layout simple: replace with the new contents rather
            // than compacting the vector.
            self.entries[slot] = (pid, data.into(), self.clock);
            self.map.insert(pid, slot);
        }
        pager.write(pid, data);
    }

    /// Drops every cached page (e.g. between queries to model a cold cache).
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{IoCategory, IoStats};
    use crate::Pager;

    fn setup(n_pages: usize) -> (Pager, Vec<PageId>) {
        let stats = IoStats::new_shared();
        let mut pager = Pager::new(64, IoCategory::RtreeBlock, stats);
        let pids: Vec<PageId> = (0..n_pages)
            .map(|i| {
                let pid = pager.allocate();
                pager.write(pid, &[i as u8; 64]);
                pid
            })
            .collect();
        pager.stats().reset();
        (pager, pids)
    }

    #[test]
    fn repeated_reads_hit_the_cache() {
        let (pager, pids) = setup(1);
        let mut pool = BufferPool::new(4);
        for _ in 0..5 {
            let page = pool.read(&pager, pids[0]);
            assert_eq!(page[0], 0);
        }
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 4);
        assert_eq!(pager.stats().reads(IoCategory::RtreeBlock), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (pager, pids) = setup(3);
        let mut pool = BufferPool::new(2);
        pool.read(&pager, pids[0]); // miss
        pool.read(&pager, pids[1]); // miss
        pool.read(&pager, pids[0]); // hit, makes 1 the LRU
        pool.read(&pager, pids[2]); // miss, evicts 1
        pool.read(&pager, pids[0]); // hit
        pool.read(&pager, pids[1]); // miss again
        assert_eq!(pool.misses(), 4);
        assert_eq!(pool.hits(), 2);
    }

    #[test]
    fn write_through_updates_cached_copy() {
        let (mut pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pool.read(&pager, pids[0]);
        pool.write(&mut pager, pids[0], &[9u8; 64]);
        let page = pool.read(&pager, pids[0]);
        assert_eq!(page[0], 9);
        // The post-write read must be a cache hit (write refreshed the copy).
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn failed_reads_propagate_and_are_not_cached() {
        let (mut pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pager.set_fault_plan(crate::FaultPlan::seeded(2).with_read_errors(1.0));
        assert!(pool.try_read(&pager, pids[0]).is_err());
        assert!(pool.is_empty(), "a failed read must not install a cache entry");
        pager.take_fault_plan();
        assert!(pool.try_read(&pager, pids[0]).is_ok());
    }

    #[test]
    fn clear_models_a_cold_cache() {
        let (pager, pids) = setup(1);
        let mut pool = BufferPool::new(2);
        pool.read(&pager, pids[0]);
        pool.clear();
        pool.read(&pager, pids[0]);
        assert_eq!(pool.misses(), 2);
    }
}
