//! Simulated paged storage for the P-Cube reproduction.
//!
//! The P-Cube paper (ICDE 2008) evaluates its methods by wall-clock time *and*
//! by the number of disk accesses of each kind: R-tree block retrievals,
//! signature page loads, B+-tree page reads and random tuple accesses used for
//! boolean verification. This crate provides the substrate those numbers come
//! from:
//!
//! * [`Pager`] — an in-memory "disk" of fixed-size pages. Every read and write
//!   is charged to an [`IoCategory`] on a shared [`IoStats`] ledger.
//! * [`BufferPool`] — an optional LRU read cache layered over a pager, used by
//!   ablation experiments to study buffering effects.
//! * [`ShardedBufferPool`] — the thread-safe variant: N independent LRU
//!   shards, each behind its own lock, for the concurrent query engine.
//! * [`CostModel`] — converts an I/O ledger into modeled seconds so the
//!   time-based figures of the paper can be reproduced independently of the
//!   host machine's RAM speed.
//! * [`FaultPlan`] + [`StorageError`] — deterministic fault injection and the
//!   typed errors of the fallible (`try_*`) APIs, plus optional per-page
//!   CRC32 verification ([`Pager::set_checksums`]). See `DESIGN.md` §6.
//!
//! All indexes in the workspace (`pcube-rtree`, `pcube-bptree`, the signature
//! store in `pcube-core`) persist their nodes through a [`Pager`], so the
//! experiment harness can compare methods on exactly the metric the paper
//! reports.
//!
//! # Example
//!
//! ```
//! use pcube_storage::{IoCategory, IoStats, Pager, PAGE_SIZE};
//!
//! let stats = IoStats::new_shared();
//! let mut pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats.clone());
//! let pid = pager.allocate();
//! let mut buf = vec![0u8; PAGE_SIZE];
//! buf[0] = 42;
//! pager.write(pid, &buf);
//! assert_eq!(pager.read(pid)[0], 42);
//! assert_eq!(stats.reads(IoCategory::RtreeBlock), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod bytes;
mod crc;
mod error;
mod fault;
mod page;
mod pager;
mod stats;
mod wal;

pub use buffer::{BufferPool, ShardedBufferPool};
pub use bytes::{read_f64, read_u16, read_u32, read_u64, write_f64, write_u16, write_u32, write_u64};
pub use crc::crc32;
pub use error::{ImageError, PageOp, StorageError};
pub use fault::{CrashPlan, CrashPoint, FaultCounts, FaultPlan, WalDamage};
pub use page::{PageId, PAGE_SIZE};
pub use pager::{Pager, QuarantineEntry};
pub use stats::{CostModel, IoCategory, IoSnapshot, IoStats, SharedStats};
pub use wal::{Lsn, StoreKind, TreeOp, Wal, WalRecord, WalReplay, WalStats, WalSyncError};

// The concurrent query engine shares pagers, the ledger and the sharded
// buffer pool across scoped threads; regressing any of them to `!Sync`
// (e.g. reintroducing `Cell`/`RefCell`/`Rc`) must fail to compile here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Pager>();
    assert_send_sync::<IoStats>();
    assert_send_sync::<ShardedBufferPool>();
};
