//! The simulated disk: a pager of fixed-size pages with counted I/O.

use crate::page::PageId;
use crate::stats::{IoCategory, SharedStats};

/// An in-memory "disk" of fixed-size pages.
///
/// Each pager is dedicated to one storage structure (an R-tree, a B+-tree, a
/// signature file, a heap file) and charges its accesses to a single
/// [`IoCategory`] on a shared [`crate::IoStats`] ledger. This mirrors how the
/// paper attributes disk accesses per structure (Fig 9: `DBlock`, `SBlock`,
/// `SSig`, `DBool`).
///
/// Reads and writes are counted; allocation alone is not (allocating a page
/// without writing it performs no disk access on a real system either).
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free: Vec<PageId>,
    category: IoCategory,
    stats: SharedStats,
}

impl Pager {
    /// Creates an empty pager whose accesses will be charged to `category`.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize, category: IoCategory, stats: SharedStats) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager { page_size, pages: Vec::new(), free: Vec::new(), category, stats }
    }

    /// The fixed page size of this pager, in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The category this pager charges accesses to.
    #[inline]
    pub fn category(&self) -> IoCategory {
        self.category
    }

    /// The shared ledger this pager records into.
    #[inline]
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Total bytes occupied by live pages.
    pub fn size_bytes(&self) -> u64 {
        self.live_pages() as u64 * self.page_size as u64
    }

    /// Allocates a zeroed page and returns its id. Recycles freed pages.
    pub fn allocate(&mut self) -> PageId {
        if let Some(pid) = self.free.pop() {
            self.pages[pid.index()] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return pid;
        }
        let pid = PageId(u32::try_from(self.pages.len()).expect("pager full"));
        assert!(!pid.is_invalid(), "pager exhausted the PageId space");
        self.pages.push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        pid
    }

    /// Releases a page back to the allocator.
    ///
    /// # Panics
    /// Panics if `pid` is not a live page (double free or never allocated).
    pub fn free(&mut self, pid: PageId) {
        let slot = self.pages.get_mut(pid.index()).expect("free of unallocated page");
        assert!(slot.take().is_some(), "double free of {pid}");
        self.free.push(pid);
    }

    /// Reads a page, charging one read to this pager's category.
    ///
    /// # Panics
    /// Panics if `pid` is not a live page.
    pub fn read(&self, pid: PageId) -> &[u8] {
        self.stats.record_reads(self.category, 1);
        self.page(pid)
    }

    /// Returns page contents *without* charging a disk access.
    ///
    /// Used by callers that have their own accounting policy, e.g. the
    /// [`crate::BufferPool`] (which charges only on cache miss) and in-memory
    /// rebuild passes that the paper does not count as query I/O.
    pub fn read_uncounted(&self, pid: PageId) -> &[u8] {
        self.page(pid)
    }

    /// Overwrites a page, charging one write. `data` must be exactly one page.
    ///
    /// # Panics
    /// Panics if `pid` is not live or `data.len() != page_size`.
    pub fn write(&mut self, pid: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.page_size, "page write must cover the whole page");
        self.stats.record_writes(self.category, 1);
        let slot = self.pages.get_mut(pid.index()).and_then(Option::as_mut).expect("write to dead page");
        slot.copy_from_slice(data);
    }

    /// In-place page update via a closure, charging one read and one write.
    ///
    /// Convenient for node updates that only touch a few bytes.
    pub fn update<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.stats.record_reads(self.category, 1);
        self.stats.record_writes(self.category, 1);
        let slot = self.pages.get_mut(pid.index()).and_then(Option::as_mut).expect("update of dead page");
        f(slot)
    }

    fn page(&self, pid: PageId) -> &[u8] {
        self.pages.get(pid.index()).and_then(Option::as_ref).expect("read of dead page")
    }

    /// Serializes the pager's pages and free list (not counted as I/O;
    /// checkpointing is outside the query cost model).
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        crate::write_u64(push_n(out, 8), 0, self.page_size as u64);
        let mut buf = [0u8; 8];
        crate::write_u64(&mut buf, 0, self.pages.len() as u64);
        out.extend_from_slice(&buf);
        for slot in &self.pages {
            match slot {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    out.extend_from_slice(p);
                }
            }
        }
        crate::write_u64(&mut buf, 0, self.free.len() as u64);
        out.extend_from_slice(&buf);
        for pid in &self.free {
            let mut b4 = [0u8; 4];
            crate::write_u32(&mut b4, 0, pid.0);
            out.extend_from_slice(&b4);
        }
    }

    /// Rebuilds a pager from [`Pager::serialize_into`] output. Returns the
    /// pager and the bytes consumed. `None` on malformed input.
    pub fn deserialize_from(
        buf: &[u8],
        category: IoCategory,
        stats: SharedStats,
    ) -> Option<(Pager, usize)> {
        let mut pos = 0usize;
        let page_size = read_u64_at(buf, &mut pos)? as usize;
        if page_size == 0 || page_size > buf.len() {
            return None;
        }
        let n_pages = read_u64_at(buf, &mut pos)? as usize;
        // Every page slot costs at least one tag byte, bounding n_pages.
        if n_pages > buf.len() {
            return None;
        }
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let tag = *buf.get(pos)?;
            pos += 1;
            match tag {
                0 => pages.push(None),
                1 => {
                    let end = pos.checked_add(page_size)?;
                    pages.push(Some(buf.get(pos..end)?.to_vec().into_boxed_slice()));
                    pos = end;
                }
                _ => return None,
            }
        }
        let n_free = read_u64_at(buf, &mut pos)? as usize;
        if n_free > buf.len() {
            return None;
        }
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let end = pos.checked_add(4)?;
            let v = u32::from_le_bytes(buf.get(pos..end)?.try_into().ok()?);
            pos = end;
            free.push(PageId(v));
        }
        Some((Pager { page_size, pages, free, category, stats }, pos))
    }
}

/// Appends `n` zero bytes and returns a mutable view of them.
fn push_n(out: &mut Vec<u8>, n: usize) -> &mut [u8] {
    let start = out.len();
    out.resize(start + n, 0);
    &mut out[start..]
}

fn read_u64_at(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let v = u64::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use crate::PAGE_SIZE;

    fn pager() -> Pager {
        Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, IoStats::new_shared())
    }

    #[test]
    fn allocate_returns_zeroed_pages_with_dense_ids() {
        let mut p = pager();
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert!(p.read(a).iter().all(|&x| x == 0));
        assert_eq!(p.live_pages(), 2);
        assert_eq!(p.size_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut p = pager();
        let pid = p.allocate();
        let mut data = vec![0u8; PAGE_SIZE];
        data[100] = 7;
        data[PAGE_SIZE - 1] = 9;
        p.write(pid, &data);
        let got = p.read(pid);
        assert_eq!(got[100], 7);
        assert_eq!(got[PAGE_SIZE - 1], 9);
    }

    #[test]
    fn freed_pages_are_recycled_zeroed() {
        let mut p = pager();
        let a = p.allocate();
        let mut data = vec![0xFFu8; PAGE_SIZE];
        data[0] = 1;
        p.write(a, &data);
        p.free(a);
        let b = p.allocate();
        assert_eq!(a, b, "free list should recycle");
        assert!(p.read(b).iter().all(|&x| x == 0), "recycled page must be zeroed");
    }

    #[test]
    fn reads_and_writes_are_counted_but_allocation_is_not() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::BptreePage, stats.clone());
        let pid = p.allocate();
        assert_eq!(stats.total_reads() + stats.total_writes(), 0);
        p.write(pid, &[1u8; 64]);
        let _ = p.read(pid);
        let _ = p.read_uncounted(pid);
        p.update(pid, |b| b[0] = 2);
        assert_eq!(stats.reads(IoCategory::BptreePage), 2); // read + update
        assert_eq!(stats.writes(IoCategory::BptreePage), 2); // write + update
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = pager();
        let a = p.allocate();
        p.free(a);
        p.free(a);
    }

    #[test]
    #[should_panic]
    fn short_write_panics() {
        let mut p = pager();
        let a = p.allocate();
        p.write(a, &[0u8; 10]);
    }

    #[test]
    fn serialization_roundtrips_pages_and_free_list() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.write(a, &[1u8; 64]);
        p.write(b, &[2u8; 64]);
        p.write(c, &[3u8; 64]);
        p.free(b);
        let mut bytes = Vec::new();
        p.serialize_into(&mut bytes);
        let (q, used) =
            Pager::deserialize_from(&bytes, IoCategory::SignaturePage, IoStats::new_shared())
                .expect("roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(q.page_size(), 64);
        assert_eq!(q.live_pages(), 2);
        assert_eq!(q.read_uncounted(a)[0], 1);
        assert_eq!(q.read_uncounted(c)[0], 3);
        // The free list survives: the next allocation reuses b.
        let mut q = q;
        assert_eq!(q.allocate(), b);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        for bytes in [&b""[..], &[0u8; 4][..], &[0xFFu8; 64][..]] {
            assert!(Pager::deserialize_from(
                bytes,
                IoCategory::RtreeBlock,
                IoStats::new_shared()
            )
            .is_none());
        }
    }

    #[test]
    fn update_mutates_in_place() {
        let mut p = pager();
        let a = p.allocate();
        let out = p.update(a, |buf| {
            buf[3] = 42;
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(p.read(a)[3], 42);
    }
}
