//! The simulated disk: a pager of fixed-size pages with counted I/O,
//! optional per-page checksums, and deterministic fault injection.

use crate::crc::crc32;
use crate::error::{ImageError, PageOp, StorageError};
use crate::fault::{FaultCounts, FaultPlan, WriteEffect};
use crate::page::PageId;
use crate::stats::{IoCategory, SharedStats};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Pages per copy-on-write group. Cloning a pager shares the whole page
/// table (one `Arc` bump); the first mutation after a clone re-owns the
/// group spine and then only the touched groups, so the per-commit
/// copy-on-write cost is `O(dirty pages + n_pages / GROUP_PAGES)` pointer
/// copies instead of a deep copy of every page byte.
const GROUP_PAGES: usize = 64;
const GROUP_SHIFT: usize = 6;
const GROUP_MASK: usize = GROUP_PAGES - 1;

/// A fixed-size run of page slots sharing one `Arc`: the unit of
/// copy-on-write between epoch snapshots. `sums` mirrors `Pager::verify`
/// checksums slot-for-slot (zero when checksums are off).
#[derive(Debug, Clone)]
struct PageGroup {
    slots: [Option<Arc<[u8]>>; GROUP_PAGES],
    sums: [u32; GROUP_PAGES],
}

impl PageGroup {
    fn empty() -> Self {
        PageGroup { slots: std::array::from_fn(|_| None), sums: [0; GROUP_PAGES] }
    }
}

/// Re-owns `slot`'s bytes if they are shared with another pager (an epoch
/// snapshot) and returns exclusive access: the copy-on-write fault-in.
fn page_mut(slot: &mut Arc<[u8]>) -> &mut [u8] {
    if Arc::get_mut(slot).is_none() {
        let owned: Arc<[u8]> = Arc::from(&slot[..]);
        *slot = owned;
    }
    Arc::get_mut(slot).expect("invariant: page Arc was just made unique")
}

/// An installed fault plan plus an atomic mirror of whether it can fail
/// reads. `try_read` consults only the flag on the hot path, so a plan that
/// injects no read faults (alloc budgets, write corruption) leaves the
/// concurrent read path entirely lock-free.
#[derive(Debug)]
struct FaultCell {
    arms_reads: AtomicBool,
    plan: Mutex<FaultPlan>,
}

impl FaultCell {
    fn new(plan: FaultPlan) -> Self {
        FaultCell { arms_reads: AtomicBool::new(plan.arms_reads()), plan: Mutex::new(plan) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        // Poison recovery: the plan is a self-contained RNG + counters; a
        // panic mid-roll cannot leave it inconsistent, so keep serving it.
        self.plan.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One quarantined page: the memoized deterministic failure that every
/// later probe is answered with, without re-issuing the doomed read.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineEntry {
    /// The typed error the first failed read surfaced.
    pub error: StorageError,
    /// The owner's catalog epoch when the page was quarantined (`0` for
    /// non-durable databases, which have no epochs).
    pub epoch: u64,
}

/// The page quarantine: a registry of pages whose reads failed
/// *deterministically* (CRC mismatch, malformed contents). Shared across
/// copy-on-write clones of a pager — the registry describes the shared page
/// table, and a heal observed through any handle serves them all.
///
/// `try_read` consults only the atomic `armed` flag on the hot path, so an
/// empty quarantine (the overwhelmingly common case) costs one relaxed load
/// and the concurrent read path stays lock-free.
#[derive(Debug, Default)]
struct Quarantine {
    armed: AtomicBool,
    /// Stamped onto new entries; durable owners bump it at each publish.
    epoch: AtomicU64,
    /// Each entry also records the address of the `Arc` page version it
    /// condemned. The registry is shared across copy-on-write clones, but
    /// page contents are not: a handle whose slot re-owned its copy (so the
    /// corruption is not in *its* bytes) must not be served another handle's
    /// memoized failure. The read path honors an entry only while the slot
    /// still holds the exact page version that failed.
    entries: Mutex<BTreeMap<u32, (QuarantineEntry, usize)>>,
}

impl Quarantine {
    /// Poison recovery: the map is only ever inserted into / removed from —
    /// a panicking thread cannot leave an entry half-written.
    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u32, (QuarantineEntry, usize)>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An in-memory "disk" of fixed-size pages.
///
/// Each pager is dedicated to one storage structure (an R-tree, a B+-tree, a
/// signature file, a heap file) and charges its accesses to a single
/// [`IoCategory`] on a shared [`crate::IoStats`] ledger. This mirrors how the
/// paper attributes disk accesses per structure (Fig 9: `DBlock`, `SBlock`,
/// `SSig`, `DBool`).
///
/// Reads and writes are counted; allocation alone is not (allocating a page
/// without writing it performs no disk access on a real system either).
///
/// # Fallible and infallible APIs
///
/// Every operation has a `try_*` form returning [`StorageError`] and an
/// `#[inline]` infallible wrapper that panics with the same diagnostic. Query
/// and recovery paths use the `try_*` forms; build paths, which own their
/// pages and cannot race, keep the terse wrappers.
///
/// # Checksums and fault injection
///
/// [`Pager::set_checksums`] maintains a CRC32 per live page, verified by the
/// fallible read path; [`Pager::set_fault_plan`] installs a deterministic
/// [`FaultPlan`] injecting read/write errors, torn writes, bit flips and
/// allocation exhaustion. Both are off by default and cost one predictable
/// branch per operation when disabled.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    /// Two-level copy-on-write page table: an `Arc` spine of `Arc` groups of
    /// [`GROUP_PAGES`] slots each. Clones share the spine; mutations re-own
    /// the spine once and then only the touched groups ([`page_mut`]), so an
    /// epoch snapshot costs `O(1)` at publish time and `O(dirty)` at the
    /// writer's next commit — never a deep copy of the clean pages.
    table: Arc<Vec<Arc<PageGroup>>>,
    /// Number of page slots handed out (live + dead); ids are dense in
    /// `0..n_slots` and trailing group slots beyond it are always `None`.
    n_slots: usize,
    free: Vec<PageId>,
    category: IoCategory,
    stats: SharedStats,
    /// Whether per-page CRC32s (stored per group) are maintained.
    verify: bool,
    /// Injected-fault schedule. Reads take `&self` from many query threads,
    /// so the plan sits behind a mutex — but `try_read` checks the cell's
    /// atomic `arms_reads` flag first and only locks when read faults are
    /// actually armed. Disabled (`None`), or installed without read faults,
    /// the read path performs no locking at all.
    fault: Option<FaultCell>,
    /// Wall-clock latency charged per counted read (`None` = off). This is
    /// the cost model's block-retrieval time paid for real: `try_read`
    /// sleeps *without holding any lock*, so concurrent readers overlap
    /// their stalls exactly as independent disks would — which is what lets
    /// a wall-clock benchmark observe read-path serialization. See
    /// `serve_bench --wall-io-us` and DESIGN.md §7.
    read_delay: Option<Duration>,
    /// Pages mutated (written, updated, allocated, or freed) since the last
    /// [`Pager::take_dirty`]. `BTreeSet` so drains are in deterministic page
    /// order — the WAL witnesses and checkpoint flushes built from this set
    /// must be byte-identical across runs.
    dirty: BTreeSet<u32>,
    /// Memoized deterministic read failures; see [`QuarantineEntry`]. Shared
    /// (like `stats`) across copy-on-write clones.
    quarantine: Arc<Quarantine>,
}

impl Clone for Pager {
    /// Copy-on-write copy sharing the same [`SharedStats`] ledger: the page
    /// table is shared via `Arc` (an `O(1)` bump, no page bytes move) and
    /// either side re-owns only the groups it subsequently mutates. The fault
    /// plan (and its schedule position) and the dirty set are cloned too;
    /// epoch snapshots rely on this being a faithful, independently-mutable
    /// copy.
    fn clone(&self) -> Self {
        Pager {
            page_size: self.page_size,
            table: Arc::clone(&self.table),
            n_slots: self.n_slots,
            free: self.free.clone(),
            category: self.category,
            stats: self.stats.clone(),
            verify: self.verify,
            fault: self.fault.as_ref().map(|c| FaultCell::new(c.lock().clone())),
            read_delay: self.read_delay,
            dirty: self.dirty.clone(),
            quarantine: Arc::clone(&self.quarantine),
        }
    }
}

impl Pager {
    /// Creates an empty pager whose accesses will be charged to `category`.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    pub fn new(page_size: usize, category: IoCategory, stats: SharedStats) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Pager {
            page_size,
            table: Arc::new(Vec::new()),
            n_slots: 0,
            free: Vec::new(),
            category,
            stats,
            verify: false,
            fault: None,
            read_delay: None,
            dirty: BTreeSet::new(),
            quarantine: Arc::new(Quarantine::default()),
        }
    }

    /// Packs a dense slot vector into the two-level copy-on-write table.
    fn build_table(pages: Vec<Option<Box<[u8]>>>) -> (Arc<Vec<Arc<PageGroup>>>, usize) {
        let n_slots = pages.len();
        let mut groups: Vec<Arc<PageGroup>> = Vec::with_capacity(n_slots.div_ceil(GROUP_PAGES));
        let mut current = PageGroup::empty();
        for (i, slot) in pages.into_iter().enumerate() {
            current.slots[i & GROUP_MASK] = slot.map(Arc::from);
            if i & GROUP_MASK == GROUP_MASK {
                groups.push(Arc::new(std::mem::replace(&mut current, PageGroup::empty())));
            }
        }
        if n_slots & GROUP_MASK != 0 {
            groups.push(Arc::new(current));
        }
        (Arc::new(groups), n_slots)
    }

    /// The slot for page id `idx`, `None` when dead or out of range.
    #[inline]
    fn slot(&self, idx: usize) -> Option<&Arc<[u8]>> {
        if idx >= self.n_slots {
            return None;
        }
        self.table[idx >> GROUP_SHIFT].slots[idx & GROUP_MASK].as_ref()
    }

    /// The recorded checksum of slot `idx` (only meaningful while `verify`).
    #[inline]
    fn sum(&self, idx: usize) -> u32 {
        self.table[idx >> GROUP_SHIFT].sums[idx & GROUP_MASK]
    }

    /// Exclusive access to the group holding slot `idx`, re-owning the spine
    /// and the group if they are shared with a snapshot (copy-on-write).
    /// The caller must have bounds-checked `idx < n_slots`.
    fn group_mut(&mut self, idx: usize) -> &mut PageGroup {
        let table = Arc::make_mut(&mut self.table);
        Arc::make_mut(&mut table[idx >> GROUP_SHIFT])
    }

    /// Rebuilds a pager from raw parts: the page table (dense slot vector,
    /// `None` = dead) and free list of a recovered checkpoint image. The
    /// dirty set starts empty — the caller asserts these pages are exactly
    /// what durable storage holds.
    ///
    /// # Panics
    /// Panics if `page_size` is zero or any live page has the wrong length.
    pub fn from_pages(
        page_size: usize,
        pages: Vec<Option<Box<[u8]>>>,
        free: Vec<PageId>,
        category: IoCategory,
        stats: SharedStats,
    ) -> Self {
        assert!(page_size > 0, "page size must be positive");
        for (i, slot) in pages.iter().enumerate() {
            if let Some(p) = slot {
                assert_eq!(p.len(), page_size, "page {i} has the wrong length");
            }
        }
        let (table, n_slots) = Self::build_table(pages);
        Pager {
            page_size,
            table,
            n_slots,
            free,
            category,
            stats,
            verify: false,
            fault: None,
            read_delay: None,
            dirty: BTreeSet::new(),
            quarantine: Arc::new(Quarantine::default()),
        }
    }

    /// The fixed page size of this pager, in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The category this pager charges accesses to.
    #[inline]
    pub fn category(&self) -> IoCategory {
        self.category
    }

    /// The shared ledger this pager records into.
    #[inline]
    pub fn stats(&self) -> &SharedStats {
        &self.stats
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.table.iter().flat_map(|g| g.slots.iter()).filter(|s| s.is_some()).count()
    }

    /// Ids of all live pages, in allocation order. Chaos tests use this to
    /// pick corruption targets.
    pub fn live_page_ids(&self) -> Vec<PageId> {
        (0..self.n_slots)
            .filter(|&i| self.slot(i).is_some())
            .map(|i| PageId(i as u32))
            .collect()
    }

    /// Number of page slots whose bytes are physically shared (same `Arc`)
    /// with `other` — i.e. pages a copy-on-write clone has *not* had to
    /// duplicate. Tests use this to prove epoch snapshots share clean pages.
    pub fn pages_shared_with(&self, other: &Pager) -> usize {
        let mut shared = 0;
        for idx in 0..self.n_slots.min(other.n_slots) {
            if let (Some(a), Some(b)) = (self.slot(idx), other.slot(idx)) {
                if Arc::ptr_eq(a, b) {
                    shared += 1;
                }
            }
        }
        shared
    }

    /// Total bytes occupied by live pages.
    pub fn size_bytes(&self) -> u64 {
        self.live_pages() as u64 * self.page_size as u64
    }

    /// Number of page slots (live + dead); ids are dense in `0..n_slots`.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// The current free list, in pop order (last entry is allocated next).
    pub fn free_list(&self) -> Vec<PageId> {
        self.free.clone()
    }

    /// The raw contents of a page, `None` if the slot is dead. Uncounted and
    /// unfaulted: this is the checkpointer's view of what memory holds.
    pub fn page_bytes(&self, pid: PageId) -> Option<&[u8]> {
        self.slot(pid.index()).map(|p| &p[..])
    }

    /// Drains and returns the ids of pages mutated since the last drain, in
    /// ascending order. Allocations, writes, updates and frees all dirty a
    /// page; a freed page stays in the set so checkpoints learn about
    /// deallocation too.
    pub fn take_dirty(&mut self) -> Vec<PageId> {
        let drained: Vec<PageId> = self.dirty.iter().map(|&i| PageId(i)).collect();
        self.dirty.clear();
        drained
    }

    /// Number of pages currently marked dirty.
    pub fn dirty_len(&self) -> usize {
        self.dirty.len()
    }

    /// Forgets all dirty marks without reporting them (used right after a
    /// full image capture, which by construction covers every page).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Enables or disables per-page CRC32 verification on the fallible read
    /// path. Enabling checksums (re)computes them for every live page.
    pub fn set_checksums(&mut self, on: bool) {
        self.verify = on;
        let table = Arc::make_mut(&mut self.table);
        for group in table.iter_mut() {
            let group = Arc::make_mut(group);
            for i in 0..GROUP_PAGES {
                group.sums[i] =
                    if on { group.slots[i].as_ref().map_or(0, |p| crc32(p)) } else { 0 };
            }
        }
    }

    /// Whether per-page checksums are currently maintained.
    #[inline]
    pub fn checksums_enabled(&self) -> bool {
        self.verify
    }

    /// Installs a deterministic fault-injection schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultCell::new(plan));
    }

    /// Removes the fault plan, returning it (with its injection counts).
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        // Same poison policy as `FaultCell::lock`: the plan is just counters
        // and thresholds, valid whether or not a holder panicked.
        self.fault.take().map(|c| c.plan.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    /// Injection counts of the installed plan, if any.
    pub fn fault_counts(&self) -> Option<FaultCounts> {
        self.fault.as_ref().map(|c| c.lock().counts())
    }

    /// `true` if an installed fault plan arms read faults — i.e. `try_read`
    /// will take the plan mutex. Exposed so tests can assert the unfaulted
    /// read path stays lock-free.
    pub fn fault_arms_reads(&self) -> bool {
        self.fault.as_ref().is_some_and(|c| c.arms_reads.load(Ordering::Relaxed))
    }

    /// Sets (or clears) the wall-clock latency charged per counted read.
    /// See the field docs on [`Pager`] — the sleep is taken with no lock
    /// held, so concurrent readers overlap stalls.
    pub fn set_read_delay(&mut self, delay: Option<Duration>) {
        self.read_delay = delay.filter(|d| !d.is_zero());
    }

    /// The wall-clock latency charged per counted read, if any.
    #[inline]
    pub fn read_delay(&self) -> Option<Duration> {
        self.read_delay
    }

    /// Flips bits in a stored page *without* updating its checksum, modelling
    /// at-rest corruption ("bit rot"). Test hook for chaos harnesses.
    pub fn corrupt_page(&mut self, pid: PageId, offset: usize, xor_mask: u8) -> Result<(), StorageError> {
        let page_size = self.page_size;
        let idx = pid.index();
        if self.slot(idx).is_none() {
            return Err(StorageError::DeadPage { pid, op: PageOp::Write });
        }
        let group = self.group_mut(idx);
        let slot = group.slots[idx & GROUP_MASK]
            .as_mut()
            .ok_or(StorageError::DeadPage { pid, op: PageOp::Write })?;
        page_mut(slot)[offset % page_size] ^= xor_mask;
        Ok(())
    }

    // ------------------------------------------------------- quarantine --

    /// Quarantines `pid`: memoizes `error` so every later probe is answered
    /// in O(1) with a clone of it instead of re-issuing the doomed read.
    /// Records a page exactly once — returns `true` (and bumps the ledger's
    /// `pages_quarantined`) only when the page was not already quarantined.
    ///
    /// The fallible read path calls this automatically for *deterministic*
    /// failures (CRC mismatches); injected transient I/O errors are never
    /// quarantined. Higher layers (the signature store, the scrubber) call
    /// it for structural failures the pager cannot see.
    pub fn quarantine(&self, pid: PageId, error: StorageError) -> bool {
        let epoch = self.quarantine.epoch.load(Ordering::Relaxed);
        let ptr = self.slot_ptr(pid);
        let mut entries = self.quarantine.lock();
        if let Some(prev) = entries.get(&pid.0) {
            if prev.1 == ptr {
                return false;
            }
            // A different handle's page version was condemned before; this
            // handle's version failed too. Re-point the entry (not a new
            // quarantined page — the ledger already counted this pid).
            entries.insert(pid.0, (QuarantineEntry { error, epoch }, ptr));
            return false;
        }
        entries.insert(pid.0, (QuarantineEntry { error, epoch }, ptr));
        self.quarantine.armed.store(true, Ordering::Relaxed);
        self.stats.record_pages_quarantined(1);
        true
    }

    /// Removes `pid` from quarantine (the page was healed: rewritten with
    /// fresh contents, or freed so its slot no longer exists). Returns
    /// `true` (and bumps the ledger's `pages_repaired`) if an entry was
    /// cleared. The write/free paths call this automatically.
    pub fn clear_quarantine(&self, pid: PageId) -> bool {
        let mut entries = self.quarantine.lock();
        if entries.remove(&pid.0).is_none() {
            return false;
        }
        if entries.is_empty() {
            self.quarantine.armed.store(false, Ordering::Relaxed);
        }
        self.stats.record_pages_repaired(1);
        true
    }

    /// Whether `pid` is currently quarantined.
    pub fn is_quarantined(&self, pid: PageId) -> bool {
        self.quarantine.armed.load(Ordering::Relaxed) && self.quarantine.lock().contains_key(&pid.0)
    }

    /// Number of currently quarantined pages.
    pub fn quarantine_len(&self) -> usize {
        self.quarantine.lock().len()
    }

    /// The quarantined pages and their memoized failures, in page order.
    pub fn quarantine_entries(&self) -> Vec<(PageId, QuarantineEntry)> {
        self.quarantine.lock().iter().map(|(&pid, (e, _))| (PageId(pid), e.clone())).collect()
    }

    /// Stamps the epoch recorded on *future* quarantine entries. The durable
    /// engine calls this at each publish so entries say which epoch first
    /// observed the failure; non-durable databases leave it at zero.
    pub fn set_quarantine_epoch(&self, epoch: u64) {
        self.quarantine.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The memoized failure for `pid`, if quarantined *and* this handle's
    /// slot still holds the exact page version that failed (copy-on-write
    /// clones with a re-owned healthy copy fall through to a real read).
    /// One relaxed atomic load when the quarantine is empty.
    #[inline]
    fn quarantined_error(&self, pid: PageId) -> Option<StorageError> {
        if !self.quarantine.armed.load(Ordering::Relaxed) {
            return None;
        }
        let ptr = self.slot_ptr(pid);
        self.quarantine
            .lock()
            .get(&pid.0)
            .filter(|(_, condemned)| *condemned == ptr)
            .map(|(e, _)| e.error.clone())
    }

    /// The address of the `Arc` page version currently in `pid`'s slot
    /// (`0` for dead or out-of-range pages) — the identity quarantine
    /// entries are keyed to.
    #[inline]
    fn slot_ptr(&self, pid: PageId) -> usize {
        self.slot(pid.0 as usize).map_or(0, |a| Arc::as_ptr(a).cast::<u8>() as usize)
    }

    /// Allocates a zeroed page and returns its id. Recycles freed pages.
    ///
    /// Fails with [`StorageError::OutOfPages`] when the 32-bit page-id space
    /// is exhausted or an injected allocation budget runs out.
    pub fn try_allocate(&mut self) -> Result<PageId, StorageError> {
        if let Some(cell) = &self.fault {
            if cell.lock().deny_alloc() {
                return Err(StorageError::OutOfPages);
            }
        }
        let zeroed: Arc<[u8]> = vec![0u8; self.page_size].into();
        let zero_sum = if self.verify { crc32(&zeroed) } else { 0 };
        if let Some(pid) = self.free.pop() {
            let idx = pid.index();
            let group = self.group_mut(idx);
            group.slots[idx & GROUP_MASK] = Some(zeroed);
            group.sums[idx & GROUP_MASK] = zero_sum;
            self.dirty.insert(pid.0);
            return Ok(pid);
        }
        // PageId::INVALID (u32::MAX) is reserved, so the last usable id is
        // u32::MAX - 1.
        let idx = self.n_slots;
        if idx >= u32::MAX as usize {
            return Err(StorageError::OutOfPages);
        }
        let table = Arc::make_mut(&mut self.table);
        if idx >> GROUP_SHIFT == table.len() {
            table.push(Arc::new(PageGroup::empty()));
        }
        let group = Arc::make_mut(&mut table[idx >> GROUP_SHIFT]);
        group.slots[idx & GROUP_MASK] = Some(zeroed);
        group.sums[idx & GROUP_MASK] = zero_sum;
        self.n_slots += 1;
        self.dirty.insert(idx as u32);
        Ok(PageId(idx as u32))
    }

    /// Infallible [`Pager::try_allocate`]; panics on exhaustion.
    #[inline]
    pub fn allocate(&mut self) -> PageId {
        self.try_allocate().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Releases a page back to the allocator.
    ///
    /// Returns [`StorageError::DoubleFree`] for a page that is already free
    /// and [`StorageError::DeadPage`] for one that never existed.
    pub fn try_free(&mut self, pid: PageId) -> Result<(), StorageError> {
        let idx = pid.index();
        if idx >= self.n_slots {
            return Err(StorageError::DeadPage { pid, op: PageOp::Free });
        }
        if self.slot(idx).is_none() {
            return Err(StorageError::DoubleFree { pid });
        }
        self.group_mut(idx).slots[idx & GROUP_MASK] = None;
        self.free.push(pid);
        self.dirty.insert(pid.0);
        // Freeing releases the bad bytes; reallocation hands back a zeroed
        // page. This is how repair retires a quarantined page.
        self.clear_quarantine(pid);
        Ok(())
    }

    /// Infallible [`Pager::try_free`].
    ///
    /// # Panics
    /// Panics if `pid` is not a live page (double free or never allocated).
    #[inline]
    pub fn free(&mut self, pid: PageId) {
        self.try_free(pid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Reads a page, charging one read to this pager's category.
    ///
    /// Fails on dead pages, injected I/O errors, and (when checksums are on)
    /// pages whose contents no longer match their recorded CRC32.
    /// A quarantined page short-circuits in O(1): the memoized error comes
    /// back without a physical read (no category read is charged, no read
    /// delay is paid — the ledger's `quarantine_hits` counts the skip).
    pub fn try_read(&self, pid: PageId) -> Result<&[u8], StorageError> {
        if let Some(err) = self.quarantined_error(pid) {
            self.stats.record_quarantine_hits(1);
            return Err(err);
        }
        self.stats.record_reads(self.category, 1);
        if let Some(delay) = self.read_delay {
            // Charged with no lock held: concurrent readers must be able to
            // overlap these stalls, or serve_bench's wall-speedup gate fails.
            std::thread::sleep(delay);
        }
        // Lock-free unless read faults are armed. A plan whose read-error
        // probability is zero never consumes RNG state in `fail_read` (the
        // roll short-circuits), so skipping the lock entirely preserves the
        // plan's deterministic schedule for writes and allocations.
        if let Some(cell) = &self.fault {
            if cell.arms_reads.load(Ordering::Relaxed) && cell.lock().fail_read() {
                return Err(StorageError::Io { pid, op: PageOp::Read });
            }
        }
        let page =
            self.slot(pid.index()).ok_or(StorageError::DeadPage { pid, op: PageOp::Read })?;
        if self.verify {
            let expected = self.sum(pid.index());
            let actual = crc32(page);
            if expected != actual {
                // Deterministic: the same bytes will mismatch on every
                // probe, so memoize the failure. (Injected `Io` errors
                // above are transient and must keep re-rolling.)
                let err = StorageError::Corrupt { pid, expected, actual };
                self.quarantine(pid, err.clone());
                return Err(err);
            }
        }
        Ok(page)
    }

    /// Infallible [`Pager::try_read`].
    ///
    /// # Panics
    /// Panics if `pid` is not a live page (or an injected fault fires).
    #[inline]
    pub fn read(&self, pid: PageId) -> &[u8] {
        self.try_read(pid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Returns page contents *without* charging a disk access, bypassing
    /// fault injection and checksum verification (a pure memory view).
    ///
    /// Used by callers that have their own accounting policy, e.g. the
    /// [`crate::BufferPool`] (which charges only on cache miss) and in-memory
    /// rebuild passes that the paper does not count as query I/O.
    pub fn read_uncounted(&self, pid: PageId) -> &[u8] {
        self.slot(pid.index())
            .unwrap_or_else(|| panic!("{}", StorageError::DeadPage { pid, op: PageOp::Read }))
    }

    /// Overwrites a page, charging one write. `data` must be exactly one page.
    ///
    /// Injected write faults either fail the call (page untouched) or
    /// *silently* persist corrupted bytes — a torn prefix or one flipped bit —
    /// while the recorded checksum reflects the intended data, so the damage
    /// surfaces on a later checked read, exactly like real storage.
    pub fn try_write(&mut self, pid: PageId, data: &[u8]) -> Result<(), StorageError> {
        if data.len() != self.page_size {
            return Err(StorageError::ShortWrite { pid, len: data.len(), page_size: self.page_size });
        }
        self.stats.record_writes(self.category, 1);
        let effect = match &self.fault {
            Some(cell) => cell.lock().write_effect(self.page_size),
            None => WriteEffect::Clean,
        };
        if effect == WriteEffect::Fail {
            return Err(StorageError::Io { pid, op: PageOp::Write });
        }
        let idx = pid.index();
        if self.slot(idx).is_none() {
            return Err(StorageError::DeadPage { pid, op: PageOp::Write });
        }
        let verify = self.verify;
        let group = self.group_mut(idx);
        let slot = group.slots[idx & GROUP_MASK]
            .as_mut()
            .ok_or(StorageError::DeadPage { pid, op: PageOp::Write })?;
        let page = page_mut(slot);
        match effect {
            WriteEffect::Clean | WriteEffect::Fail => page.copy_from_slice(data),
            WriteEffect::Torn(n) => page[..n].copy_from_slice(&data[..n]),
            WriteEffect::BitFlip { byte, mask } => {
                page.copy_from_slice(data);
                page[byte] ^= mask;
            }
        }
        if verify {
            // Checksum of the *intended* bytes: torn/bit-flipped writes are
            // detected when the page is next read.
            group.sums[idx & GROUP_MASK] = crc32(data);
        }
        self.dirty.insert(pid.0);
        // A full overwrite replaces whatever bytes were bad: the page is
        // healed (a freshly injected torn/bit-flip write re-quarantines on
        // the next verified read).
        self.clear_quarantine(pid);
        Ok(())
    }

    /// Infallible [`Pager::try_write`].
    ///
    /// # Panics
    /// Panics if `pid` is not live or `data.len() != page_size`.
    #[inline]
    pub fn write(&mut self, pid: PageId, data: &[u8]) {
        self.try_write(pid, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// In-place page update via a closure, charging one read and one write.
    ///
    /// Injected read/write errors fail the call before the closure runs; an
    /// injected bit flip lands after the closure (torn writes do not apply to
    /// in-place updates). Convenient for node updates touching a few bytes.
    pub fn try_update<R>(
        &mut self,
        pid: PageId,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, StorageError> {
        // An in-place update reads the stored bytes first; on a quarantined
        // page those are known-bad, so serve the memoized failure instead of
        // mutating garbage. Heal with a full `try_write` or a free+rebuild.
        if let Some(err) = self.quarantined_error(pid) {
            self.stats.record_quarantine_hits(1);
            return Err(err);
        }
        self.stats.record_reads(self.category, 1);
        self.stats.record_writes(self.category, 1);
        let effect = match &self.fault {
            Some(cell) => {
                let mut plan = cell.lock();
                if plan.fail_read() {
                    return Err(StorageError::Io { pid, op: PageOp::Update });
                }
                plan.write_effect(self.page_size)
            }
            None => WriteEffect::Clean,
        };
        if effect == WriteEffect::Fail {
            return Err(StorageError::Io { pid, op: PageOp::Update });
        }
        let idx = pid.index();
        if self.slot(idx).is_none() {
            return Err(StorageError::DeadPage { pid, op: PageOp::Update });
        }
        let verify = self.verify;
        let group = self.group_mut(idx);
        let slot = group.slots[idx & GROUP_MASK]
            .as_mut()
            .ok_or(StorageError::DeadPage { pid, op: PageOp::Update })?;
        let page = page_mut(slot);
        let out = f(page);
        let sum = if verify { crc32(page) } else { 0 };
        if let WriteEffect::BitFlip { byte, mask } = effect {
            page[byte] ^= mask; // after the checksum: detected on next read
        }
        if verify {
            group.sums[idx & GROUP_MASK] = sum;
        }
        self.dirty.insert(pid.0);
        Ok(out)
    }

    /// Infallible [`Pager::try_update`].
    ///
    /// # Panics
    /// Panics if `pid` is not a live page (or an injected fault fires).
    #[inline]
    pub fn update<R>(&mut self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.try_update(pid, f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Serializes the pager's pages and free list (not counted as I/O;
    /// checkpointing is outside the query cost model).
    ///
    /// Image format (v2): `page_size u64 | n_pages u64 | per slot: tag u8
    /// (0 = dead, 1 = live) followed, when live, by the page bytes and their
    /// CRC32 | n_free u64 | free pids u32... | CRC32 of everything above`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let mut buf = [0u8; 8];
        crate::write_u64(&mut buf, 0, self.page_size as u64);
        out.extend_from_slice(&buf);
        crate::write_u64(&mut buf, 0, self.n_slots as u64);
        out.extend_from_slice(&buf);
        let mut b4 = [0u8; 4];
        for idx in 0..self.n_slots {
            match self.slot(idx) {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    out.extend_from_slice(p);
                    crate::write_u32(&mut b4, 0, crc32(p));
                    out.extend_from_slice(&b4);
                }
            }
        }
        crate::write_u64(&mut buf, 0, self.free.len() as u64);
        out.extend_from_slice(&buf);
        for pid in &self.free {
            crate::write_u32(&mut b4, 0, pid.0);
            out.extend_from_slice(&b4);
        }
        crate::write_u32(&mut b4, 0, crc32(&out[start..]));
        out.extend_from_slice(&b4);
    }

    /// Rebuilds a pager from [`Pager::serialize_into`] output, verifying the
    /// per-page checksums and the trailing image checksum. Returns the pager
    /// and the bytes consumed, or a precise [`ImageError`].
    pub fn try_deserialize_from(
        buf: &[u8],
        category: IoCategory,
        stats: SharedStats,
    ) -> Result<(Pager, usize), ImageError> {
        let err = |offset: usize, cause: &str| ImageError { offset, cause: cause.to_string() };
        let mut pos = 0usize;
        let page_size = read_u64_at(buf, &mut pos)
            .ok_or_else(|| err(0, "image shorter than the page-size header"))?
            as usize;
        if page_size == 0 || page_size > buf.len() {
            return Err(err(0, "implausible page size"));
        }
        let n_pages = read_u64_at(buf, &mut pos)
            .ok_or_else(|| err(8, "image shorter than the page-count header"))?
            as usize;
        // Every page slot costs at least one tag byte, bounding n_pages.
        if n_pages > buf.len() {
            return Err(err(8, "page count exceeds image size"));
        }
        let mut pages = Vec::with_capacity(n_pages);
        for i in 0..n_pages {
            let tag_pos = pos;
            let tag = *buf
                .get(pos)
                .ok_or_else(|| err(tag_pos, "image truncated inside the page table"))?;
            pos += 1;
            match tag {
                0 => pages.push(None),
                1 => {
                    let end = pos + page_size;
                    let page = buf
                        .get(pos..end)
                        .ok_or_else(|| err(tag_pos, "image truncated inside a page"))?;
                    pos = end;
                    let stored = read_u32_at(buf, &mut pos)
                        .ok_or_else(|| err(end, "image truncated before a page checksum"))?;
                    let actual = crc32(page);
                    if stored != actual {
                        return Err(ImageError {
                            offset: tag_pos,
                            cause: format!(
                                "page {i} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                            ),
                        });
                    }
                    pages.push(Some(page.to_vec().into_boxed_slice()));
                }
                _ => return Err(err(tag_pos, "invalid page tag (not 0 or 1)")),
            }
        }
        let free_pos = pos;
        let n_free = read_u64_at(buf, &mut pos)
            .ok_or_else(|| err(free_pos, "image truncated before the free list"))?
            as usize;
        if n_free > buf.len() {
            return Err(err(free_pos, "free-list length exceeds image size"));
        }
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            let v = read_u32_at(buf, &mut pos)
                .ok_or_else(|| err(pos, "image truncated inside the free list"))?;
            free.push(PageId(v));
        }
        let body_end = pos;
        let stored = read_u32_at(buf, &mut pos)
            .ok_or_else(|| err(body_end, "image truncated before the trailing checksum"))?;
        let actual = crc32(&buf[..body_end]);
        if stored != actual {
            return Err(ImageError {
                offset: body_end,
                cause: format!(
                    "image checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
                ),
            });
        }
        let (table, n_slots) = Self::build_table(pages);
        Ok((
            Pager {
                page_size,
                table,
                n_slots,
                free,
                category,
                stats,
                verify: false,
                fault: None,
                read_delay: None,
                dirty: BTreeSet::new(),
                quarantine: Arc::new(Quarantine::default()),
            },
            pos,
        ))
    }

    /// [`Pager::try_deserialize_from`] with the error collapsed to `None`.
    pub fn deserialize_from(
        buf: &[u8],
        category: IoCategory,
        stats: SharedStats,
    ) -> Option<(Pager, usize)> {
        Self::try_deserialize_from(buf, category, stats).ok()
    }
}

fn read_u64_at(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let end = pos.checked_add(8)?;
    let v = u64::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

fn read_u32_at(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let end = pos.checked_add(4)?;
    let v = u32::from_le_bytes(buf.get(*pos..end)?.try_into().ok()?);
    *pos = end;
    Some(v)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::stats::IoStats;
    use crate::PAGE_SIZE;

    fn pager() -> Pager {
        Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, IoStats::new_shared())
    }

    #[test]
    fn allocate_returns_zeroed_pages_with_dense_ids() {
        let mut p = pager();
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        assert!(p.read(a).iter().all(|&x| x == 0));
        assert_eq!(p.live_pages(), 2);
        assert_eq!(p.live_page_ids(), vec![a, b]);
        assert_eq!(p.size_bytes(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn write_then_read_roundtrips() {
        let mut p = pager();
        let pid = p.allocate();
        let mut data = vec![0u8; PAGE_SIZE];
        data[100] = 7;
        data[PAGE_SIZE - 1] = 9;
        p.write(pid, &data);
        let got = p.read(pid);
        assert_eq!(got[100], 7);
        assert_eq!(got[PAGE_SIZE - 1], 9);
    }

    #[test]
    fn freed_pages_are_recycled_zeroed() {
        let mut p = pager();
        let a = p.allocate();
        let mut data = vec![0xFFu8; PAGE_SIZE];
        data[0] = 1;
        p.write(a, &data);
        p.free(a);
        let b = p.allocate();
        assert_eq!(a, b, "free list should recycle");
        assert!(p.read(b).iter().all(|&x| x == 0), "recycled page must be zeroed");
    }

    #[test]
    fn reads_and_writes_are_counted_but_allocation_is_not() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::BptreePage, stats.clone());
        let pid = p.allocate();
        assert_eq!(stats.total_reads() + stats.total_writes(), 0);
        p.write(pid, &[1u8; 64]);
        let _ = p.read(pid);
        let _ = p.read_uncounted(pid);
        p.update(pid, |b| b[0] = 2);
        assert_eq!(stats.reads(IoCategory::BptreePage), 2); // read + update
        assert_eq!(stats.writes(IoCategory::BptreePage), 2); // write + update
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let mut p = pager();
        let a = p.allocate();
        p.free(a);
        p.free(a);
    }

    #[test]
    fn double_free_is_a_typed_error() {
        let mut p = pager();
        let a = p.allocate();
        p.free(a);
        assert_eq!(p.try_free(a), Err(StorageError::DoubleFree { pid: a }));
        assert_eq!(
            p.try_free(PageId(99)),
            Err(StorageError::DeadPage { pid: PageId(99), op: PageOp::Free })
        );
    }

    #[test]
    #[should_panic]
    fn short_write_panics() {
        let mut p = pager();
        let a = p.allocate();
        p.write(a, &[0u8; 10]);
    }

    #[test]
    fn short_write_is_a_typed_error() {
        let mut p = pager();
        let a = p.allocate();
        assert_eq!(
            p.try_write(a, &[0u8; 10]),
            Err(StorageError::ShortWrite { pid: a, len: 10, page_size: PAGE_SIZE })
        );
    }

    #[test]
    fn dead_reads_are_typed_errors() {
        let p = pager();
        assert_eq!(
            p.try_read(PageId(3)),
            Err(StorageError::DeadPage { pid: PageId(3), op: PageOp::Read })
        );
    }

    #[test]
    fn alloc_budget_yields_out_of_pages() {
        let mut p = pager();
        p.set_fault_plan(FaultPlan::seeded(7).with_alloc_budget(2));
        assert!(p.try_allocate().is_ok());
        assert!(p.try_allocate().is_ok());
        assert_eq!(p.try_allocate(), Err(StorageError::OutOfPages));
        assert_eq!(p.fault_counts().unwrap().denied_allocs, 1);
    }

    #[test]
    fn checksums_catch_silent_corruption() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        p.write(a, &[9u8; 64]);
        p.set_checksums(true);
        assert!(p.try_read(a).is_ok());
        p.corrupt_page(a, 13, 0b100).unwrap();
        match p.try_read(a) {
            Err(StorageError::Corrupt { pid, expected, actual }) => {
                assert_eq!(pid, a);
                assert_ne!(expected, actual);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Overwriting heals the page.
        p.write(a, &[1u8; 64]);
        assert!(p.try_read(a).is_ok());
    }

    #[test]
    fn quarantine_memoizes_a_corrupt_page_after_one_physical_read() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::SignaturePage, stats.clone());
        let a = p.allocate();
        p.write(a, &[9u8; 64]);
        p.set_checksums(true);
        p.corrupt_page(a, 5, 0xFF).unwrap();
        let base = stats.snapshot();
        // Regression: a known-bad page must cost exactly ONE physical read;
        // every later probe is served from the quarantine in O(1).
        let first = p.try_read(a);
        assert!(matches!(first, Err(StorageError::Corrupt { .. })));
        assert!(p.is_quarantined(a));
        for _ in 0..9 {
            assert_eq!(p.try_read(a), first, "memoized error is stable");
        }
        let delta = stats.snapshot().since(&base);
        assert_eq!(delta.reads(IoCategory::SignaturePage), 1, "one doomed read, then skips");
        assert_eq!(delta.quarantine_hits(), 9);
        assert_eq!(delta.pages_quarantined(), 1, "recorded exactly once");
        assert_eq!(stats.pages_repaired(), 0);
    }

    #[test]
    fn overwrite_and_free_heal_a_quarantined_page() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::SignaturePage, stats.clone());
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, &[1u8; 64]);
        p.write(b, &[2u8; 64]);
        p.set_checksums(true);
        p.corrupt_page(a, 0, 1).unwrap();
        p.corrupt_page(b, 0, 1).unwrap();
        assert!(p.try_read(a).is_err());
        assert!(p.try_read(b).is_err());
        assert_eq!(p.quarantine_len(), 2);
        // Heal one page by overwriting, the other by freeing it.
        p.write(a, &[7u8; 64]);
        assert!(!p.is_quarantined(a));
        assert_eq!(p.try_read(a).unwrap()[0], 7);
        p.free(b);
        assert_eq!(p.quarantine_len(), 0);
        assert_eq!(stats.pages_repaired(), 2);
        // The recycled slot comes back zeroed and readable.
        let b2 = p.allocate();
        assert_eq!(b2, b);
        assert!(p.try_read(b2).is_ok());
    }

    #[test]
    fn quarantine_update_is_blocked_and_entries_carry_the_epoch() {
        let mut p = Pager::new(64, IoCategory::BptreePage, IoStats::new_shared());
        let a = p.allocate();
        p.write(a, &[3u8; 64]);
        p.set_checksums(true);
        p.set_quarantine_epoch(17);
        p.corrupt_page(a, 1, 0x10).unwrap();
        assert!(p.try_read(a).is_err());
        // In-place updates must not mutate known-bad bytes.
        assert!(matches!(p.try_update(a, |pg| pg[0] = 1), Err(StorageError::Corrupt { .. })));
        let entries = p.quarantine_entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, a);
        assert_eq!(entries[0].1.epoch, 17);
    }

    #[test]
    fn quarantine_is_shared_across_cow_clones() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        p.write(a, &[4u8; 64]);
        p.set_checksums(true);
        p.corrupt_page(a, 2, 0x08).unwrap();
        let snapshot = p.clone();
        assert!(snapshot.try_read(a).is_err(), "clone sees the shared corrupt page");
        assert!(p.is_quarantined(a), "quarantined through the clone's probe");
        // Healing the master clears the shared registry for both handles.
        p.write(a, &[5u8; 64]);
        assert!(!snapshot.is_quarantined(a));
    }

    #[test]
    fn transient_injected_read_errors_are_not_quarantined() {
        let mut p = Pager::new(64, IoCategory::HeapScan, IoStats::new_shared());
        let a = p.allocate();
        p.set_fault_plan(FaultPlan::seeded(11).with_read_errors(0.5));
        for _ in 0..50 {
            let _ = p.try_read(a);
        }
        assert_eq!(p.quarantine_len(), 0, "injected Io faults stay transient");
    }

    #[test]
    fn torn_writes_are_detected_by_checksums() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        p.set_checksums(true);
        p.set_fault_plan(FaultPlan::seeded(3).with_torn_writes(1.0));
        p.try_write(a, &[0xAB; 64]).unwrap();
        assert_eq!(p.fault_counts().unwrap().torn_writes, 1);
        assert!(
            matches!(p.try_read(a), Err(StorageError::Corrupt { .. })),
            "a torn write of nonzero bytes over a zeroed page must break the checksum"
        );
    }

    #[test]
    fn injected_read_errors_fire_at_the_configured_rate() {
        let mut p = Pager::new(64, IoCategory::HeapScan, IoStats::new_shared());
        let a = p.allocate();
        p.set_fault_plan(FaultPlan::seeded(11).with_read_errors(0.5));
        let failures = (0..200).filter(|_| p.try_read(a).is_err()).count();
        assert!((50..150).contains(&failures), "got {failures} failures out of 200");
        assert_eq!(p.fault_counts().unwrap().read_errors as usize, failures);
    }

    #[test]
    fn plans_without_read_faults_leave_the_read_path_lock_free() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::HeapScan, stats.clone());
        let a = p.allocate();
        p.write(a, &[9u8; 64]);
        // Write/alloc-only plan: reads must not take the plan mutex, and the
        // plan's RNG schedule must be untouched by reads (fail_read with
        // p = 0 consumes no RNG state).
        p.set_fault_plan(FaultPlan::seeded(42).with_write_errors(1.0).with_alloc_budget(0));
        assert!(!p.fault_arms_reads());
        let before = stats.snapshot().reads(IoCategory::HeapScan);
        for _ in 0..100 {
            assert!(p.try_read(a).is_ok(), "reads are unfaulted");
        }
        let after = stats.snapshot().reads(IoCategory::HeapScan);
        assert_eq!(after - before, 100, "every read is still counted");
        let counts = p.fault_counts().unwrap();
        assert_eq!(counts.read_errors, 0);
        // The write schedule is unaffected by the 100 lock-free reads: the
        // very first write still fails deterministically.
        assert!(p.try_write(a, &[1u8; 64]).is_err());
        // A plan that does arm reads flips the flag.
        p.set_fault_plan(FaultPlan::seeded(42).with_read_errors(0.1));
        assert!(p.fault_arms_reads());
    }

    #[test]
    fn read_delay_is_off_by_default_and_does_not_change_counts() {
        let stats = IoStats::new_shared();
        let mut p = Pager::new(64, IoCategory::RtreeBlock, stats.clone());
        let a = p.allocate();
        assert!(p.read_delay().is_none());
        p.set_read_delay(Some(Duration::from_micros(50)));
        assert_eq!(p.read_delay(), Some(Duration::from_micros(50)));
        let before = stats.snapshot().reads(IoCategory::RtreeBlock);
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            p.try_read(a).unwrap();
        }
        assert!(t0.elapsed() >= Duration::from_micros(500), "delay is actually paid");
        assert_eq!(stats.snapshot().reads(IoCategory::RtreeBlock) - before, 10);
        // Zero disables rather than sleeping for 0ns per read.
        p.set_read_delay(Some(Duration::ZERO));
        assert!(p.read_delay().is_none());
        p.set_read_delay(None);
        assert!(p.read_delay().is_none());
    }

    #[test]
    fn serialization_roundtrips_pages_and_free_list() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        let b = p.allocate();
        let c = p.allocate();
        p.write(a, &[1u8; 64]);
        p.write(b, &[2u8; 64]);
        p.write(c, &[3u8; 64]);
        p.free(b);
        let mut bytes = Vec::new();
        p.serialize_into(&mut bytes);
        let (q, used) =
            Pager::deserialize_from(&bytes, IoCategory::SignaturePage, IoStats::new_shared())
                .expect("roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(q.page_size(), 64);
        assert_eq!(q.live_pages(), 2);
        assert_eq!(q.read_uncounted(a)[0], 1);
        assert_eq!(q.read_uncounted(c)[0], 3);
        // The free list survives: the next allocation reuses b.
        let mut q = q;
        assert_eq!(q.allocate(), b);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        for bytes in [&b""[..], &[0u8; 4][..], &[0xFFu8; 64][..]] {
            assert!(Pager::deserialize_from(
                bytes,
                IoCategory::RtreeBlock,
                IoStats::new_shared()
            )
            .is_none());
        }
    }

    #[test]
    fn deserialize_pinpoints_corrupt_pages() {
        let mut p = Pager::new(32, IoCategory::RtreeBlock, IoStats::new_shared());
        let a = p.allocate();
        p.write(a, &[5u8; 32]);
        let mut bytes = Vec::new();
        p.serialize_into(&mut bytes);
        // Flip one bit inside the stored page (after the two u64 headers and
        // the tag byte).
        let mut corrupt = bytes.clone();
        corrupt[16 + 1 + 4] ^= 0x10;
        let e = Pager::try_deserialize_from(&corrupt, IoCategory::RtreeBlock, IoStats::new_shared())
            .unwrap_err();
        assert!(e.cause.contains("checksum mismatch"), "cause: {}", e.cause);
        assert!(e.offset <= corrupt.len());
        // Truncations are reported too.
        let e = Pager::try_deserialize_from(&bytes[..bytes.len() - 2], IoCategory::RtreeBlock, IoStats::new_shared())
            .unwrap_err();
        assert!(e.cause.contains("truncated"), "cause: {}", e.cause);
    }

    #[test]
    fn dirty_tracking_covers_every_mutation_kind() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!(p.take_dirty(), vec![a, b], "allocation dirties");
        assert_eq!(p.dirty_len(), 0);

        p.write(b, &[7u8; 64]);
        p.update(a, |buf| buf[0] = 1);
        assert_eq!(p.take_dirty(), vec![a, b], "drain is in ascending page order");

        let _ = p.read(a);
        let _ = p.read_uncounted(b);
        assert_eq!(p.dirty_len(), 0, "reads never dirty");

        p.free(a);
        assert_eq!(p.take_dirty(), vec![a], "frees dirty (checkpoint must drop the page)");
        assert_eq!(p.free_list(), vec![a]);
        assert_eq!(p.page_bytes(a), None);
        assert_eq!(p.page_bytes(b).map(|s| s[0]), Some(7));

        // Clone carries the dirty set; clear_dirty forgets it.
        p.write(b, &[8u8; 64]);
        let mut q = p.clone();
        assert_eq!(q.take_dirty(), vec![b]);
        p.clear_dirty();
        assert_eq!(p.dirty_len(), 0);
    }

    #[test]
    fn from_pages_rebuilds_an_equivalent_pager() {
        let mut p = Pager::new(32, IoCategory::RtreeBlock, IoStats::new_shared());
        let a = p.allocate();
        let b = p.allocate();
        p.write(a, &[3u8; 32]);
        p.free(b);
        let pages: Vec<Option<Box<[u8]>>> =
            (0..p.n_slots()).map(|i| p.page_bytes(PageId(i as u32)).map(|s| s.to_vec().into_boxed_slice())).collect();
        let mut q = Pager::from_pages(32, pages, p.free_list(), IoCategory::RtreeBlock, IoStats::new_shared());
        assert_eq!(q.live_pages(), 1);
        assert_eq!(q.read_uncounted(a)[0], 3);
        assert_eq!(q.allocate(), b, "free list survives");
        assert_eq!(q.take_dirty(), vec![b], "rebuild starts clean; only the new alloc is dirty");
    }

    #[test]
    fn clone_shares_pages_until_either_side_writes() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let pids: Vec<PageId> = (0..200).map(|_| p.allocate()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.write(pid, &[i as u8; 64]);
        }
        let mut q = p.clone();
        assert_eq!(p.pages_shared_with(&q), 200, "a fresh clone shares every page");

        // A write on either side re-owns only the touched page; the other
        // side keeps the old bytes (snapshot isolation at page granularity).
        q.write(pids[7], &[0xEE; 64]);
        assert_eq!(p.pages_shared_with(&q), 199);
        assert_eq!(p.read(pids[7])[0], 7, "the original must not see the clone's write");
        assert_eq!(q.read(pids[7])[0], 0xEE);

        p.update(pids[100], |b| b[0] = 0xAA);
        assert_eq!(p.pages_shared_with(&q), 198);
        assert_eq!(q.read(pids[100])[0], 100, "the clone must not see the original's update");

        // Frees and recycled allocations on the clone leave the original intact.
        q.free(pids[3]);
        assert_eq!(q.allocate(), pids[3]);
        assert!(q.read(pids[3]).iter().all(|&b| b == 0));
        assert_eq!(p.read(pids[3])[0], 3);
    }

    #[test]
    fn checksums_work_across_cow_clones() {
        let mut p = Pager::new(64, IoCategory::SignaturePage, IoStats::new_shared());
        let a = p.allocate();
        p.write(a, &[5u8; 64]);
        p.set_checksums(true);
        let mut q = p.clone();
        q.write(a, &[6u8; 64]);
        assert!(p.try_read(a).is_ok());
        assert!(q.try_read(a).is_ok());
        // Corruption on the clone is detected there and invisible to the
        // original.
        q.corrupt_page(a, 10, 0x40).unwrap();
        assert!(matches!(q.try_read(a), Err(StorageError::Corrupt { .. })));
        assert!(p.try_read(a).is_ok());
        assert_eq!(p.read(a)[10], 5);
    }

    #[test]
    fn update_mutates_in_place() {
        let mut p = pager();
        let a = p.allocate();
        let out = p.update(a, |buf| {
            buf[3] = 42;
            "done"
        });
        assert_eq!(out, "done");
        assert_eq!(p.read(a)[3], 42);
    }
}
