//! I/O accounting: categories, counters and the modeled cost function.
//!
//! The ledger is lock-free: every counter is an [`AtomicU64`] bumped with
//! relaxed ordering, so many query threads can charge I/O to one shared
//! [`IoStats`] concurrently without lost updates (the concurrency stress
//! tests assert exact totals). Snapshots read each counter individually and
//! are therefore not a single atomic cut across categories — per-query
//! deltas taken while other threads run may interleave, which is why the
//! throughput harness verifies *totals*, not per-thread cuts.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The kinds of disk access the paper's evaluation distinguishes.
///
/// Figure 9 plots `DBool` (random tuple accesses by the domination-first
/// baseline), `DBlock`/`SBlock` (R-tree block retrievals) and `SSig`
/// (signature page loads). Figures 5/6 additionally involve B+-tree pages and
/// sequential heap-file scans, so those get their own buckets too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoCategory {
    /// R-tree node (block) retrieval.
    RtreeBlock,
    /// Partial-signature page load.
    SignaturePage,
    /// B+-tree page read (boolean-dimension indexes and the signature
    /// directory).
    BptreePage,
    /// Random access to a base-table tuple by tid (boolean verification in
    /// the domination-first baseline).
    TupleRandomAccess,
    /// Sequential heap-file page scan (table-scan alternative of the
    /// boolean-first baseline).
    HeapScan,
}

impl IoCategory {
    /// All categories, in display order.
    pub const ALL: [IoCategory; 5] = [
        IoCategory::RtreeBlock,
        IoCategory::SignaturePage,
        IoCategory::BptreePage,
        IoCategory::TupleRandomAccess,
        IoCategory::HeapScan,
    ];

    fn slot(self) -> usize {
        match self {
            IoCategory::RtreeBlock => 0,
            IoCategory::SignaturePage => 1,
            IoCategory::BptreePage => 2,
            IoCategory::TupleRandomAccess => 3,
            IoCategory::HeapScan => 4,
        }
    }
}

impl fmt::Display for IoCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IoCategory::RtreeBlock => "rtree-block",
            IoCategory::SignaturePage => "signature-page",
            IoCategory::BptreePage => "bptree-page",
            IoCategory::TupleRandomAccess => "tuple-random",
            IoCategory::HeapScan => "heap-scan",
        };
        f.write_str(name)
    }
}

/// Shared, thread-safe I/O ledger.
///
/// One `IoStats` is typically shared (via [`SharedStats`]) by every pager in a
/// database instance, so an experiment can snapshot, run a query, and diff.
/// Counters are atomics; concurrent recording from many query threads never
/// loses an update.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: [AtomicU64; 5],
    writes: [AtomicU64; 5],
    /// Signature loads that failed and fell back to unfiltered traversal.
    degraded_reads: AtomicU64,
    /// WAL fsync attempts that failed transiently and were retried.
    wal_retries: AtomicU64,
    /// Total microseconds spent in exponential backoff between WAL fsync
    /// retries. Soak harnesses assert this stays bounded — transient storage
    /// faults must surface as bounded retries, never silent stalls.
    wal_backoff_us: AtomicU64,
    /// Pages whose deterministic read failure was memoized in a pager's
    /// quarantine registry (each page counts once per quarantine episode).
    pages_quarantined: AtomicU64,
    /// Reads answered from a quarantine entry in O(1) — the doomed physical
    /// read was skipped, so these do *not* also count as category reads.
    quarantine_hits: AtomicU64,
    /// Quarantined pages healed back to service: rewritten with fresh
    /// contents or freed and rebuilt by the repair path.
    pages_repaired: AtomicU64,
}

/// Reference-counted, thread-safe handle to an [`IoStats`] ledger.
pub type SharedStats = Arc<IoStats>;

impl IoStats {
    /// Creates a fresh ledger behind an `Arc`, ready to share between pagers
    /// (and across query threads).
    pub fn new_shared() -> SharedStats {
        Arc::new(IoStats::default())
    }

    /// Records `n` page reads in `category`.
    #[inline]
    pub fn record_reads(&self, category: IoCategory, n: u64) {
        self.reads[category.slot()].fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` page writes in `category`.
    #[inline]
    pub fn record_writes(&self, category: IoCategory, n: u64) {
        self.writes[category.slot()].fetch_add(n, Ordering::Relaxed);
    }

    /// Number of reads recorded in `category`.
    #[inline]
    pub fn reads(&self, category: IoCategory) -> u64 {
        self.reads[category.slot()].load(Ordering::Relaxed)
    }

    /// Number of writes recorded in `category`.
    #[inline]
    pub fn writes(&self, category: IoCategory) -> u64 {
        self.writes[category.slot()].load(Ordering::Relaxed)
    }

    /// Total reads across all categories.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total writes across all categories.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Reads recorded since a `total_reads()` baseline, saturating at
    /// zero. This is the budget-enforcement hook: a query captures
    /// `total_reads()` when it starts and the governor charges it
    /// `reads_since(base)` blocks — on a ledger shared between threads
    /// the delta may include neighbours' reads, so block budgets trip
    /// conservatively early, never late.
    #[inline]
    pub fn reads_since(&self, base: u64) -> u64 {
        self.total_reads().saturating_sub(base)
    }

    /// Records `n` degraded reads: storage-level failures (corrupt or
    /// unreadable signature data) that the query layer survived by falling
    /// back to unfiltered traversal. Queries stay correct; only pruning is
    /// lost.
    #[inline]
    pub fn record_degraded_reads(&self, n: u64) {
        self.degraded_reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Number of degraded reads recorded so far.
    #[inline]
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads.load(Ordering::Relaxed)
    }

    /// Records one retried WAL fsync and the backoff it paid before the
    /// retry. The WAL's durability path calls this for every transient fsync
    /// failure it absorbs, so harnesses can assert retries are bounded.
    #[inline]
    pub fn record_wal_retry(&self, backoff_us: u64) {
        self.wal_retries.fetch_add(1, Ordering::Relaxed);
        self.wal_backoff_us.fetch_add(backoff_us, Ordering::Relaxed);
    }

    /// Number of transiently-failed-and-retried WAL fsyncs so far.
    #[inline]
    pub fn wal_retries(&self) -> u64 {
        self.wal_retries.load(Ordering::Relaxed)
    }

    /// Total microseconds of WAL fsync retry backoff paid so far.
    #[inline]
    pub fn wal_backoff_us(&self) -> u64 {
        self.wal_backoff_us.load(Ordering::Relaxed)
    }

    /// Records `n` pages entering quarantine (first failure only; repeat
    /// probes of an already-quarantined page count as hits instead).
    #[inline]
    pub fn record_pages_quarantined(&self, n: u64) {
        self.pages_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Pages quarantined so far.
    #[inline]
    pub fn pages_quarantined(&self) -> u64 {
        self.pages_quarantined.load(Ordering::Relaxed)
    }

    /// Records `n` reads short-circuited by a quarantine entry.
    #[inline]
    pub fn record_quarantine_hits(&self, n: u64) {
        self.quarantine_hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads short-circuited by quarantine entries so far.
    #[inline]
    pub fn quarantine_hits(&self) -> u64 {
        self.quarantine_hits.load(Ordering::Relaxed)
    }

    /// Records `n` quarantined pages healed (rewritten or freed-and-rebuilt).
    #[inline]
    pub fn record_pages_repaired(&self, n: u64) {
        self.pages_repaired.fetch_add(n, Ordering::Relaxed);
    }

    /// Quarantined pages healed so far.
    #[inline]
    pub fn pages_repaired(&self) -> u64 {
        self.pages_repaired.load(Ordering::Relaxed)
    }

    /// Copies the current counter values into an owned [`IoSnapshot`].
    ///
    /// Each counter is read independently; while other threads are recording,
    /// the snapshot is not a single atomic cut (totals are still exact once
    /// the recording threads have quiesced).
    pub fn snapshot(&self) -> IoSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        IoSnapshot {
            reads: [
                load(&self.reads[0]),
                load(&self.reads[1]),
                load(&self.reads[2]),
                load(&self.reads[3]),
                load(&self.reads[4]),
            ],
            writes: [
                load(&self.writes[0]),
                load(&self.writes[1]),
                load(&self.writes[2]),
                load(&self.writes[3]),
                load(&self.writes[4]),
            ],
            degraded_reads: load(&self.degraded_reads),
            wal_retries: load(&self.wal_retries),
            wal_backoff_us: load(&self.wal_backoff_us),
            pages_quarantined: load(&self.pages_quarantined),
            quarantine_hits: load(&self.quarantine_hits),
            pages_repaired: load(&self.pages_repaired),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.reads {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.writes {
            c.store(0, Ordering::Relaxed);
        }
        self.degraded_reads.store(0, Ordering::Relaxed);
        self.wal_retries.store(0, Ordering::Relaxed);
        self.wal_backoff_us.store(0, Ordering::Relaxed);
        self.pages_quarantined.store(0, Ordering::Relaxed);
        self.quarantine_hits.store(0, Ordering::Relaxed);
        self.pages_repaired.store(0, Ordering::Relaxed);
    }
}

/// An owned copy of the counters, used to measure a single operation by
/// subtracting two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    reads: [u64; 5],
    writes: [u64; 5],
    degraded_reads: u64,
    wal_retries: u64,
    wal_backoff_us: u64,
    pages_quarantined: u64,
    quarantine_hits: u64,
    pages_repaired: u64,
}

impl IoSnapshot {
    /// Reads recorded in `category` at snapshot time.
    pub fn reads(&self, category: IoCategory) -> u64 {
        self.reads[category.slot()]
    }

    /// Writes recorded in `category` at snapshot time.
    pub fn writes(&self, category: IoCategory) -> u64 {
        self.writes[category.slot()]
    }

    /// Degraded reads recorded at snapshot time.
    pub fn degraded_reads(&self) -> u64 {
        self.degraded_reads
    }

    /// Retried WAL fsyncs recorded at snapshot time.
    pub fn wal_retries(&self) -> u64 {
        self.wal_retries
    }

    /// Microseconds of WAL fsync retry backoff recorded at snapshot time.
    pub fn wal_backoff_us(&self) -> u64 {
        self.wal_backoff_us
    }

    /// Pages quarantined at snapshot time.
    pub fn pages_quarantined(&self) -> u64 {
        self.pages_quarantined
    }

    /// Quarantine-served reads at snapshot time.
    pub fn quarantine_hits(&self) -> u64 {
        self.quarantine_hits
    }

    /// Quarantined pages healed at snapshot time.
    pub fn pages_repaired(&self) -> u64 {
        self.pages_repaired
    }

    /// Counter-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        let mut out = IoSnapshot::default();
        for i in 0..5 {
            out.reads[i] = self.reads[i].saturating_sub(earlier.reads[i]);
            out.writes[i] = self.writes[i].saturating_sub(earlier.writes[i]);
        }
        out.degraded_reads = self.degraded_reads.saturating_sub(earlier.degraded_reads);
        out.wal_retries = self.wal_retries.saturating_sub(earlier.wal_retries);
        out.wal_backoff_us = self.wal_backoff_us.saturating_sub(earlier.wal_backoff_us);
        out.pages_quarantined = self.pages_quarantined.saturating_sub(earlier.pages_quarantined);
        out.quarantine_hits = self.quarantine_hits.saturating_sub(earlier.quarantine_hits);
        out.pages_repaired = self.pages_repaired.saturating_sub(earlier.pages_repaired);
        out
    }

    /// Total reads across all categories.
    pub fn total_reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total writes across all categories.
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().sum()
    }
}

/// Converts an I/O ledger into modeled seconds.
///
/// The experiments in this repository run entirely in RAM, so raw wall-clock
/// alone would hide the disk behaviour the paper measures (a random tuple
/// access costs the same as a cached read in RAM, but ~10 ms on a 2008-era
/// disk). The cost model charges each access category a configurable latency;
/// figure runners report `cpu_seconds + modeled_io_seconds`.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Cost of one random page access (seek + rotational delay + transfer).
    pub random_page_seconds: f64,
    /// Cost of one sequentially scanned page.
    pub sequential_page_seconds: f64,
}

impl Default for CostModel {
    /// A 2008-era commodity disk: ~10 ms random access, ~0.1 ms per
    /// sequential 4 KB page (≈ 40 MB/s streaming).
    fn default() -> Self {
        CostModel {
            random_page_seconds: 10e-3,
            sequential_page_seconds: 0.1e-3,
        }
    }
}

impl CostModel {
    /// Modeled seconds for the accesses recorded in `snap`.
    ///
    /// Heap scans are charged the sequential rate; every other category is a
    /// random access. Writes are charged like random reads (the maintenance
    /// experiment, Fig 7, is write-heavy).
    pub fn seconds(&self, snap: &IoSnapshot) -> f64 {
        let mut s = 0.0;
        for cat in IoCategory::ALL {
            let per_page = match cat {
                IoCategory::HeapScan => self.sequential_page_seconds,
                _ => self.random_page_seconds,
            };
            s += (snap.reads(cat) + snap.writes(cat)) as f64 * per_page;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_category() {
        let stats = IoStats::default();
        stats.record_reads(IoCategory::RtreeBlock, 3);
        stats.record_reads(IoCategory::SignaturePage, 1);
        stats.record_writes(IoCategory::BptreePage, 2);
        assert_eq!(stats.reads(IoCategory::RtreeBlock), 3);
        assert_eq!(stats.reads(IoCategory::SignaturePage), 1);
        assert_eq!(stats.reads(IoCategory::BptreePage), 0);
        assert_eq!(stats.writes(IoCategory::BptreePage), 2);
        assert_eq!(stats.total_reads(), 4);
        assert_eq!(stats.total_writes(), 2);
    }

    #[test]
    fn reads_since_is_a_saturating_delta_on_totals() {
        let stats = IoStats::default();
        stats.record_reads(IoCategory::RtreeBlock, 10);
        let base = stats.total_reads();
        assert_eq!(stats.reads_since(base), 0);
        stats.record_reads(IoCategory::SignaturePage, 4);
        stats.record_reads(IoCategory::HeapScan, 2);
        assert_eq!(stats.reads_since(base), 6);
        assert_eq!(stats.reads_since(base + 100), 0, "stale base saturates");
    }

    #[test]
    fn snapshot_diff_isolates_an_operation() {
        let stats = IoStats::default();
        stats.record_reads(IoCategory::RtreeBlock, 10);
        let before = stats.snapshot();
        stats.record_reads(IoCategory::RtreeBlock, 5);
        stats.record_reads(IoCategory::TupleRandomAccess, 7);
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.reads(IoCategory::RtreeBlock), 5);
        assert_eq!(delta.reads(IoCategory::TupleRandomAccess), 7);
        assert_eq!(delta.total_reads(), 12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let stats = IoStats::default();
        stats.record_reads(IoCategory::HeapScan, 9);
        stats.record_writes(IoCategory::HeapScan, 9);
        stats.reset();
        assert_eq!(stats.total_reads(), 0);
        assert_eq!(stats.total_writes(), 0);
    }

    #[test]
    fn cost_model_charges_sequential_scans_less() {
        let stats = IoStats::default();
        stats.record_reads(IoCategory::HeapScan, 100);
        let seq = CostModel::default().seconds(&stats.snapshot());
        stats.reset();
        stats.record_reads(IoCategory::TupleRandomAccess, 100);
        let rand = CostModel::default().seconds(&stats.snapshot());
        assert!(rand > 10.0 * seq, "random {rand} vs sequential {seq}");
    }

    #[test]
    fn concurrent_recording_loses_no_updates() {
        let stats = IoStats::new_shared();
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let stats = stats.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        stats.record_reads(IoCategory::RtreeBlock, 1);
                        stats.record_writes(IoCategory::SignaturePage, 1);
                        stats.record_degraded_reads(1);
                    }
                });
            }
        });
        assert_eq!(stats.reads(IoCategory::RtreeBlock), threads * per_thread);
        assert_eq!(stats.writes(IoCategory::SignaturePage), threads * per_thread);
        assert_eq!(stats.degraded_reads(), threads * per_thread);
    }

    #[test]
    fn category_display_names_are_stable() {
        let names: Vec<String> = IoCategory::ALL.iter().map(|c| c.to_string()).collect();
        assert_eq!(
            names,
            ["rtree-block", "signature-page", "bptree-page", "tuple-random", "heap-scan"]
        );
    }
}
