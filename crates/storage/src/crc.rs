//! Hand-rolled CRC32 (IEEE 802.3 polynomial), kept in-tree so the checksum
//! layer adds no dependency.

/// Table of CRC32 remainders for every byte value, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    // Reflected polynomial of the IEEE CRC32 (0x04C11DB7).
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `data`, matching the common zlib/`crc32` convention.
#[inline]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = vec![0xA5u8; 512];
        let clean = crc32(&data);
        for byte in [0usize, 17, 511] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
