//! Deterministic fault injection for the pager.
//!
//! A [`FaultPlan`] is a seeded random schedule of storage misbehavior: read
//! and write I/O errors, torn (partial) page writes, single-bit corruption,
//! and allocation exhaustion. Chaos tests install a plan on a [`crate::Pager`]
//! and then assert that every index layered above either returns a typed
//! error or a provably correct answer — never a panic, never a silent wrong
//! result.
//!
//! Plans are driven by their own xorshift64* generator, so a given seed
//! reproduces the exact same fault schedule on every run and platform. A
//! pager with no plan installed pays a single well-predicted branch per
//! operation (see `DESIGN.md` §6).

/// Running tally of the faults a plan has actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Reads that failed with [`crate::StorageError::Io`].
    pub read_errors: u64,
    /// Writes that failed with [`crate::StorageError::Io`].
    pub write_errors: u64,
    /// Writes that only applied a prefix of the page.
    pub torn_writes: u64,
    /// Writes that flipped one stored bit.
    pub bit_flips: u64,
    /// Allocations denied by the budget.
    pub denied_allocs: u64,
}

impl FaultCounts {
    /// Total number of injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.read_errors + self.write_errors + self.torn_writes + self.bit_flips + self.denied_allocs
    }
}

/// What a fault plan decided to do to one write. Crate-private: the pager is
/// the only fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteEffect {
    /// Write goes through untouched.
    Clean,
    /// Write fails with an I/O error; the page keeps its previous contents.
    Fail,
    /// Only the first `n` bytes reach the page (a torn write).
    Torn(usize),
    /// The write lands, then bit `mask` of byte `byte` flips silently.
    BitFlip {
        /// Byte index within the page.
        byte: usize,
        /// Single-bit mask to XOR into that byte.
        mask: u8,
    },
}

/// A seeded, deterministic schedule of injected storage faults.
///
/// Built with [`FaultPlan::seeded`] (which yields a *quiescent* plan — all
/// fault rates zero, unlimited allocations) and configured with the `with_*`
/// builders. Install on a pager with [`crate::Pager::set_fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    read_error: f64,
    write_error: f64,
    torn_write: f64,
    bit_flip: f64,
    alloc_budget: Option<u64>,
    counts: FaultCounts,
}

impl FaultPlan {
    /// A quiescent plan: deterministic, but injecting nothing until fault
    /// rates or budgets are configured.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            // xorshift64* requires a nonzero state.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            read_error: 0.0,
            write_error: 0.0,
            torn_write: 0.0,
            bit_flip: 0.0,
            alloc_budget: None,
            counts: FaultCounts::default(),
        }
    }

    /// Probability in `[0, 1]` that a counted read fails with an I/O error.
    pub fn with_read_errors(mut self, p: f64) -> Self {
        self.read_error = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write fails outright (page left untouched).
    pub fn with_write_errors(mut self, p: f64) -> Self {
        self.write_error = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write is torn: only a random prefix lands.
    pub fn with_torn_writes(mut self, p: f64) -> Self {
        self.torn_write = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write silently flips one stored bit.
    pub fn with_bit_flips(mut self, p: f64) -> Self {
        self.bit_flip = p.clamp(0.0, 1.0);
        self
    }

    /// Allows only `n` further allocations; the rest fail with
    /// [`crate::StorageError::OutOfPages`].
    pub fn with_alloc_budget(mut self, n: u64) -> Self {
        self.alloc_budget = Some(n);
        self
    }

    /// The faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: tiny, full-period, and plenty for fault scheduling.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let sample = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }

    pub(crate) fn fail_read(&mut self) -> bool {
        let fail = self.roll(self.read_error);
        if fail {
            self.counts.read_errors += 1;
        }
        fail
    }

    pub(crate) fn write_effect(&mut self, page_size: usize) -> WriteEffect {
        if self.roll(self.write_error) {
            self.counts.write_errors += 1;
            return WriteEffect::Fail;
        }
        if page_size > 0 && self.roll(self.torn_write) {
            self.counts.torn_writes += 1;
            return WriteEffect::Torn((self.next() as usize) % page_size);
        }
        if page_size > 0 && self.roll(self.bit_flip) {
            self.counts.bit_flips += 1;
            let byte = (self.next() as usize) % page_size;
            let mask = 1u8 << (self.next() % 8);
            return WriteEffect::BitFlip { byte, mask };
        }
        WriteEffect::Clean
    }

    pub(crate) fn deny_alloc(&mut self) -> bool {
        match self.alloc_budget {
            None => false,
            Some(0) => {
                self.counts.denied_allocs += 1;
                true
            }
            Some(ref mut n) => {
                *n -= 1;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_means_same_schedule() {
        let mut a = FaultPlan::seeded(99).with_read_errors(0.3).with_torn_writes(0.2);
        let mut b = FaultPlan::seeded(99).with_read_errors(0.3).with_torn_writes(0.2);
        for _ in 0..500 {
            assert_eq!(a.fail_read(), b.fail_read());
            assert_eq!(a.write_effect(4096), b.write_effect(4096));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "30%/20% rates over 500 ops must fire");
    }

    #[test]
    fn quiescent_plan_injects_nothing() {
        let mut p = FaultPlan::seeded(1);
        for _ in 0..1000 {
            assert!(!p.fail_read());
            assert_eq!(p.write_effect(64), WriteEffect::Clean);
            assert!(!p.deny_alloc());
        }
        assert_eq!(p.counts(), FaultCounts::default());
    }

    #[test]
    fn alloc_budget_runs_out() {
        let mut p = FaultPlan::seeded(5).with_alloc_budget(3);
        assert!(!p.deny_alloc());
        assert!(!p.deny_alloc());
        assert!(!p.deny_alloc());
        assert!(p.deny_alloc());
        assert!(p.deny_alloc());
        assert_eq!(p.counts().denied_allocs, 2);
    }
}
