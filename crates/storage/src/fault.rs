//! Deterministic fault injection for the pager.
//!
//! A [`FaultPlan`] is a seeded random schedule of storage misbehavior: read
//! and write I/O errors, torn (partial) page writes, single-bit corruption,
//! and allocation exhaustion. Chaos tests install a plan on a [`crate::Pager`]
//! and then assert that every index layered above either returns a typed
//! error or a provably correct answer — never a panic, never a silent wrong
//! result.
//!
//! Plans are driven by their own xorshift64* generator, so a given seed
//! reproduces the exact same fault schedule on every run and platform. A
//! pager with no plan installed pays a single well-predicted branch per
//! operation (see `DESIGN.md` §6).

/// Running tally of the faults a plan has actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Reads that failed with [`crate::StorageError::Io`].
    pub read_errors: u64,
    /// Writes that failed with [`crate::StorageError::Io`].
    pub write_errors: u64,
    /// Writes that only applied a prefix of the page.
    pub torn_writes: u64,
    /// Writes that flipped one stored bit.
    pub bit_flips: u64,
    /// Allocations denied by the budget.
    pub denied_allocs: u64,
    /// WAL fsync attempts that failed transiently (each is retried with
    /// exponential backoff by the log writer).
    pub fsync_failures: u64,
    /// WAL images torn at an arbitrary byte offset.
    pub wal_torn: u64,
    /// WAL images with one flipped bit (at-rest rot, caught by frame CRCs).
    pub wal_bit_rot: u64,
}

impl FaultCounts {
    /// Total number of injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.read_errors
            + self.write_errors
            + self.torn_writes
            + self.bit_flips
            + self.denied_allocs
            + self.fsync_failures
            + self.wal_torn
            + self.wal_bit_rot
    }
}

/// Damage a fault plan inflicted on a durable WAL byte image.
///
/// Produced by [`FaultPlan::damage_wal_image`]: crash-recovery harnesses
/// mangle the surviving log bytes with this before reopening the database,
/// and assert recovery degrades gracefully (truncate-and-report, no panic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalDamage {
    /// The image was cut to `at` bytes — a write torn mid-frame at an
    /// arbitrary byte offset (possibly inside a length header or CRC).
    Torn {
        /// Surviving prefix length in bytes.
        at: usize,
    },
    /// Bit `mask` of byte `byte` flipped at rest; the frame it lands in no
    /// longer matches its CRC32.
    BitRot {
        /// Byte offset of the flip within the image.
        byte: usize,
        /// Single-bit XOR mask.
        mask: u8,
    },
}

/// What a fault plan decided to do to one write. Crate-private: the pager is
/// the only fault site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WriteEffect {
    /// Write goes through untouched.
    Clean,
    /// Write fails with an I/O error; the page keeps its previous contents.
    Fail,
    /// Only the first `n` bytes reach the page (a torn write).
    Torn(usize),
    /// The write lands, then bit `mask` of byte `byte` flips silently.
    BitFlip {
        /// Byte index within the page.
        byte: usize,
        /// Single-bit mask to XOR into that byte.
        mask: u8,
    },
}

/// A seeded, deterministic schedule of injected storage faults.
///
/// Built with [`FaultPlan::seeded`] (which yields a *quiescent* plan — all
/// fault rates zero, unlimited allocations) and configured with the `with_*`
/// builders. Install on a pager with [`crate::Pager::set_fault_plan`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: u64,
    read_error: f64,
    write_error: f64,
    torn_write: f64,
    bit_flip: f64,
    fsync_failure: f64,
    wal_torn: f64,
    wal_bit_rot: f64,
    alloc_budget: Option<u64>,
    counts: FaultCounts,
}

impl FaultPlan {
    /// A quiescent plan: deterministic, but injecting nothing until fault
    /// rates or budgets are configured.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            // xorshift64* requires a nonzero state.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            read_error: 0.0,
            write_error: 0.0,
            torn_write: 0.0,
            bit_flip: 0.0,
            fsync_failure: 0.0,
            wal_torn: 0.0,
            wal_bit_rot: 0.0,
            alloc_budget: None,
            counts: FaultCounts::default(),
        }
    }

    /// Probability in `[0, 1]` that a counted read fails with an I/O error.
    pub fn with_read_errors(mut self, p: f64) -> Self {
        self.read_error = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write fails outright (page left untouched).
    pub fn with_write_errors(mut self, p: f64) -> Self {
        self.write_error = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write is torn: only a random prefix lands.
    pub fn with_torn_writes(mut self, p: f64) -> Self {
        self.torn_write = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that a write silently flips one stored bit.
    pub fn with_bit_flips(mut self, p: f64) -> Self {
        self.bit_flip = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that one WAL fsync *attempt* fails transiently. The log
    /// writer retries with exponential backoff (recording
    /// `wal_retries`/`wal_backoff_us` in [`crate::IoStats`]) and surfaces a
    /// typed error only once the retry budget is exhausted.
    pub fn with_fsync_failures(mut self, p: f64) -> Self {
        self.fsync_failure = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that [`FaultPlan::damage_wal_image`] tears the durable WAL
    /// image at an arbitrary byte offset.
    pub fn with_wal_torn(mut self, p: f64) -> Self {
        self.wal_torn = p.clamp(0.0, 1.0);
        self
    }

    /// Probability that [`FaultPlan::damage_wal_image`] flips one stored bit
    /// of the durable WAL image (at-rest rot).
    pub fn with_wal_bit_rot(mut self, p: f64) -> Self {
        self.wal_bit_rot = p.clamp(0.0, 1.0);
        self
    }

    /// Allows only `n` further allocations; the rest fail with
    /// [`crate::StorageError::OutOfPages`].
    pub fn with_alloc_budget(mut self, n: u64) -> Self {
        self.alloc_budget = Some(n);
        self
    }

    /// The faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// `true` if this plan can ever fail a read. The pager caches the answer
    /// in an atomic flag when the plan is installed, so the concurrent read
    /// path only takes the plan's mutex when read faults are actually armed
    /// (write/alloc-only plans leave reads lock-free).
    pub fn arms_reads(&self) -> bool {
        self.read_error > 0.0
    }

    fn next(&mut self) -> u64 {
        // xorshift64*: tiny, full-period, and plenty for fault scheduling.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let sample = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        sample < p
    }

    pub(crate) fn fail_read(&mut self) -> bool {
        let fail = self.roll(self.read_error);
        if fail {
            self.counts.read_errors += 1;
        }
        fail
    }

    pub(crate) fn write_effect(&mut self, page_size: usize) -> WriteEffect {
        if self.roll(self.write_error) {
            self.counts.write_errors += 1;
            return WriteEffect::Fail;
        }
        if page_size > 0 && self.roll(self.torn_write) {
            self.counts.torn_writes += 1;
            return WriteEffect::Torn((self.next() as usize) % page_size);
        }
        if page_size > 0 && self.roll(self.bit_flip) {
            self.counts.bit_flips += 1;
            let byte = (self.next() as usize) % page_size;
            let mask = 1u8 << (self.next() % 8);
            return WriteEffect::BitFlip { byte, mask };
        }
        WriteEffect::Clean
    }

    pub(crate) fn fsync_attempt_fails(&mut self) -> bool {
        let fail = self.roll(self.fsync_failure);
        if fail {
            self.counts.fsync_failures += 1;
        }
        fail
    }

    /// Rolls for at-rest damage to a durable WAL image of `len` bytes:
    /// `Torn` cuts it at an arbitrary byte offset, `BitRot` flips one bit.
    /// Returns `None` (image intact) when neither rate fires or `len` is 0.
    pub fn next_wal_damage(&mut self, len: usize) -> Option<WalDamage> {
        if len == 0 {
            return None;
        }
        if self.roll(self.wal_torn) {
            self.counts.wal_torn += 1;
            return Some(WalDamage::Torn { at: (self.next() as usize) % len });
        }
        if self.roll(self.wal_bit_rot) {
            self.counts.wal_bit_rot += 1;
            let byte = (self.next() as usize) % len;
            let mask = 1u8 << (self.next() % 8);
            return Some(WalDamage::BitRot { byte, mask });
        }
        None
    }

    /// Rolls [`FaultPlan::next_wal_damage`] and applies the result to
    /// `bytes` in place, returning what was done. Crash harnesses call this
    /// on the surviving WAL image between "crash" and "reopen".
    pub fn damage_wal_image(&mut self, bytes: &mut Vec<u8>) -> Option<WalDamage> {
        let damage = self.next_wal_damage(bytes.len())?;
        match damage {
            WalDamage::Torn { at } => bytes.truncate(at),
            WalDamage::BitRot { byte, mask } => bytes[byte] ^= mask,
        }
        Some(damage)
    }

    pub(crate) fn deny_alloc(&mut self) -> bool {
        match self.alloc_budget {
            None => false,
            Some(0) => {
                self.counts.denied_allocs += 1;
                true
            }
            Some(ref mut n) => {
                *n -= 1;
                false
            }
        }
    }
}

/// A durability boundary where a simulated crash can strike.
///
/// The durable engine (`pcube-core::durable`) calls
/// [`CrashPlan::observe`] immediately before performing each of these
/// actions; when the plan says "crash", the action does not happen (or, for
/// [`CrashPoint::WalSync`], happens *partially* — a torn fsync) and the
/// engine poisons itself, exactly as if the process had been killed there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before appending a record to the WAL tail.
    WalAppend,
    /// During an fsync of the WAL tail: a random byte prefix lands, the rest
    /// is lost, and the durable log likely ends in a torn frame.
    WalSync,
    /// Before flushing one dirty page into the checkpoint image.
    PageFlush,
    /// Before atomically installing the staged checkpoint image.
    CheckpointInstall,
    /// After the checkpoint is installed and logged, but before the WAL
    /// prefix it covers is truncated.
    CheckpointTruncate,
    /// Before logging and rebuilding one quarantined cell's signature during
    /// online repair.
    RepairCell,
    /// After the repair transaction is committed and synced, but before the
    /// healed epoch is published and the quarantine entries clear.
    RepairInstall,
}

impl CrashPoint {
    /// Human-readable name (for reports and matrix labels).
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::WalAppend => "wal-append",
            CrashPoint::WalSync => "wal-sync",
            CrashPoint::PageFlush => "page-flush",
            CrashPoint::CheckpointInstall => "checkpoint-install",
            CrashPoint::CheckpointTruncate => "checkpoint-truncate",
            CrashPoint::RepairCell => "repair-cell",
            CrashPoint::RepairInstall => "repair-install",
        }
    }
}

/// A deterministic crash schedule over the durability event stream.
///
/// Every durability boundary the engine crosses is one *event*, numbered
/// from zero in execution order. A counting plan ([`CrashPlan::count_only`])
/// never crashes — it just tallies events, so a harness can first measure
/// how many boundaries a workload crosses and then rerun the identical
/// workload once per boundary with [`CrashPlan::at_event`], killing the
/// engine at each one in turn. Same seed + same workload = same schedule.
#[derive(Debug, Clone)]
pub struct CrashPlan {
    state: u64,
    kill_at: Option<u64>,
    events: u64,
    tripped: Option<CrashPoint>,
}

impl CrashPlan {
    /// A plan that never crashes but counts every durability event.
    pub fn count_only() -> Self {
        CrashPlan { state: 0x9E37_79B9 | 1, kill_at: None, events: 0, tripped: None }
    }

    /// A plan that crashes at the `n`-th durability event (0-based).
    pub fn at_event(n: u64) -> Self {
        CrashPlan { kill_at: Some(n), ..CrashPlan::count_only() }
    }

    /// Reseeds the generator used for torn-fsync prefix lengths.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        self
    }

    /// Records that the engine is about to cross `point`. Returns `true` if
    /// the plan kills the process here; the caller must then poison itself.
    pub fn observe(&mut self, point: CrashPoint) -> bool {
        let n = self.events;
        self.events += 1;
        if self.tripped.is_none() && self.kill_at == Some(n) {
            self.tripped = Some(point);
            true
        } else {
            false
        }
    }

    /// Durability events observed so far.
    pub fn events_seen(&self) -> u64 {
        self.events
    }

    /// The boundary this plan crashed at, if it has fired.
    pub fn tripped(&self) -> Option<CrashPoint> {
        self.tripped
    }

    /// A deterministic torn-fsync length in `[0, max]`.
    pub fn torn_len(&mut self, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) as usize) % (max + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_plan_fires_exactly_once_at_the_chosen_event() {
        let mut p = CrashPlan::at_event(2);
        assert!(!p.observe(CrashPoint::WalAppend));
        assert!(!p.observe(CrashPoint::WalSync));
        assert!(p.observe(CrashPoint::PageFlush));
        assert!(!p.observe(CrashPoint::PageFlush), "a plan trips at most once");
        assert_eq!(p.tripped(), Some(CrashPoint::PageFlush));
        assert_eq!(p.events_seen(), 4);
    }

    #[test]
    fn count_only_plan_never_crashes() {
        let mut p = CrashPlan::count_only();
        for _ in 0..100 {
            assert!(!p.observe(CrashPoint::WalAppend));
        }
        assert_eq!(p.events_seen(), 100);
        assert_eq!(p.tripped(), None);
    }

    #[test]
    fn torn_len_is_deterministic_and_bounded() {
        let mut a = CrashPlan::count_only().with_seed(7);
        let mut b = CrashPlan::count_only().with_seed(7);
        for max in [0usize, 1, 64, 4096] {
            let la = a.torn_len(max);
            assert_eq!(la, b.torn_len(max));
            assert!(la <= max);
        }
    }

    #[test]
    fn same_seed_means_same_schedule() {
        let mut a = FaultPlan::seeded(99).with_read_errors(0.3).with_torn_writes(0.2);
        let mut b = FaultPlan::seeded(99).with_read_errors(0.3).with_torn_writes(0.2);
        for _ in 0..500 {
            assert_eq!(a.fail_read(), b.fail_read());
            assert_eq!(a.write_effect(4096), b.write_effect(4096));
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "30%/20% rates over 500 ops must fire");
    }

    #[test]
    fn quiescent_plan_injects_nothing() {
        let mut p = FaultPlan::seeded(1);
        for _ in 0..1000 {
            assert!(!p.fail_read());
            assert_eq!(p.write_effect(64), WriteEffect::Clean);
            assert!(!p.deny_alloc());
        }
        assert_eq!(p.counts(), FaultCounts::default());
    }

    #[test]
    fn alloc_budget_runs_out() {
        let mut p = FaultPlan::seeded(5).with_alloc_budget(3);
        assert!(!p.deny_alloc());
        assert!(!p.deny_alloc());
        assert!(!p.deny_alloc());
        assert!(p.deny_alloc());
        assert!(p.deny_alloc());
        assert_eq!(p.counts().denied_allocs, 2);
    }
}
