//! Page identifiers and the default page size.

/// Default page size in bytes, matching the paper's experimental setting
/// ("The page size in R-tree is set as 4KB", §VI-A).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within one [`crate::Pager`].
///
/// Page ids are dense, allocated from zero, and may be recycled after
/// [`crate::Pager::free`]. A `PageId` is only meaningful for the pager that
/// allocated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used on disk to encode "no page" (e.g. a missing sibling
    /// pointer in a B+-tree leaf chain).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Returns `true` if this id is the [`PageId::INVALID`] sentinel.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }

    /// The raw index of the page.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_sentinel_is_detected() {
        assert!(PageId::INVALID.is_invalid());
        assert!(!PageId(0).is_invalid());
        assert!(!PageId(123).is_invalid());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(PageId(7).to_string(), "p7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(PageId(1) < PageId(2));
        assert_eq!(PageId(5).index(), 5);
    }
}
