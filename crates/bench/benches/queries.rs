//! End-to-end query benchmarks: one Criterion target per method for the
//! skyline (Fig 8's methods) and top-k (Fig 13's methods) queries, plus the
//! lazy-vs-eager signature assembly ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use pcube_baselines::{bbs_skyline, index_merge_topk, ranking_topk, BooleanIndexSet};
use pcube_bench::{build, default_spec, Bench};
use pcube_core::{convex_hull_query, dynamic_skyline_query, skyline_query, topk_query, LinearFn};
use pcube_cube::Selection;
use pcube_data::sample_selection;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture() -> (Bench, Vec<Selection>, Vec<Selection>) {
    let bench = build(&default_spec(50_000, 99));
    let mut rng = StdRng::seed_from_u64(3);
    let one: Vec<Selection> =
        (0..8).map(|_| sample_selection(bench.db.relation(), 1, &mut rng)).collect();
    let two: Vec<Selection> =
        (0..8).map(|_| sample_selection(bench.db.relation(), 2, &mut rng)).collect();
    (bench, one, two)
}

fn bench_skyline_methods(c: &mut Criterion) {
    let (bench, sels, _) = fixture();
    let dims = [0usize, 1, 2];
    let mut i = 0usize;
    c.bench_function("skyline/signature_50k", |b| {
        b.iter(|| {
            i += 1;
            skyline_query(&bench.db, &sels[i % sels.len()], &dims, false).skyline.len()
        })
    });
    c.bench_function("skyline/boolean_50k", |b| {
        b.iter(|| {
            i += 1;
            bench.indexes.skyline(&bench.db, &sels[i % sels.len()], &dims).skyline.len()
        })
    });
    c.bench_function("skyline/domination_50k", |b| {
        b.iter(|| {
            i += 1;
            bbs_skyline(&bench.db, &sels[i % sels.len()], &dims).0.len()
        })
    });
}

fn bench_topk_methods(c: &mut Criterion) {
    let (bench, sels, _) = fixture();
    let f = LinearFn::new(vec![0.5, 0.3, 0.2]);
    let mut i = 0usize;
    c.bench_function("topk/signature_50k_k10", |b| {
        b.iter(|| {
            i += 1;
            topk_query(&bench.db, &sels[i % sels.len()], 10, &f, false).topk.len()
        })
    });
    c.bench_function("topk/boolean_50k_k10", |b| {
        b.iter(|| {
            i += 1;
            bench.indexes.topk(&bench.db, &sels[i % sels.len()], 10, &f).topk.len()
        })
    });
    c.bench_function("topk/ranking_50k_k10", |b| {
        b.iter(|| {
            i += 1;
            ranking_topk(&bench.db, &sels[i % sels.len()], 10, &f).0.len()
        })
    });
    c.bench_function("topk/index_merge_50k_k10", |b| {
        b.iter(|| {
            i += 1;
            index_merge_topk(&bench.db, &bench.indexes, &sels[i % sels.len()], 10, &f).0.len()
        })
    });
    // The index-building cost the baselines amortize (context for Fig 5).
    c.bench_function("build/boolean_indexes_50k", |b| {
        b.iter(|| BooleanIndexSet::build(bench.db.relation(), 4096, bench.db.stats().clone()))
    });
}

fn bench_assembly_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: lazy per-cursor AND vs eager intersected assembly
    // for multi-predicate skylines.
    let (bench, _, sels2) = fixture();
    let dims = [0usize, 1, 2];
    let mut i = 0usize;
    c.bench_function("skyline/2preds_lazy_assembly", |b| {
        b.iter(|| {
            i += 1;
            skyline_query(&bench.db, &sels2[i % sels2.len()], &dims, false).skyline.len()
        })
    });
    c.bench_function("skyline/2preds_eager_assembly", |b| {
        b.iter(|| {
            i += 1;
            skyline_query(&bench.db, &sels2[i % sels2.len()], &dims, true).skyline.len()
        })
    });
}

fn bench_extensions(c: &mut Criterion) {
    // The §VII extensions: dynamic skylines and convex hulls.
    let (bench, sels, _) = fixture();
    let mut i = 0usize;
    c.bench_function("extensions/dynamic_skyline_50k", |b| {
        b.iter(|| {
            i += 1;
            dynamic_skyline_query(&bench.db, &sels[i % sels.len()], &[0.5, 0.5, 0.5], &[0, 1, 2])
                .skyline
                .len()
        })
    });
    c.bench_function("extensions/convex_hull_50k", |b| {
        b.iter(|| {
            i += 1;
            convex_hull_query(&bench.db, &sels[i % sels.len()], (0, 1)).hull.len()
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_skyline_methods, bench_topk_methods, bench_assembly_ablation, bench_extensions
}
criterion_main!(benches);
