//! Substrate microbenchmarks: the B+-tree and R-tree operations every
//! method in the evaluation is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use pcube_bptree::BPlusTree;
use pcube_rtree::{RTree, RTreeConfig};
use pcube_storage::{BufferPool, IoCategory, IoStats, Pager, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bptree_with(n: u64) -> BPlusTree {
    let pager = Pager::new(PAGE_SIZE, IoCategory::BptreePage, IoStats::new_shared());
    BPlusTree::bulk_load(pager, (0..n).map(|k| (k * 2, k)), 1.0)
}

fn bench_bptree(c: &mut Criterion) {
    let tree = bptree_with(500_000);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("bptree/get_500k", |b| {
        b.iter(|| tree.get(rng.gen_range(0..1_000_000)))
    });
    c.bench_function("bptree/range_100_500k", |b| {
        b.iter(|| {
            let lo = rng.gen_range(0..999_800u64);
            tree.range(lo..lo + 200).count()
        })
    });
    c.bench_function("bptree/bulk_load_100k", |b| {
        b.iter(|| bptree_with(100_000).len())
    });
    let mut insert_tree = bptree_with(100_000);
    let mut next = 1_000_001u64;
    c.bench_function("bptree/insert_into_100k", |b| {
        b.iter(|| {
            next += 2;
            insert_tree.insert(next, 0)
        })
    });
}

fn random_points(n: usize, seed: u64) -> Vec<(u64, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| (i as u64, vec![rng.gen(), rng.gen(), rng.gen()])).collect()
}

fn bench_rtree(c: &mut Criterion) {
    let cfg = RTreeConfig::for_page(3, PAGE_SIZE);
    let points = random_points(200_000, 2);
    c.bench_function("rtree/bulk_load_str_200k", |b| {
        b.iter(|| {
            let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, IoStats::new_shared());
            RTree::bulk_load(pager, cfg, points.clone(), 0.7).len()
        })
    });
    let pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, IoStats::new_shared());
    let mut tree = RTree::bulk_load(pager, cfg, points.clone(), 0.7);
    let mut rng = StdRng::seed_from_u64(3);
    let mut next_tid = 200_000u64;
    c.bench_function("rtree/insert_into_200k", |b| {
        b.iter(|| {
            next_tid += 1;
            tree.insert(next_tid, &[rng.gen(), rng.gen(), rng.gen()]);
        })
    });
    c.bench_function("rtree/insert_tracked_into_200k", |b| {
        b.iter(|| {
            next_tid += 1;
            tree.insert_tracked(next_tid, &[rng.gen(), rng.gen(), rng.gen()]).moved.len()
        })
    });
    c.bench_function("rtree/read_node", |b| {
        b.iter(|| tree.read_node(tree.root_pid()).entries.len())
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let stats = IoStats::new_shared();
    let mut pager = Pager::new(PAGE_SIZE, IoCategory::RtreeBlock, stats);
    let pids: Vec<_> = (0..1000)
        .map(|_| {
            let pid = pager.allocate();
            pager.write(pid, &vec![1u8; PAGE_SIZE]);
            pid
        })
        .collect();
    let mut pool = BufferPool::new(128);
    let mut rng = StdRng::seed_from_u64(4);
    c.bench_function("storage/buffer_pool_zipfish_reads", |b| {
        b.iter(|| {
            // Skewed accesses: mostly the first 100 pages.
            let i = if rng.gen::<f64>() < 0.9 {
                rng.gen_range(0..100)
            } else {
                rng.gen_range(0..1000)
            };
            pool.try_read(&pager, pids[i]).expect("unfaulted pager read")[0]
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bptree, bench_rtree, bench_buffer_pool
}
criterion_main!(benches);
