//! Microbenchmarks of the signature primitives (§IV-B): generation from
//! tuple paths, union, intersection with fix-up, point membership, and
//! page-sized decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcube_core::encode::{decompose, encode_partial};
use pcube_core::Signature;
use pcube_rtree::Path;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const M: usize = 64;
const HEIGHT: usize = 3;

/// Random depth-3 tuple paths over a fanout-64 tree.
fn random_paths(n: usize, seed: u64) -> Vec<Path> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Path(vec![
                rng.gen_range(1..=M as u16),
                rng.gen_range(1..=M as u16),
                rng.gen_range(1..=M as u16),
            ])
        })
        .collect()
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature/from_paths");
    for n in [1_000usize, 10_000, 100_000] {
        let paths = random_paths(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &paths, |b, paths| {
            b.iter(|| Signature::from_paths(M, paths.iter()));
        });
    }
    group.finish();
}

fn bench_set_operations(c: &mut Criterion) {
    let a = Signature::from_paths(M, random_paths(20_000, 2).iter());
    let b = Signature::from_paths(M, random_paths(20_000, 3).iter());
    c.bench_function("signature/union_20k", |bench| bench.iter(|| a.union(&b)));
    c.bench_function("signature/intersect_20k", |bench| {
        bench.iter(|| a.intersect(&b, HEIGHT))
    });
}

fn bench_membership(c: &mut Criterion) {
    let sig = Signature::from_paths(M, random_paths(50_000, 4).iter());
    let probes = random_paths(1_000, 5);
    c.bench_function("signature/contains_1k_probes", |b| {
        b.iter(|| probes.iter().filter(|p| sig.contains(p)).count())
    });
}

fn bench_decompose(c: &mut Criterion) {
    let sig = Signature::from_paths(M, random_paths(50_000, 6).iter());
    let mut group = c.benchmark_group("signature/decompose");
    for payload in [512usize, 4092] {
        group.bench_with_input(BenchmarkId::from_parameter(payload), &payload, |b, &p| {
            b.iter(|| {
                let parts = decompose(&sig, HEIGHT, p);
                parts.iter().map(|part| encode_partial(part).len()).sum::<usize>()
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_generation, bench_set_operations, bench_membership, bench_decompose
}
criterion_main!(benches);
