//! Incremental-maintenance benchmarks (§IV-B.3 / Fig 7): tracked R-tree
//! insertion, signature patching, and the full-rebuild alternative.

use criterion::{criterion_group, criterion_main, Criterion};
use pcube_core::{PCube, PCubeConfig, PCubeDb};
use pcube_cube::MaterializationPlan;
use pcube_data::{sample_pref, synthetic, Distribution};
use pcube_storage::{IoStats, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_incremental_insert(c: &mut Criterion) {
    let spec = pcube_bench::default_spec(50_000, 123);
    let mut db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let mut coords = vec![0.0f64; 3];
    c.bench_function("maintenance/insert_one_into_50k", |b| {
        b.iter(|| {
            let codes: Vec<u32> = (0..3).map(|_| rng.gen_range(0..100)).collect();
            sample_pref(&mut rng, Distribution::Uniform, &mut coords);
            db.insert_coded(&codes, &coords)
        })
    });
}

fn bench_full_rebuild(c: &mut Criterion) {
    let spec = pcube_bench::default_spec(50_000, 124);
    let db = PCubeDb::build(synthetic(&spec), &PCubeConfig::default());
    c.bench_function("maintenance/rebuild_pcube_50k", |b| {
        b.iter(|| {
            PCube::build(
                db.relation(),
                db.rtree(),
                &MaterializationPlan::Atomic,
                PAGE_SIZE,
                IoStats::new_shared(),
            )
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_incremental_insert, bench_full_rebuild
}
criterion_main!(benches);
