//! Ablation: the node-level bitmap codecs (§IV-B.1's "adaptively choosing
//! different compression scheme[s]") across bit densities, plus the Bloom
//! filter alternative of §VII.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcube_bitmap::{
    decode, AdaptiveCodec, BitArray, BloomFilter, Codec, LiteralCodec, RleCodec, WahCodec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn array_with_density(len: usize, density: f64, seed: u64) -> BitArray {
    let mut rng = StdRng::seed_from_u64(seed);
    BitArray::from_bits((0..len).map(|_| rng.gen::<f64>() < density))
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode_2048b");
    for density in [0.01f64, 0.2, 0.5] {
        let bits = array_with_density(2048, density, 7);
        let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
            ("literal", Box::new(LiteralCodec)),
            ("rle", Box::new(RleCodec)),
            ("wah", Box::new(WahCodec)),
            ("adaptive", Box::new(AdaptiveCodec)),
        ];
        for (name, codec) in codecs {
            group.bench_with_input(
                BenchmarkId::new(name, format!("d{density}")),
                &bits,
                |b, bits| b.iter(|| codec.encode(bits).len()),
            );
        }
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/decode_2048b");
    for density in [0.01f64, 0.5] {
        let bits = array_with_density(2048, density, 8);
        let encoded = AdaptiveCodec.encode(&bits);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{density}")),
            &encoded,
            |b, enc| b.iter(|| decode(enc).unwrap().0.count_ones()),
        );
    }
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut bf = BloomFilter::with_rate(100_000, 0.01);
    for k in 0..100_000u64 {
        bf.insert(k * 31);
    }
    c.bench_function("bloom/contains_1k", |b| {
        b.iter(|| (0..1000u64).filter(|&k| bf.contains(k * 31)).count())
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_encode, bench_decode, bench_bloom
}
criterion_main!(benches);
